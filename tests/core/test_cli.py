"""Tests for the CLI (fast commands only; table commands are exercised by
the benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_table_commands_registered(self):
        parser = build_parser()
        for name in ("table1", "table2", "table3", "table4", "exp5",
                     "figure4", "table5", "table6", "table7", "table8",
                     "all", "campaign"):
            args = parser.parse_args(
                [name, "gmp"] if name == "campaign" else [name])
            assert args.command == name

    def test_table2_delay_flag(self):
        args = build_parser().parse_args(["table2", "--delay", "8"])
        assert args.delay == 8.0

    def test_campaign_requires_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_campaign_tcp(self, capsys):
        assert main(["campaign", "tcp"]) == 0
        out = capsys.readouterr().out
        assert "drop_syn_send" in out
        assert "scripts generated for tcp" in out

    def test_campaign_gmp_with_tclish(self, capsys):
        assert main(["campaign", "gmp", "--tclish"]) == 0
        out = capsys.readouterr().out
        assert "xDrop cur_msg" in out
        assert "HEARTBEAT" in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SunOS 4.1.3" in out
        assert "Solaris 2.3" in out

    def test_exp5_runs(self, capsys):
        assert main(["exp5"]) == 0
        out = capsys.readouterr().out
        assert "Reordering" in out
        assert "queued" in out


class TestRunScript:
    def test_tcp_run_script(self, tmp_path, capsys):
        script = tmp_path / "drop.tcl"
        script.write_text(
            'incr seen\nif {$seen > 5} { xDrop cur_msg }\n')
        assert main(["run-script", str(script), "--init", "set seen 0",
                     "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "pfi stats" in out
        assert "'dropped'" in out

    def test_gmp_run_script(self, tmp_path, capsys):
        script = tmp_path / "drophb.tcl"
        script.write_text(
            'if {[msg_type cur_msg] eq "HEARTBEAT"} { xDrop cur_msg }\n')
        assert main(["run-script", str(script), "--protocol", "gmp",
                     "--direction", "send", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "gmd1" in out

    def test_missing_script_file_raises(self):
        import pytest as _pytest
        with _pytest.raises(FileNotFoundError):
            main(["run-script", "/nonexistent/x.tcl"])


class TestSequenceCommand:
    def test_gmp_sequence(self, capsys):
        assert main(["sequence", "--protocol", "gmp",
                     "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "gmd1" in out
        assert "PROCLAIM" in out

    def test_tcp_sequence(self, capsys):
        assert main(["sequence", "--protocol", "tcp",
                     "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "vendor" in out
        assert "SYN" in out


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        script = tmp_path / "ok.tcl"
        script.write_text(
            'if {[msg_type cur_msg] eq "ACK"} { xDelay 3.0 }\n')
        assert main(["lint", str(script)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "0 error(s)" in out

    def test_broken_file_exits_one(self, tmp_path, capsys):
        script = tmp_path / "bad.tcl"
        script.write_text("xDropp cur_msg\nchance 1.5\n")
        assert main(["lint", str(script)]) == 1
        out = capsys.readouterr().out
        assert "SL001" in out and "SL006" in out
        assert f"{script}:1:1" in out       # file:line:col shape

    def test_directory_walk(self, tmp_path, capsys):
        (tmp_path / "a.tcl").write_text("set x 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.tcl").write_text("chance 2.0\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "a.tcl" in out and "b.tcl" in out

    def test_init_flag(self, tmp_path):
        script = tmp_path / "counted.tcl"
        script.write_text("if {$n > 3} { xDrop cur_msg }\n")
        assert main(["lint", str(script)]) == 1       # $n undefined
        assert main(["lint", str(script), "--init", "set n 0"]) == 0

    def test_json_output(self, tmp_path, capsys):
        import json
        script = tmp_path / "bad.tcl"
        script.write_text("chance 1.5\n")
        assert main(["lint", str(script), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["ok"] is False
        assert payload[0]["diagnostics"][0]["code"] == "SL006"

    def test_gen_batteries(self, capsys):
        assert main(["lint", "--gen", "tcp,gmp"]) == 0
        out = capsys.readouterr().out
        assert "generated:tcp" in out and "generated:gmp" in out

    def test_missing_file_exits_two(self, capsys):
        assert main(["lint", "/nonexistent/x.tcl"]) == 2

    def test_repo_example_corpus_clean(self, capsys):
        import pathlib
        corpus = pathlib.Path(__file__).resolve().parents[2] / (
            "examples/filters")
        assert main(["lint", str(corpus)]) == 0


class TestFuzzCheckpointFlags:
    def test_checkpoint_depth_parses(self):
        args = build_parser().parse_args(
            ["fuzz", "--checkpoint-depth", "8"])
        assert args.checkpoint_depth == 8.0
        assert args.progress is False

    def test_checkpoint_depth_defaults_to_cold_path(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.checkpoint_depth is None

    def test_fuzz_checkpointed_run(self, capsys):
        assert main(["fuzz", "--protocol", "gmp", "--seed", "3",
                     "--budget", "8", "--checkpoint-depth", "8",
                     "--progress"]) == 0
        out = capsys.readouterr().out
        assert "checkpointed @ depth 8" in out
        assert "hit-rate" in out
        assert "[fuzz gmp]" in out  # the --progress lines


class TestExploreCommand:
    def test_explore_finds_the_planted_bug(self, capsys):
        assert main(["explore", "--target", "self_death",
                     "--max-schedules", "24"]) == 1
        out = capsys.readouterr().out
        assert "GMP-SELF-DEATH" in out
        assert "explore gmp/self_death" in out

    def test_explore_fixed_build_exits_zero(self, capsys):
        assert main(["explore", "--target", "fixed",
                     "--max-schedules", "8"]) == 0
        assert "findings 0" in capsys.readouterr().out

    def test_explore_flags_parse(self):
        args = build_parser().parse_args(
            ["explore", "--protocol", "tcp", "--target", "SunOS 4.1.3",
             "--depth", "5", "--window", "0.5", "--horizon", "12",
             "--max-schedules", "9", "--max-perturbations", "2",
             "--defer-delta", "1.5"])
        assert args.protocol == "tcp"
        assert (args.depth, args.window, args.horizon) == (5.0, 0.5, 12.0)
        assert (args.max_schedules, args.max_perturbations) == (9, 2)
        assert args.defer_delta == 1.5
