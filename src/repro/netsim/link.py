"""Point-to-point simulated links.

A :class:`Link` carries opaque payloads from one endpoint to another with a
configurable latency, optional jitter, probabilistic loss, and an up/down
switch.  The up/down switch is what the paper's "unplugged the ethernet from
the x-injector machine" experiment exercises; probabilistic loss implements
the *link crash* and *general omission* failure models at the lowest level.

Payloads in flight when a link goes down are destroyed (a real cable drop
loses frames already on the wire only if they have not arrived; we model the
simpler and stricter semantics of dropping anything not yet delivered).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.netsim.scheduler import Event, Scheduler

DeliverFn = Callable[[Any], None]


class Link:
    """A unidirectional pipe between two nodes.

    Parameters
    ----------
    scheduler:
        The shared virtual clock.
    deliver:
        Callback invoked with each payload on arrival.  Usually the
        receiving node's ``receive`` method.
    latency:
        One-way delay in seconds.
    jitter:
        Maximum extra random delay added per payload (uniform in
        ``[0, jitter]``).  Jitter never reorders payloads: delivery times
        are clamped to be monotonically non-decreasing, matching FIFO
        queueing on a real interface.
    loss_rate:
        Independent per-payload drop probability in ``[0, 1]``.
    rng:
        Random source used for jitter/loss; pass a seeded
        :class:`random.Random` for reproducibility.
    """

    def __init__(self, scheduler: Scheduler, deliver: DeliverFn, *,
                 latency: float = 0.001, jitter: float = 0.0,
                 loss_rate: float = 0.0,
                 rng: Optional[random.Random] = None,
                 name: str = "link"):
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be within [0, 1], got {loss_rate}")
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self._scheduler = scheduler
        self._deliver = deliver
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self._rng = rng or random.Random(0)
        self.name = name
        self._up = True
        self._last_arrival = 0.0
        self._in_flight: Deque[Event] = deque()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        #: RNG draws consumed so far (loss dice + jitter); the
        #: checkpoint layer refuses to reseed a link that already drew
        self.rng_draws = 0

    def reseed(self, rng: random.Random) -> None:
        """Swap in a fresh RNG stream (checkpoint restore path)."""
        self._rng = rng
        self.rng_draws = 0

    def __deepcopy__(self, memo):
        # everything follows the shared memo (the in-flight Events must
        # land on the forked scheduler's heap entries) except the RNG:
        # its immutable 625-int state tuple is shared via getstate/
        # setstate instead of being walked element by element, which is
        # the bulk of a naive fork's cost
        import copy as _copy
        clone = object.__new__(type(self))
        memo[id(self)] = clone
        state = dict(self.__dict__)
        rng = state.pop("_rng")
        for key, value in state.items():
            setattr(clone, key, _copy.deepcopy(value, memo))
        clone._rng = random.Random.__new__(random.Random)
        clone._rng.setstate(rng.getstate())
        return clone

    @property
    def is_up(self) -> bool:
        """Whether the link is currently carrying traffic."""
        return self._up

    def down(self) -> None:
        """Unplug the link.  Everything in flight is lost."""
        self._up = False
        for event in self._in_flight:
            event.cancel()
        self.dropped_count += len(self._in_flight)
        self._in_flight.clear()

    def up(self) -> None:
        """Replug the link."""
        self._up = True

    def send(self, payload: Any) -> bool:
        """Enqueue a payload for delivery.  Returns True if it was accepted.

        A payload is silently dropped (returning False) when the link is
        down or the loss dice say so -- exactly how a lossy wire behaves
        from the sender's perspective.
        """
        self.sent_count += 1
        if not self._up:
            self.dropped_count += 1
            return False
        if self.loss_rate > 0:
            self.rng_draws += 1
            if self._rng.random() < self.loss_rate:
                self.dropped_count += 1
                return False
        delay = self.latency
        if self.jitter > 0:
            self.rng_draws += 1
            delay += self._rng.uniform(0.0, self.jitter)
        arrival = self._scheduler.now + delay
        if arrival < self._last_arrival:
            arrival = self._last_arrival  # preserve FIFO ordering
        self._last_arrival = arrival
        event = self._scheduler.schedule_at(arrival, self._arrive, payload)
        self._in_flight.append(event)
        return True

    def _arrive(self, payload: Any) -> None:
        # FIFO delivery means the event firing now is always the oldest
        # undelivered one: dropping the deque head replaces the per-arrival
        # list rebuild (O(in-flight) each time) with an O(1) popleft
        if self._in_flight:
            self._in_flight.popleft()
        if not self._up:
            self.dropped_count += 1
            return
        self.delivered_count += 1
        self._deliver(payload)

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return (f"Link({self.name}, {state}, latency={self.latency}, "
                f"sent={self.sent_count}, delivered={self.delivered_count})")
