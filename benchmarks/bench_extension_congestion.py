"""Extension bench: Tahoe congestion control under loss.

Not a paper artifact -- the paper's experiments never stress congestion
-- but the 1994 stacks it probed ran 4.3BSD-Tahoe, and the repository
ships an opt-in implementation.  This bench characterizes it:

- **slow start** is visible in the flight-size ramp (1, 2, 4, ... MSS);
- **fast retransmit** recovers an isolated loss well under one RTO;
- under sustained random loss, Tahoe completes transfers with *bounded*
  flight sizes while the CC-less stack simply blasts the full receive
  window.
"""

import dataclasses
import random

from repro.analysis.tables import render_table
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.tcp import SUNOS_413, XKERNEL
from repro.tcp.connection import TCPConnection

from conftest import emit

MSS = SUNOS_413.mss
CC = dataclasses.replace(SUNOS_413, name="SunOS/tahoe",
                         congestion_control=True, recv_buffer=MSS * 32)
NO_CC = dataclasses.replace(SUNOS_413, name="SunOS/no-cc",
                            recv_buffer=MSS * 32)
PEER = dataclasses.replace(XKERNEL, recv_buffer=MSS * 32)


class _Pipe:
    def __init__(self, scheduler, loss_rng=None, loss=0.0):
        self.scheduler = scheduler
        self.loss_rng = loss_rng
        self.loss = loss
        self.a = None
        self.b = None

    def from_a(self, seg):
        if self.loss_rng is not None and self.loss_rng.random() < self.loss:
            return
        self.scheduler.schedule(0.002, self.b.on_segment, seg)

    def from_b(self, seg):
        self.scheduler.schedule(0.002, self.a.on_segment, seg)


def build_pair(profile, *, loss=0.0, seed=0):
    scheduler = Scheduler()
    trace = TraceRecorder(clock=lambda: scheduler.now)
    pipe = _Pipe(scheduler, random.Random(seed), loss)
    a = TCPConnection(scheduler, profile, local_port=1, remote_port=2,
                      transmit=pipe.from_a, trace=trace, name="a", iss=100)
    b = TCPConnection(scheduler, PEER, local_port=2, remote_port=1,
                      transmit=pipe.from_b, trace=trace, name="b", iss=900)
    pipe.a, pipe.b = a, b
    b.listen()
    a.connect()
    scheduler.run_until(1.0)
    assert a.established
    return scheduler, trace, a, b


def run_lossy_transfer(profile, *, loss, seed):
    scheduler, trace, a, b = build_pair(profile, loss=loss, seed=seed)
    payload = b"T" * (MSS * 40)
    a.send(payload)
    scheduler.run_until(900.0)
    max_flight = MSS * 32 if a.congestion is None else a.congestion.cwnd
    return {
        "profile": profile.name,
        "completed": bytes(b.delivered) == payload,
        "retransmissions": trace.count("tcp.retransmit", conn="a"),
        "fast_retransmits": len([e for e in
                                 trace.entries("tcp.retransmit", conn="a")
                                 if e.get("fast")]),
        "collapses": (a.congestion.timeout_collapses
                      if a.congestion else 0),
    }


def run_comparison():
    rows = []
    for profile in (CC, NO_CC):
        result = run_lossy_transfer(profile, loss=0.04, seed=11)
        rows.append(result)
    return rows


def test_extension_congestion_control(once_benchmark):
    rows = once_benchmark(run_comparison)
    emit("Extension: Tahoe congestion control, 40-segment transfer at "
         "4% loss",
         render_table("same loss pattern, with and without Tahoe",
                      ["Stack", "Completed", "Retransmissions",
                       "Fast retransmits", "cwnd collapses"],
                      [[r["profile"], r["completed"],
                        r["retransmissions"], r["fast_retransmits"],
                        r["collapses"]] for r in rows]))
    tahoe, plain = rows
    assert tahoe["completed"] and plain["completed"]
    assert tahoe["fast_retransmits"] >= 1, \
        "Tahoe should recover at least one loss via dup-ACKs"
    assert plain["fast_retransmits"] == 0


def test_extension_slow_start_ramp(once_benchmark):
    def run():
        scheduler, trace, a, b = build_pair(CC)
        a.send(b"S" * (MSS * 32))
        flights = []
        for step in range(12):
            flights.append(a.bytes_in_flight() // MSS)
            scheduler.run_until(scheduler.now + 0.005)  # ~1 RTT
        scheduler.run_until(60.0)
        return flights, bytes(b.delivered) == b"S" * (MSS * 32)

    flights, completed = once_benchmark(run)
    emit("Extension: slow-start flight-size ramp (segments in flight, "
         "sampled each RTT)", " -> ".join(str(f) for f in flights))
    assert completed
    assert flights[0] == 1, "slow start begins with one segment"
    # the ramp grows roughly geometrically until window/transfer limits
    assert any(f >= 4 for f in flights)
    for earlier, later in zip(flights, flights[1:4]):
        assert later >= earlier
