"""SARIF 2.1.0 export for staticcheck/scriptlint reports.

One run, one driver (``repro-staticcheck``), one rule per code in the
shared :data:`~repro.core.tclish.lint.diagnostics.CODES` table.  Each
result carries the diagnostic's stable fingerprint in
``partialFingerprints`` so CI viewers (GitHub code scanning et al.) can
track a finding across re-runs instead of re-announcing it on every
push.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.core.tclish.lint.diagnostics import CODES, LintReport

#: our severity names -> SARIF result levels
_LEVELS = {"info": "note", "warning": "warning", "error": "error"}

_FINGERPRINT_KEY = "reproStaticcheck/v1"


def _rules() -> List[dict]:
    return [
        {
            "id": code,
            "shortDescription": {"text": title},
            "defaultConfiguration": {"level": _LEVELS[severity]},
        }
        for code, (severity, title) in sorted(CODES.items())
    ]


def render_sarif(reports: Iterable[LintReport], *,
                 tool_name: str = "repro-staticcheck",
                 tool_version: str = "1.0.0") -> str:
    """Render reports as a SARIF 2.1.0 document (a JSON string)."""
    results = []
    for report in reports:
        for diag in report.sorted():
            uri = report.source_name
            message = diag.message
            if diag.hint:
                message += f" ({diag.hint})"
            results.append({
                "ruleId": diag.code,
                "level": _LEVELS[diag.severity],
                "message": {"text": message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri},
                        "region": {
                            "startLine": max(diag.line, 1),
                            "startColumn": max(diag.col, 1),
                        },
                    },
                }],
                "partialFingerprints": {
                    _FINGERPRINT_KEY: diag.fingerprint(uri),
                },
            })
    document = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": tool_version,
                    "informationUri":
                        "docs/staticcheck.md",
                    "rules": _rules(),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
