"""Retransmission machinery: tracked segments, backoff, fault counters.

One :class:`RetransmissionManager` per connection tracks every segment
consuming sequence space, runs the single retransmission timer (oldest
outstanding segment, BSD style), applies exponential backoff through the
estimator's ``rto_for(shift)``, and decides when to give up.

Two give-up disciplines coexist, selected by the vendor profile:

- **per-segment count** (BSD): the connection dies when one segment has
  been retransmitted ``max_retransmits`` (12) times;
- **global fault counter** (Solaris, the paper's Experiment 2 discovery):
  every retransmission increments a per-connection counter that is only
  reset by an *unambiguous* ACK (one acknowledging a segment never
  retransmitted).  The connection dies when the counter reaches the
  threshold (9), which is why a 35 s-delayed ACK for segment m1 left only
  three attempts for m2.

Karn's rule lives here too: RTT samples are taken only from segments never
retransmitted, and the backoff shift is retained until a valid sample's
ACK arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.netsim.scheduler import Scheduler
from repro.netsim.timer import Timer
from repro.netsim.trace import TraceRecorder
from repro.tcp.rtt import RTTEstimatorBase
from repro.tcp.segment import Segment, seq_leq
from repro.tcp.vendors import VendorProfile
from repro.netsim import kinds as K


@dataclass
class TrackedSegment:
    """Bookkeeping for one outstanding segment."""

    segment: Segment
    sent_at: float
    retransmit_count: int = 0

    @property
    def seq(self) -> int:
        return self.segment.seq

    @property
    def end_seq(self) -> int:
        return self.segment.end_seq


class RetransmissionManager:
    """Tracks unacknowledged segments and drives retransmission."""

    def __init__(self, scheduler: Scheduler, estimator: RTTEstimatorBase,
                 profile: VendorProfile, *,
                 retransmit: Callable[[Segment], None],
                 give_up: Callable[[TrackedSegment], None],
                 trace: Optional[TraceRecorder] = None,
                 name: str = ""):
        self._scheduler = scheduler
        self.estimator = estimator
        self._profile = profile
        self._retransmit_cb = retransmit
        self._give_up_cb = give_up
        self._trace = trace
        self._name = name
        self._queue: List[TrackedSegment] = []
        self._timer = Timer(scheduler, self._on_timeout, name=f"rto/{name}")
        self.backoff_shift = 0
        self.global_faults = 0
        self.total_retransmissions = 0
        self._dead = False
        #: optional hook invoked on every timeout-driven retransmission
        #: (congestion control listens here)
        self.on_timeout_event = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Number of unacknowledged tracked segments."""
        return len(self._queue)

    @property
    def oldest(self) -> Optional[TrackedSegment]:
        """The segment the retransmission timer is protecting."""
        return self._queue[0] if self._queue else None

    def current_rto(self) -> float:
        """The timeout that would be used right now."""
        return self.estimator.rto_for(self.backoff_shift)

    # ------------------------------------------------------------------
    # tracking
    # ------------------------------------------------------------------

    def track(self, segment: Segment) -> None:
        """Register a newly transmitted sequence-consuming segment."""
        if self._dead:
            return
        self._queue.append(TrackedSegment(segment, self._scheduler.now))
        if not self._timer.armed:
            self._timer.start(self.current_rto())

    def on_ack(self, ack: int) -> bool:
        """Process a cumulative ACK.  Returns True if new data was acked."""
        if self._dead:
            return False
        acked = [t for t in self._queue if seq_leq(t.end_seq, ack)]
        if not acked:
            return False
        self._queue = [t for t in self._queue if not seq_leq(t.end_seq, ack)]
        first = acked[0]
        unambiguous = all(t.retransmit_count == 0 for t in acked)
        if first.retransmit_count == 0:
            # Karn: only sample segments never retransmitted
            self.estimator.sample(self._scheduler.now - first.sent_at)
        elif not self.estimator.karn:
            # pre-Karn estimators sample ambiguous ACKs against the most
            # recent transmission (sent_at is updated on retransmit),
            # systematically underestimating the true RTT
            self.estimator.sample(self._scheduler.now - first.sent_at)
        if unambiguous or not self.estimator.karn:
            # Karn: keep the backoff until a valid sample.  Pre-Karn
            # stacks reset it on any acknowledgement.
            self.backoff_shift = 0
        if unambiguous:
            # The Solaris-style global fault counter resets only on an
            # unambiguous acknowledgement -- the paper's Experiment 2
            # discovery hinges on this asymmetry.
            self.global_faults = 0
        if self._queue:
            self._timer.start(self.current_rto())
        else:
            self._timer.stop()
        return True

    def stop(self) -> None:
        """Halt the manager (connection closing)."""
        self._dead = True
        self._timer.stop()
        self._queue.clear()

    # ------------------------------------------------------------------
    # timeout path
    # ------------------------------------------------------------------

    def _on_timeout(self) -> None:
        if self._dead or not self._queue:
            return
        oldest = self._queue[0]
        if oldest.retransmit_count >= self._profile.max_retransmits:
            self._dead = True
            self._record(K.TCP_RETX_GIVE_UP, reason="max_retransmits",
                         count=oldest.retransmit_count, seq=oldest.seq)
            self._give_up_cb(oldest)
            return
        threshold = self._profile.global_fault_threshold
        if threshold is not None and self.global_faults >= threshold:
            self._dead = True
            self._record(K.TCP_RETX_GIVE_UP, reason="global_fault_counter",
                         count=oldest.retransmit_count, seq=oldest.seq,
                         global_faults=self.global_faults)
            self._give_up_cb(oldest)
            return

        oldest.retransmit_count += 1
        oldest.sent_at = self._scheduler.now
        self.total_retransmissions += 1
        self.global_faults += 1
        self.backoff_shift += 1
        self._record(K.TCP_RETRANSMIT, seq=oldest.seq,
                     attempt=oldest.retransmit_count,
                     global_faults=self.global_faults,
                     rto=self.current_rto())
        self._retransmit_cb(oldest.segment)
        self._timer.start(self.current_rto())
        if self.on_timeout_event is not None:
            self.on_timeout_event()

    def force_retransmit(self) -> bool:
        """Retransmit the oldest outstanding segment immediately.

        Used by fast retransmit: the loss signal is duplicate ACKs, not a
        timer, so the backoff shift is left alone.  Returns False when
        nothing is outstanding.
        """
        if self._dead or not self._queue:
            return False
        oldest = self._queue[0]
        oldest.retransmit_count += 1
        oldest.sent_at = self._scheduler.now
        self.total_retransmissions += 1
        self.global_faults += 1
        self._record(K.TCP_RETRANSMIT, seq=oldest.seq,
                     attempt=oldest.retransmit_count,
                     global_faults=self.global_faults,
                     rto=self.current_rto(), fast=True)
        self._retransmit_cb(oldest.segment)
        self._timer.start(self.current_rto())
        return True

    def _record(self, kind: str, **attrs) -> None:
        if self._trace is not None:
            self._trace.record(kind, t=self._scheduler.now, conn=self._name,
                               **attrs)
