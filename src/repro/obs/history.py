"""Content-addressed cross-run history: sweeps compared across PRs.

One journal is one flight; the history store is the logbook.
:class:`HistoryStore` folds each recorded journal into a per-sweep
summary row (engine, config fingerprint, scorecard headline numbers,
coverage, duration) stored content-addressed under ``entries/<id>.json``
-- the id is the hash of the row itself, so re-recording an unchanged
sweep is a no-op and the store never holds two copies of one result.
An append-only ``index.jsonl`` keeps recording order; ``repro history``
renders the log with per-sweep deltas (findings, coverage, rate)
between consecutive recordings of the same experiment fingerprint,
which is how a PR shows what its change bought or cost.

Bench trajectories ride along: :meth:`HistoryStore.record_bench` folds
a ``BENCH_*.json`` payload into a row the same way, so benchmark
numbers become a tracked series instead of a file that overwrites
itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.campaign_report import (CampaignSummary, summarize_journal,
                                       summary_to_json)

#: fields a history row carries; bump when the row shape changes
ROW_VERSION = 1

#: headline metrics deltas are computed over, with render precision
_DELTA_FIELDS = (("findings", 0), ("coverage_total", 0), ("executed", 0),
                 ("rate_per_s", 1))


def _row_id(row: Dict[str, Any]) -> str:
    """Content address of a row: hash of its deterministic fields.

    Wall-clock fields (duration, rates, recording metadata) are
    excluded so the same deterministic sweep recorded twice maps to the
    same entry.
    """
    stable = {k: v for k, v in row.items()
              if k not in ("duration_s", "rate_per_s", "recorded", "id",
                           "version")}
    blob = json.dumps(stable, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class HistoryRow:
    """One recorded sweep (or bench payload), replayed from the store."""

    id: str
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        return str(self.data.get("fingerprint", ""))

    @property
    def engine(self) -> str:
        return str(self.data.get("engine", "unknown"))

    def metric(self, key: str) -> Optional[float]:
        value = self.data.get(key)
        return float(value) if isinstance(value, (int, float)) else None


class HistoryStore:
    """A directory of content-addressed sweep summaries plus an index."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.entries = self.root / "entries"
        self.index = self.root / "index.jsonl"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _put(self, row: Dict[str, Any]) -> HistoryRow:
        row_id = _row_id(row)
        row = dict(row, id=row_id, version=ROW_VERSION)
        self.entries.mkdir(parents=True, exist_ok=True)
        entry = self.entries / f"{row_id}.json"
        fresh = not entry.exists()
        if fresh:
            entry.write_text(json.dumps(row, sort_keys=True, indent=1))
            with open(self.index, "a") as fp:
                fp.write(json.dumps({"id": row_id,
                                     "engine": row.get("engine"),
                                     "fingerprint": row.get("fingerprint")})
                         + "\n")
        return HistoryRow(id=row_id, data=row)

    def record_journal(self, journal: Union[str, Path, CampaignSummary]
                       ) -> HistoryRow:
        """Fold one journal (path or summary) into a history row.

        Idempotent: recording the same deterministic sweep twice adds
        nothing (the content address collides on purpose).
        """
        summary = (journal if isinstance(journal, CampaignSummary)
                   else summarize_journal(journal))
        full = summary_to_json(summary)
        row = {
            "kind": "campaign",
            "engine": full["engine"],
            "fingerprint": full["fingerprint"],
            "start": full["start"],
            "completed": full["completed"],
            "executed": full["executed"],
            "total": full["total"],
            "findings": full["findings"],
            "coverage_total": full["coverage_total"],
            "corpus_size": full["corpus_size"],
            "codes": full["codes"],
            "worker_errors": len(full["worker_errors"]),
            "shrink_steps": full["shrink_steps"],
            "duration_s": round(full["duration_s"], 4),
            "rate_per_s": full["rate_per_s"],
            "scorecard": [
                {"label": run["label"], "codes": run["codes"],
                 "new_coverage": run["new_coverage"]}
                for run in full["runs"]],
        }
        return self._put(row)

    def record_bench(self, path: Union[str, Path]) -> HistoryRow:
        """Fold one ``BENCH_*.json`` payload into a history row."""
        path = Path(path)
        payload = json.loads(path.read_text())
        blob = json.dumps(payload, sort_keys=True)
        row = {
            "kind": "bench",
            "engine": path.stem.lower(),
            "fingerprint": hashlib.sha256(
                path.stem.lower().encode()).hexdigest()[:16],
            "payload": payload,
            "findings": 0,
            "coverage_total": 0,
            "executed": 0,
            "rate_per_s": 0.0,
            "digest": hashlib.sha256(blob.encode()).hexdigest()[:16],
        }
        return self._put(row)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def rows(self) -> List[HistoryRow]:
        """Every recorded row, in recording order."""
        if not self.index.exists():
            return []
        out: List[HistoryRow] = []
        for line in self.index.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                pointer = json.loads(line)
            except ValueError:
                continue
            entry = self.entries / f"{pointer.get('id')}.json"
            if not entry.exists():
                continue
            data = json.loads(entry.read_text())
            out.append(HistoryRow(id=str(pointer.get("id")), data=data))
        return out

    def deltas(self) -> List[Dict[str, Any]]:
        """Per-sweep deltas: each row vs the previous same-fingerprint row.

        The fingerprint pairs recordings of the same experiment, so the
        delta column answers "what changed since the last time this
        sweep ran" -- across PRs when the store is committed, across
        reruns locally.
        """
        latest: Dict[str, HistoryRow] = {}
        out: List[Dict[str, Any]] = []
        for row in self.rows():
            previous = latest.get(row.fingerprint)
            delta: Dict[str, Any] = {}
            if previous is not None:
                for key, _digits in _DELTA_FIELDS:
                    now, before = row.metric(key), previous.metric(key)
                    if now is not None and before is not None:
                        delta[key] = now - before
            out.append({"row": row, "previous": previous, "delta": delta})
            latest[row.fingerprint] = row
        return out

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """The history log, one line per recorded sweep, with deltas."""
        entries = self.deltas()
        if not entries:
            return f"history {self.root}: empty (no sweeps recorded)"
        lines = [f"history {self.root}: {len(entries)} recorded sweep(s)"]
        for position, entry in enumerate(entries, 1):
            row = entry["row"]
            parts = [f"{position:>3}. {row.engine:<10} {row.id}"]
            if row.data.get("kind") == "bench":
                parts.append("bench payload")
            else:
                total = row.data.get("total")
                executed = row.data.get("executed", 0)
                progress = (f"{executed}/{total}" if total is not None
                            else f"{executed}")
                parts.append(f"runs {progress}")
                parts.append(f"findings {row.data.get('findings', 0)}")
                parts.append(f"coverage {row.data.get('coverage_total', 0)}")
                if not row.data.get("completed", True):
                    parts.append("INTERRUPTED")
            delta = entry["delta"]
            if delta:
                shifts = []
                for key, digits in _DELTA_FIELDS:
                    value = delta.get(key)
                    if value:
                        shifts.append(f"{key} {value:+.{digits}f}")
                parts.append("delta vs previous: "
                             + (", ".join(shifts) if shifts else "none"))
            elif entry["previous"] is None and row.data.get("kind") != "bench":
                parts.append("first recording")
            lines.append("  ".join(parts))
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable history (``repro history --json``)."""
        return {
            "root": str(self.root),
            "rows": [
                {"id": entry["row"].id,
                 "engine": entry["row"].engine,
                 "fingerprint": entry["row"].fingerprint,
                 "data": entry["row"].data,
                 "delta": entry["delta"],
                 "previous": (entry["previous"].id
                              if entry["previous"] else None)}
                for entry in self.deltas()],
        }
