# Byzantine fault: zero the ack number of every tenth ACK.
# msg_set_field rewrites the header before the protocol sees it.
if {![info exists n]} {
    set n 0
}
if {[msg_type cur_msg] eq "ACK"} {
    incr n
    if {$n % 10 == 0} {
        msg_set_field ack 0
        msg_log "corrupted ACK #$n"
    }
}
