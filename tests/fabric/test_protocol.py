"""Wire-framing contract: torn connections surface, never corrupt."""

import socket
import struct
import threading

import pytest

from repro.core.fabric import (MAX_FRAME_BYTES, ProtocolError,
                               recv_message, request, send_message)


def _pair():
    return socket.socketpair()


def test_roundtrip_preserves_message():
    a, b = _pair()
    try:
        message = {"type": "grant", "shard": 3, "indices": [5, 6, 7],
                   "nested": {"ok": True, "ratio": 0.5}}
        send_message(a, message)
        assert recv_message(b) == message
    finally:
        a.close()
        b.close()


def test_frames_are_ordered_and_delimited():
    a, b = _pair()
    try:
        for index in range(5):
            send_message(a, {"seq": index})
        for index in range(5):
            assert recv_message(b) == {"seq": index}
    finally:
        a.close()
        b.close()


def test_clean_eof_between_frames_is_none():
    a, b = _pair()
    send_message(a, {"type": "done"})
    a.close()
    try:
        assert recv_message(b) == {"type": "done"}
        assert recv_message(b) is None
    finally:
        b.close()


def test_eof_mid_frame_raises():
    a, b = _pair()
    # a full length prefix promising 100 bytes, then death
    a.sendall(struct.pack(">I", 100) + b'{"type":')
    a.close()
    try:
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        b.close()


def test_oversize_length_prefix_rejected_without_allocation():
    a, b = _pair()
    a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    try:
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close()
        b.close()


def test_undecodable_body_raises():
    a, b = _pair()
    body = b"\xff\xfe not json"
    a.sendall(struct.pack(">I", len(body)) + body)
    try:
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close()
        b.close()


def test_non_object_body_raises():
    a, b = _pair()
    body = b"[1, 2, 3]"
    a.sendall(struct.pack(">I", len(body)) + body)
    try:
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close()
        b.close()


def test_request_raises_when_peer_closes_without_reply():
    a, b = _pair()

    def peer():
        recv_message(b)
        b.close()

    thread = threading.Thread(target=peer)
    thread.start()
    try:
        with pytest.raises(ProtocolError):
            request(a, {"type": "lease"})
    finally:
        thread.join()
        a.close()
