"""Round-trip-time estimation and retransmission-timeout computation.

Two estimators implement the same interface:

- :class:`JacobsonKarnEstimator` -- RFC-1122's required combination:
  Jacobson's smoothed RTT/variance estimator for the RTO, with Karn's rule
  for sample selection (never sample a retransmitted segment; retain the
  backed-off RTO until a valid sample arrives).
- :class:`NaiveEstimator` -- the Solaris 2.3 stand-in.  The paper found
  Solaris "was not nearly as adaptable to a sudden slow network as the
  other implementations" and inferred it "either did not use Jacobson's
  algorithm, or did not select RTT measurements in the same way".  The
  naive estimator uses a very small EWMA gain (so 30 delayed ACKs barely
  move it) and reproduces the observed post-timeout shape: the first
  retransmission fires at roughly twice the smoothed RTT, the second at
  the smoothed RTT, "and exponential backoff started from there".

``rto_for(shift)`` returns the timeout to use after ``shift`` consecutive
timeouts of the oldest outstanding segment; the retransmission manager owns
``shift`` and resets it per Karn's rule.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.tcp.vendors import VendorProfile


def _quantize_up(value: float, tick: float) -> float:
    """Round up to the timer tick, modelling coarse-grained kernel timers."""
    if tick <= 0:
        return value
    return math.ceil(value / tick - 1e-9) * tick


class RTTEstimatorBase:
    """Interface shared by both estimators."""

    #: Whether the estimator follows Karn's sample-selection rule.  When
    #: False, the retransmission manager feeds it *ambiguous* samples too
    #: (measured from the most recent transmission -- the classic pre-Karn
    #: bug that systematically underestimates RTT) and resets backoff on
    #: any ACK.
    karn = True

    def sample(self, rtt: float) -> None:
        """Feed one valid (un-retransmitted, per Karn) RTT measurement."""
        raise NotImplementedError

    def rto_for(self, shift: int) -> float:
        """RTO after ``shift`` consecutive timeouts (0 = first attempt)."""
        raise NotImplementedError

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT, or None before the first sample."""
        raise NotImplementedError


class JacobsonKarnEstimator(RTTEstimatorBase):
    """RFC-1122 RTO: ``srtt + k * rttvar``, exponential backoff, clamped.

    The variance term is floored at ``max(tick/2, srtt * var_floor_frac)``;
    the fraction is the vendor-profile knob modelling the different timer
    granularities that spread otherwise-identical BSD stacks apart in the
    delayed-ACK experiment.
    """

    def __init__(self, profile: VendorProfile):
        self._p = profile
        self._srtt: Optional[float] = None
        self._rttvar: float = 0.0
        self.sample_count = 0

    @property
    def srtt(self) -> Optional[float]:
        return self._srtt

    @property
    def rttvar(self) -> float:
        return self._rttvar

    def sample(self, rtt: float) -> None:
        self.sample_count += 1
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
            return
        err = rtt - self._srtt
        self._srtt += self._p.rtt_gain * err
        self._rttvar += self._p.var_gain * (abs(err) - self._rttvar)

    def base_rto(self) -> float:
        """The un-backed-off RTO."""
        if self._srtt is None:
            base = self._p.initial_rto
        else:
            var_floor = max(self._p.timer_tick / 2.0,
                            self._srtt * self._p.var_floor_frac)
            base = self._srtt + self._p.rto_k * max(self._rttvar, var_floor)
        base = _quantize_up(base, self._p.timer_tick)
        return min(max(base, self._p.min_rto), self._p.max_rto)

    def rto_for(self, shift: int) -> float:
        return min(self.base_rto() * (2 ** shift), self._p.max_rto)


class NaiveEstimator(RTTEstimatorBase):
    """Weak-gain EWMA with the Solaris post-timeout reset quirk.

    All samples are accepted (no Karn selection; ``karn = False`` makes
    the retransmission manager feed ambiguous samples measured from the
    most recent transmission, which systematically underestimates RTT) and
    the gain is small, so a sudden network slowdown barely registers --
    exactly the under-adaptation the paper measured (first retransmission
    at ~2.4 s against a 3 s ACK delay).
    """

    karn = False

    def __init__(self, profile: VendorProfile):
        self._p = profile
        self._srtt: Optional[float] = None
        self.sample_count = 0

    @property
    def srtt(self) -> Optional[float]:
        return self._srtt

    def sample(self, rtt: float) -> None:
        self.sample_count += 1
        if self._srtt is None:
            self._srtt = rtt
        else:
            self._srtt += self._p.naive_gain * (rtt - self._srtt)

    def _clamp(self, value: float) -> float:
        value = _quantize_up(value, self._p.timer_tick)
        return min(max(value, self._p.min_rto), self._p.max_rto)

    def rto_for(self, shift: int) -> float:
        srtt = self._srtt if self._srtt is not None else self._p.initial_rto
        if shift == 0 or not self._p.naive_timeout_resets_to_srtt:
            base = self._clamp(2.0 * srtt)
            return min(base * (2 ** shift), self._p.max_rto)
        # after the first timeout the interval resets to srtt and doubles
        # from there: 2*srtt, srtt, 2*srtt, 4*srtt, ...
        return min(self._clamp(srtt) * (2 ** (shift - 1)), self._p.max_rto)


def make_estimator(profile: VendorProfile) -> RTTEstimatorBase:
    """Build the estimator a profile calls for."""
    if profile.uses_jacobson:
        return JacobsonKarnEstimator(profile)
    return NaiveEstimator(profile)
