"""Experiment GMP-3 (paper Table 7): proclaim forwarding.

"In this test, a machine sent a PROCLAIM to a machine which was not the
group leader.  In order to do this, the send filter script of the machine
compsun1 was configured to drop PROCLAIMs to the group leader so that only
the PROCLAIM to non-leader machines were actually sent."

With the historical bug, the leader answers the *forwarder* instead of the
originator: "this created a vicious cycle of PROCLAIM sending between the
forwarder (in this case the crown prince), and the leader", and the
newcomer is never answered.  With the fix ("the group leader always
responds to proclaim originator instead of the proclaim sender"), the
newcomer joins normally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core import ScriptContext
from repro.experiments.gmp_common import build_gmp_cluster
from repro.gmp import BugFlags, FIXED

WORLD = [1, 2, 3]
LEADER = 1
CROWN_PRINCE = 2
NEWCOMER = 3
LOOP_THRESHOLD = 20  # proclaims between leader and prince that count as a loop


@dataclass
class ProclaimResult:
    """One Table 7 row (buggy or fixed)."""

    bugs_on: bool
    proclaim_loop_detected: bool
    leader_prince_proclaims: int
    newcomer_received_reply: bool
    newcomer_admitted: bool


def drop_proclaims_to_leader(ctx: ScriptContext) -> None:
    """compsun1's send filter: its PROCLAIMs to the leader never leave."""
    if (ctx.msg_type() == "PROCLAIM"
            and ctx.msg.meta.get("dst") == LEADER
            and ctx.field("originator") == NEWCOMER):
        ctx.log("PROCLAIM to leader dropped")
        ctx.drop()


def execute_proclaim_forwarding(*, bugs_on: bool, seed: int = 0,
                                observe_for: float = 5.0):
    """Drive Table 7; returns ``(cluster, newcomer_start_time)``."""
    flags = BugFlags(proclaim_reply_to_sender=True) if bugs_on else FIXED
    cluster = build_gmp_cluster(WORLD, default_bugs=flags, seed=seed)
    cluster.start(LEADER, CROWN_PRINCE)
    cluster.run_until(8.0)
    assert cluster.daemons[LEADER].view.members == (LEADER, CROWN_PRINCE)

    cluster.pfis[NEWCOMER].set_send_filter(drop_proclaims_to_leader)
    cluster.start(NEWCOMER)
    start = cluster.scheduler.now
    cluster.run_until(start + observe_for)
    return cluster, start


def run_proclaim_forwarding(*, bugs_on: bool, seed: int = 0,
                            observe_for: float = 5.0) -> ProclaimResult:
    """Run Table 7 with the forwarding bug on or off."""
    cluster, start = execute_proclaim_forwarding(
        bugs_on=bugs_on, seed=seed, observe_for=observe_for)
    trace = cluster.trace
    # proclaims flowing between leader and crown prince after the newcomer
    # appeared: the loop signature
    loop_msgs = [
        e for e in trace.entries("gmp.send", msg_kind="PROCLAIM")
        if e.time > start
        and {e.get("node"), e.get("dst")} == {LEADER, CROWN_PRINCE}
    ]
    replies_to_newcomer = [
        e for e in trace.entries("gmp.send")
        if e.time > start and e.get("dst") == NEWCOMER
        and e.get("msg_kind") in ("PROCLAIM", "JOIN")
        and e.get("node") == LEADER
    ]
    admitted = NEWCOMER in cluster.daemons[LEADER].view.members
    return ProclaimResult(
        bugs_on=bugs_on,
        proclaim_loop_detected=len(loop_msgs) >= LOOP_THRESHOLD,
        leader_prince_proclaims=len(loop_msgs),
        newcomer_received_reply=bool(replies_to_newcomer),
        newcomer_admitted=admitted,
    )


def run_all(seed: int = 0) -> Dict[str, ProclaimResult]:
    """Table 7: the bug as found, and the behaviour after the fix."""
    return {
        "buggy": run_proclaim_forwarding(bugs_on=True, seed=seed),
        "fixed": run_proclaim_forwarding(bugs_on=False, seed=seed),
    }


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import gmp_pack
    return gmp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite.

    Only the fixed variant: the buggy run deliberately violates
    GMP-PROCLAIM-REPLY and belongs to the known-bug detection tests.
    """
    yield ("proclaim/forwarding_fixed",
           execute_proclaim_forwarding(bugs_on=False, seed=seed)[0].trace)
