"""Unit tests for Timer and TimerTable."""

import pytest

from repro.netsim.scheduler import Scheduler
from repro.netsim.timer import Timer, TimerTable


@pytest.fixture
def sched():
    return Scheduler()


class TestTimer:
    def test_fires_after_delay(self, sched):
        fired = []
        timer = Timer(sched, lambda: fired.append(sched.now))
        timer.start(2.0)
        sched.run()
        assert fired == [2.0]

    def test_stop_prevents_firing(self, sched):
        fired = []
        timer = Timer(sched, lambda: fired.append(1))
        timer.start(2.0)
        timer.stop()
        sched.run()
        assert fired == []

    def test_restart_cancels_previous_deadline(self, sched):
        fired = []
        timer = Timer(sched, lambda: fired.append(sched.now))
        timer.start(2.0)
        sched.run_until(1.0)
        timer.start(5.0)
        sched.run()
        assert fired == [6.0]

    def test_armed_reflects_state(self, sched):
        timer = Timer(sched, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sched.run()
        assert not timer.armed

    def test_deadline(self, sched):
        timer = Timer(sched, lambda: None)
        assert timer.deadline is None
        timer.start(3.0)
        assert timer.deadline == 3.0

    def test_expiry_count(self, sched):
        timer = Timer(sched, lambda: None)
        for _ in range(3):
            timer.start(1.0)
            sched.run()
        assert timer.expiry_count == 3

    def test_stop_idempotent(self, sched):
        timer = Timer(sched, lambda: None)
        timer.stop()
        timer.stop()
        assert not timer.armed

    def test_can_restart_from_callback(self, sched):
        fired = []

        def callback():
            fired.append(sched.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = Timer(sched, callback)
        timer.start(1.0)
        sched.run()
        assert fired == [1.0, 2.0, 3.0]


class TestTimerTable:
    def test_register_and_fire(self, sched):
        table = TimerTable(sched)
        fired = []
        table.register("hb", "a", 1.0, lambda: fired.append("a"))
        sched.run()
        assert fired == ["a"]

    def test_register_replaces_existing(self, sched):
        table = TimerTable(sched)
        fired = []
        table.register("hb", "a", 1.0, lambda: fired.append("old"))
        table.register("hb", "a", 2.0, lambda: fired.append("new"))
        sched.run()
        assert fired == ["new"]

    def test_unregister_single(self, sched):
        table = TimerTable(sched)
        fired = []
        table.register("hb", "a", 1.0, lambda: fired.append("a"))
        table.register("hb", "b", 1.0, lambda: fired.append("b"))
        assert table.unregister("hb", "a") == 1
        sched.run()
        assert fired == ["b"]

    def test_unregister_all_of_kind(self, sched):
        table = TimerTable(sched)
        fired = []
        table.register("hb", "a", 1.0, lambda: fired.append("a"))
        table.register("hb", "b", 1.0, lambda: fired.append("b"))
        table.register("other", "c", 1.0, lambda: fired.append("c"))
        assert table.unregister("hb") == 2
        sched.run()
        assert fired == ["c"]

    def test_unregister_missing_returns_zero(self, sched):
        table = TimerTable(sched)
        assert table.unregister("hb", "nope") == 0
        assert table.unregister("hb") == 0

    def test_restart(self, sched):
        table = TimerTable(sched)
        fired = []
        table.register("hb", "a", 1.0, lambda: fired.append(sched.now))
        assert table.restart("hb", "a", 5.0)
        sched.run()
        assert fired == [5.0]

    def test_restart_missing_returns_false(self, sched):
        assert TimerTable(sched).restart("hb", "a", 1.0) is False

    def test_armed_queries(self, sched):
        table = TimerTable(sched)
        table.register("hb", "a", 1.0, lambda: None)
        assert table.armed("hb")
        assert table.armed("hb", "a")
        assert not table.armed("hb", "b")
        assert not table.armed("other")

    def test_armed_kinds(self, sched):
        table = TimerTable(sched)
        table.register("hb", "a", 1.0, lambda: None)
        table.register("mc", "x", 1.0, lambda: None)
        assert table.armed_kinds() == ["hb", "mc"]

    def test_stop_all(self, sched):
        table = TimerTable(sched)
        fired = []
        table.register("hb", "a", 1.0, lambda: fired.append(1))
        table.register("mc", "b", 1.0, lambda: fired.append(2))
        table.stop_all()
        sched.run()
        assert fired == []
        assert len(table) == 0
