"""Checkpoint/fork: snapshot a warmed-up testbed, continue it N ways.

Every fuzz trial, ddmin probe and campaign run used to replay its whole
testbed from t=0 even though most trials share a long prefix (handshake,
view formation, steady state).  This module turns that prefix into a
reusable artifact: :meth:`Checkpoint.capture` freezes a live
:class:`~repro.core.orchestrator.ExperimentEnv` -- scheduler heap with
its bound-state callbacks, protocol sessions hanging off the scheduled
events (TCP connections, GMP daemons/views/timers), installed filter
scripts with their tclish interpreter state, PFI hold queues, the trace
position and the seeded RNG streams -- and every :meth:`Checkpoint.fork`
yields an independent continuation of that exact moment.

The mechanics are a :func:`copy.deepcopy` of the *world graph* rooted at
the environment, which is only sound because the simulator schedules
**bound methods and callable-class instances, never closures**:
``deepcopy`` treats functions as atomic values, so a lambda stored in a
heap entry would keep pointing into the original world and the fork
would silently cross-talk with it.  :func:`audit_scheduler` enforces
that rule at capture time by walking the pending heap and rejecting any
callback whose identity cannot survive the copy.

Two further pieces make forks cheap and correct:

- the trace prefix is **shared, not copied**: the deepcopy memo is
  pre-seeded with :meth:`TraceRecorder.fork`, which reuses the
  write-once entry objects of the prefix, so a million-entry warmup is
  O(1) per fork instead of O(entries);
- forks can be **re-seeded** to a different run seed
  (``fork(seed=...)``), re-deriving the network link streams and every
  ``env.dist(...)`` stream exactly as a cold run under that seed would
  have.  This is valid only while the prefix consumed zero RNG draws --
  the stock rigs satisfy that (links carry no jitter/loss, filter
  scripts are not yet installed) and the draw counters prove it; a
  prefix that did draw raises :class:`CheckpointError` instead of
  diverging silently.

Invalidation rules (also in ``docs/checkpointing.md``): a checkpoint is
tied to the exact prefix code, seed-portable only under the zero-draw
condition above, process-local (never pickled), and its ``identity``
digest is what consumers mix into cache keys (see
:meth:`repro.core.orchestrator.RunCache.key`) so results computed from
different prefixes can never alias.

Checkpoints form **trees**: ``capture`` also accepts a :class:`Forked`
continuation, snapshotting the branch mid-flight with the originating
checkpoint recorded as ``parent`` and its digest chained into the
child's ``identity`` -- so two branches that diverged from the same
root but applied different perturbations can never alias either.  Deep
trees are kept affordable by :class:`CheckpointPool`, an LRU store
bounded by snapshot count and retained trace entries (the live-memory
proxy for a snapshot, since worlds are never pickled).
"""

from __future__ import annotations

import copy
import functools
import hashlib
import inspect
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Union

from repro.core.orchestrator import ExperimentEnv
from repro.netsim.scheduler import Scheduler, SchedulerClock

#: default-argument types a plain scheduled function may carry without
#: smuggling world state past the deepcopy
_ATOMIC_DEFAULTS = (int, float, str, bytes, bool, frozenset, type(None))


class CheckpointError(RuntimeError):
    """A world cannot be captured, forked, or re-seeded soundly."""


def _callable_issue(fn: Any, where: str) -> Optional[str]:
    """Why ``fn`` would not survive a world deepcopy, or None if it would.

    Bound methods and callable-class instances follow the deepcopy memo
    into the fork; plain functions are atomic, which is fine only when
    they are genuinely stateless (no closure cells, no mutable/world
    defaults).
    """
    if isinstance(fn, functools.partial):
        return _callable_issue(fn.func, where)
    if inspect.ismethod(fn):
        return None  # bound method: __self__ is deep-copied via the memo
    if inspect.isfunction(fn):
        if fn.__closure__:
            return (f"{where}: closure {fn.__qualname__} would keep "
                    f"referencing the original world after a fork")
        for default in (fn.__defaults__ or ()):
            if not isinstance(default, _ATOMIC_DEFAULTS):
                return (f"{where}: function {fn.__qualname__} smuggles a "
                        f"{type(default).__name__} through a default "
                        f"argument; pass it via scheduler args instead")
        return None
    if callable(fn):
        return None  # callable instance: deep-copied via the memo
    return f"{where}: {fn!r} is not callable"


def audit_scheduler(scheduler: Scheduler) -> List[str]:
    """Deepcopy-safety issues among the scheduler's pending callbacks.

    Returns human-readable findings (empty means the heap is clean).
    :meth:`Checkpoint.capture` runs this by default and refuses to
    snapshot a world that would fork unsoundly.
    """
    issues = []
    for event in scheduler.pending_events():
        issue = _callable_issue(
            event.callback, f"event@t={event.time:.6f}")
        if issue is not None:
            issues.append(issue)
    return issues


@dataclass
class Forked:
    """One independent continuation of a checkpoint."""

    env: ExperimentEnv
    roots: Dict[str, Any]
    checkpoint: "Checkpoint"

    def __getitem__(self, key: str) -> Any:
        """Convenience access to a named root (``fork["cluster"]``)."""
        return self.roots[key]


class Checkpoint:
    """A frozen moment of one simulation, forkable any number of times.

    ``capture`` deep-copies the live world once into a pristine
    snapshot (so the caller may keep running the original); each
    ``fork`` deep-copies the snapshot again.  ``roots`` carries the rig
    objects a continuation needs back out of the copy -- a testbed, a
    cluster, a client connection -- anything reachable from them is
    copied consistently with the environment because everything goes
    through one shared deepcopy memo.
    """

    def __init__(self, snapshot: Dict[str, Any], *, label: str,
                 identity: str, time: float, position: int,
                 parent: Optional["Checkpoint"] = None):
        self._snapshot = snapshot
        self.label = label
        self.identity = identity
        #: virtual time at capture
        self.time = time
        #: trace length at capture
        self.position = position
        #: how many forks this checkpoint has produced
        self.forks = 0
        #: the checkpoint this one's branch was forked from (None: root)
        self.parent = parent

    @property
    def depth(self) -> int:
        """Distance from the tree root (0 for a root checkpoint)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    @classmethod
    def capture(cls, env: Union[ExperimentEnv, "Forked"],
                roots: Optional[Dict[str, Any]] = None, *,
                label: str = "", audit: bool = True) -> "Checkpoint":
        """Snapshot ``env`` (plus named rig ``roots``) as of right now.

        ``env`` may also be a :class:`Forked` continuation, in which
        case the branch is captured mid-flight as a *nested* checkpoint:
        its ``roots`` default to the fork's roots, its ``parent`` is the
        checkpoint the branch came from, and the parent's digest is
        chained into the child's ``identity`` so siblings that diverged
        differently from the same root never alias.  The fork keeps
        running after the capture, exactly like a root env does.

        The scheduler heap is compacted first so cancelled tombstones
        are not copied into every fork, and (unless ``audit=False``)
        every pending callback is vetted twice: first by the *static*
        audit (:func:`repro.staticcheck.audit_pending`), which pins
        each finding to the offending function's source line, then by
        the runtime :func:`audit_scheduler` for anything the static
        pass cannot see.
        """
        parent: Optional[Checkpoint] = None
        if isinstance(env, Forked):
            forked = env
            env = forked.env
            parent = forked.checkpoint
            if roots is None:
                roots = forked.roots
        if audit:
            from repro.staticcheck import audit_pending
            static = audit_pending(env.scheduler,
                                   atomic=_ATOMIC_DEFAULTS)
            if static:
                raise CheckpointError(
                    "world is not checkpoint-safe (static audit):\n  "
                    + "\n  ".join(diag.format(path)
                                  for path, diag in static))
            issues = audit_scheduler(env.scheduler)
            if issues:
                raise CheckpointError(
                    "world is not checkpoint-safe:\n  "
                    + "\n  ".join(issues))
        env.scheduler.compact()
        world = {"env": env, "roots": dict(roots or {})}
        snapshot = _copy_world(world)
        identity = _identity(env, world["roots"], label, parent=parent)
        return cls(snapshot, label=label or f"t={env.scheduler.now:g}",
                   identity=identity, time=env.scheduler.now,
                   position=env.trace.position, parent=parent)

    def fork(self, *, seed: Optional[int] = None) -> Forked:
        """An independent continuation; optionally re-seeded.

        With ``seed`` given (and different from the captured seed), the
        fork's RNG streams are re-derived as a cold run under that seed
        would have derived them -- sound only for zero-draw prefixes,
        enforced by the stream draw counters.
        """
        world = _copy_world(self._snapshot)
        env: ExperimentEnv = world["env"]
        if seed is not None and seed != env.seed:
            try:
                env.reseed(seed)
            except RuntimeError as err:
                raise CheckpointError(
                    f"checkpoint {self.label!r} cannot be re-seeded: "
                    f"{err}") from err
        self.forks += 1
        return Forked(env=env, roots=world["roots"], checkpoint=self)

    def __repr__(self) -> str:
        lineage = f", depth={self.depth}" if self.parent is not None else ""
        return (f"Checkpoint({self.label}, t={self.time:g}, "
                f"entries={self.position}, forks={self.forks}{lineage})")


class CheckpointPool:
    """LRU store of live checkpoints with a count and entry budget.

    Checkpoint trees grow one snapshot per explored branch segment, and
    each snapshot retains a full world graph -- an unbounded tree on a
    long exploration would exhaust memory before the scheduler does.
    The pool bounds that: ``put`` evicts least-recently-used snapshots
    once either ``max_items`` (snapshot count) or ``max_entries`` (sum
    of retained trace positions, the cheap live-memory proxy for worlds
    that are never pickled) would be exceeded.  The newest snapshot is
    never evicted, so a single oversized checkpoint still pools.

    ``get`` refreshes recency and counts a hit; a miss (including a
    previously evicted key) counts against ``misses`` so consumers such
    as :class:`repro.oracle.fuzz.ForkEngine` can report reuse rates.
    """

    def __init__(self, max_items: Optional[int] = None,
                 max_entries: Optional[int] = None):
        self._items: "OrderedDict[Hashable, Checkpoint]" = OrderedDict()
        self.max_items = max_items
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    @property
    def entries(self) -> int:
        """Total retained trace entries across pooled snapshots."""
        return sum(cp.position for cp in self._items.values())

    def keys(self) -> List[Hashable]:
        """Live keys, LRU-first (for ancestor search over a tree)."""
        return list(self._items.keys())

    def get(self, key: Hashable) -> Optional[Checkpoint]:
        """The pooled checkpoint under ``key``, refreshed as most recent."""
        checkpoint = self._items.get(key)
        if checkpoint is None:
            self.misses += 1
            return None
        self._items.move_to_end(key)
        self.hits += 1
        return checkpoint

    def put(self, key: Hashable, checkpoint: Checkpoint) -> Checkpoint:
        """Pool ``checkpoint`` under ``key``, evicting LRU past budget."""
        self._items[key] = checkpoint
        self._items.move_to_end(key)
        while len(self._items) > 1 and self._over_budget():
            self._items.popitem(last=False)
            self.evictions += 1
        return checkpoint

    def clear(self) -> None:
        """Drop every pooled snapshot (budget counters are kept)."""
        self._items.clear()

    def _over_budget(self) -> bool:
        if self.max_items is not None and len(self._items) > self.max_items:
            return True
        return (self.max_entries is not None
                and self.entries > self.max_entries)

    def stats(self) -> Dict[str, int]:
        """Reuse counters for reports: hits/misses/evictions/size."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "items": len(self._items),
                "entries": self.entries}

    def __repr__(self) -> str:
        return (f"CheckpointPool(items={len(self._items)}, "
                f"entries={self.entries}, hits={self.hits}, "
                f"misses={self.misses}, evictions={self.evictions})")


def _copy_world(world: Dict[str, Any]) -> Dict[str, Any]:
    """Deep-copy a world graph, sharing the trace prefix.

    The memo is pre-seeded so every reference to the environment's
    recorder lands on a shallow fork that reuses the prefix's write-once
    entry objects; afterwards the copy's recorder is re-bound to the
    copy's scheduler (deepcopy routes :class:`TraceRecorder` through its
    ``__getstate__``, which deliberately drops the clock).
    """
    env: ExperimentEnv = world["env"]
    memo: Dict[int, Any] = {id(env.trace): env.trace.fork()}
    copied = copy.deepcopy(world, memo)
    new_env: ExperimentEnv = copied["env"]
    new_env.trace.bind_clock(SchedulerClock(new_env.scheduler))
    return copied


def _identity(env: ExperimentEnv, roots: Dict[str, Any],
              label: str, *, parent: Optional[Checkpoint] = None) -> str:
    """A content digest naming what this checkpoint is a snapshot *of*.

    Mixes the capture label, seed, scheduler progress and the trace's
    per-kind histogram: two checkpoints built by different prefix code,
    depths or seeds get different identities, which is what cache keys
    need (full byte-level state hashing would cost more than the fork
    it protects).  A nested checkpoint additionally chains its parent's
    digest, so the identity names the whole branch path from the root,
    not just the local scheduler position.
    """
    digest = hashlib.sha256()
    if parent is not None:
        digest.update(b"parent:")
        digest.update(parent.identity.encode())
    digest.update(label.encode())
    digest.update(str(env.seed).encode())
    digest.update(f"{env.scheduler.now!r}".encode())
    digest.update(str(env.scheduler.dispatched_count).encode())
    digest.update(str(env.trace.position).encode())
    for kind, count in sorted(env.trace.count_by_kind().items()):
        digest.update(f"{kind}={count};".encode())
    digest.update(",".join(sorted(roots)).encode())
    return digest.hexdigest()[:16]
