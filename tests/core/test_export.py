"""Tests for trace export/import and run-to-run determinism pinning."""

import io

from repro.analysis.export import (VOLATILE_ATTRS, dump_trace,
                                   entry_to_dict, load_trace, traces_equal)
from repro.netsim.trace import TraceEntry, TraceRecorder


def make_trace():
    trace = TraceRecorder(clock=lambda: 0.0)
    trace.record("tcp.transmit", t=1.5, seq=100, msg_type="DATA")
    trace.record("gmp.view_adopted", t=2.0, members=(1, 2, 3), leader=1)
    trace.record("pfi.drop", t=3.0, payload=b"\x01\x02", note="bytes here")
    return trace


def test_roundtrip_preserves_entries():
    trace = make_trace()
    restored = load_trace(dump_trace(trace))
    assert len(restored) == 3
    assert restored.times("tcp.transmit") == [1.5]
    assert restored.first("gmp.view_adopted")["leader"] == 1


def test_bytes_roundtrip():
    restored = load_trace(dump_trace(make_trace()))
    assert restored.first("pfi.drop")["payload"] == b"\x01\x02"


def test_tuples_become_lists_but_compare_equal():
    trace = make_trace()
    restored = load_trace(dump_trace(trace))
    assert traces_equal(trace, restored)


def test_file_like_io():
    buffer = io.StringIO()
    dump_trace(make_trace(), buffer)
    buffer.seek(0)
    restored = load_trace(buffer)
    assert len(restored) == 3


def test_empty_trace():
    trace = TraceRecorder(clock=lambda: 0.0)
    assert dump_trace(trace) == ""
    assert len(load_trace("")) == 0


def test_entry_to_dict_shape():
    entry = TraceEntry(4.2, "k", {"a": 1})
    assert entry_to_dict(entry) == {"t": 4.2, "kind": "k",
                                    "attrs": {"a": 1}}


def test_unserializable_attr_falls_back_to_repr():
    class Opaque:
        def __repr__(self):
            return "<opaque>"

    trace = TraceRecorder(clock=lambda: 0.0)
    trace.record("x", t=0.0, thing=Opaque())
    restored = load_trace(dump_trace(trace))
    assert restored.first("x")["thing"] == "<opaque>"


def test_experiment_runs_are_bit_identical():
    """Determinism pinning: the same experiment twice -> the same trace."""
    from repro.tcp import SOLARIS_23

    traces = []
    for _ in range(2):
        # re-run the full experiment and capture its trace text
        from repro.experiments.tcp_common import (build_tcp_testbed,
                                                  open_connection)
        testbed = build_tcp_testbed(SOLARIS_23, seed=9)
        client, _ = open_connection(testbed)
        client.send(b"E" * 512)
        testbed.pfi.set_receive_filter(lambda ctx: ctx.drop())
        testbed.env.run_until(100.0)
        traces.append(dump_trace(testbed.trace,
                                 exclude_attrs=VOLATILE_ATTRS))
    assert traces[0] == traces[1]


def test_stream_trace_bytes_match_dump_trace():
    from repro.analysis.export import stream_trace
    trace = make_trace()
    whole = io.StringIO()
    dump_trace(trace, whole)
    streamed = io.StringIO()
    count = stream_trace(trace, streamed, buffer_lines=2)  # force flushes
    assert streamed.getvalue() == whole.getvalue()
    assert count == len(trace)


def test_stream_trace_excludes_attrs():
    from repro.analysis.export import stream_trace
    trace = TraceRecorder(clock=lambda: 0.0)
    trace.record("a", t=1.0, uid=5, keep="yes")
    out = io.StringIO()
    stream_trace(trace, out, exclude_attrs=VOLATILE_ATTRS)
    assert "uid" not in out.getvalue()
    assert "keep" in out.getvalue()


def test_export_trace_roundtrips_via_file(tmp_path):
    from repro.analysis.export import export_trace
    trace = make_trace()
    path = tmp_path / "run.jsonl"
    count = export_trace(trace, path)
    assert count == len(trace)
    restored = load_trace(path.read_text())
    assert traces_equal(trace, restored)
