"""Compile-once representation of tclish scripts.

The paper's execution model re-interprets the filter script for every
intercepted message ("each time a message passes into the PFI layer, the
appropriate (send or receive) script is interpreted").  The *semantics*
require per-message evaluation -- variables change between messages -- but
nothing requires per-message *parsing*: the command structure of a script
is a pure function of its source text.

:func:`compile_script` runs the lexer once and analyses every word:

- a braced word is stripped and stored verbatim (``LITERAL``);
- a quoted or bare word with no ``$``, ``[`` or ``\\`` is stored as its
  final string (``LITERAL``) -- execution skips the character-by-character
  ``substitute()`` walk entirely;
- a word that is exactly ``$name`` / ``${name}`` becomes a direct variable
  read (``VARREF``);
- anything else is pre-tokenised into substitution *segments* -- literal
  text runs (backslash escapes already applied), variable reads, and
  nested command sources -- so runtime substitution is a join over
  resolved segments instead of a character scan (``SEGMENTS``).

A bounded LRU cache maps source strings to compiled scripts.  The cache is
module-level and shared by every :class:`~repro.core.tclish.interp.Interp`
in the process: compilation depends only on the source text, never on
interpreter state, so sharing is safe and lets a proc body compiled by one
filter be reused by another.  Per-interpreter hit/miss counters live on
the interpreter (see ``Interp.stats()``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.core.tclish.errors import TclError
from repro.core.tclish.lexer import split_commands, split_words

# word kinds
LITERAL = 0     # text is the final word value
VARREF = 1      # text is a variable name, value = interp.get_var(text)
SEGMENTS = 2    # segments is a pre-tokenised substitution program

# segment codes
SEG_TEXT = 0    # payload is literal text (escapes already applied)
SEG_VAR = 1     # payload is a variable name
SEG_CMD = 2     # payload is a nested script source to evaluate

Segment = Tuple[int, str]


class CompiledWord:
    """One analysed word of a command."""

    __slots__ = ("kind", "text", "segments")

    def __init__(self, kind: int, text: str = "",
                 segments: Optional[Tuple[Segment, ...]] = None):
        self.kind = kind
        self.text = text
        self.segments = segments

    def __repr__(self) -> str:
        names = {LITERAL: "lit", VARREF: "var", SEGMENTS: "subst"}
        detail = self.text if self.kind != SEGMENTS else self.segments
        return f"CompiledWord({names[self.kind]}, {detail!r})"


class CompiledCommand:
    """One command: the analysed words in order."""

    __slots__ = ("words",)

    def __init__(self, words: List[CompiledWord]):
        self.words = words

    def __repr__(self) -> str:
        return f"CompiledCommand({self.words!r})"


class CompiledScript:
    """A parsed script: the command list plus the source it came from."""

    __slots__ = ("source", "commands")

    def __init__(self, source: str, commands: List[CompiledCommand]):
        self.source = source
        self.commands = commands

    def __repr__(self) -> str:
        return f"CompiledScript({len(self.commands)} commands)"


def _needs_substitution(text: str) -> bool:
    """True if the text contains any substitution trigger."""
    return "$" in text or "[" in text or "\\" in text


def compile_substitution(text: str) -> Tuple[Segment, ...]:
    """Pre-tokenise a substitution string into segments.

    Mirrors ``Interp.substitute`` exactly: backslash escapes, ``$name`` /
    ``${name}`` variable reads, and ``[script]`` command substitution.
    Adjacent literal text (including resolved escapes) is merged into one
    ``SEG_TEXT`` run.
    """
    from repro.core.tclish.interp import _backslash, _scan_varname

    segments: List[Segment] = []
    text_run: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            text_run.append(_backslash(text[i + 1]))
            i += 2
        elif ch == "$":
            name, i = _scan_varname(text, i)
            if name is None:
                text_run.append("$")
            else:
                if text_run:
                    segments.append((SEG_TEXT, "".join(text_run)))
                    text_run = []
                segments.append((SEG_VAR, name))
        elif ch == "[":
            depth = 0
            j = i
            while j < n:
                if text[j] == "\\" and j + 1 < n:
                    j += 2
                    continue
                if text[j] == "[":
                    depth += 1
                elif text[j] == "]":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if depth != 0:
                raise TclError("unmatched open bracket in substitution")
            if text_run:
                segments.append((SEG_TEXT, "".join(text_run)))
                text_run = []
            segments.append((SEG_CMD, text[i + 1:j]))
            i = j + 1
        else:
            text_run.append(ch)
            i += 1
    if text_run:
        segments.append((SEG_TEXT, "".join(text_run)))
    return tuple(segments)


def _simple_varname(word: str) -> Optional[str]:
    """The variable name if the word is exactly ``$name`` or ``${name}``."""
    if len(word) < 2 or word[0] != "$":
        return None
    if word[1] == "{":
        if word[-1] == "}" and "}" not in word[2:-1]:
            return word[2:-1]
        return None
    rest = word[1:]
    if all(c.isalnum() or c == "_" for c in rest):
        return rest
    return None


def _analyze_plain(text: str) -> CompiledWord:
    """Analyse a substitution-subject string (bare word or quoted body)."""
    if not _needs_substitution(text):
        return CompiledWord(LITERAL, text)
    name = _simple_varname(text)
    if name is not None:
        return CompiledWord(VARREF, name)
    segments = compile_substitution(text)
    if not segments:
        return CompiledWord(LITERAL, "")
    if len(segments) == 1:
        code, payload = segments[0]
        if code == SEG_TEXT:
            return CompiledWord(LITERAL, payload)
        if code == SEG_VAR:
            return CompiledWord(VARREF, payload)
    return CompiledWord(SEGMENTS, text, segments)


def analyze_word(raw: str) -> CompiledWord:
    """Analyse one raw word exactly as ``Interp.substitute_word`` would."""
    if len(raw) >= 2 and raw[0] == "{" and raw[-1] == "}":
        return CompiledWord(LITERAL, raw[1:-1])
    if len(raw) >= 2 and raw[0] == '"' and raw[-1] == '"':
        return _analyze_plain(raw[1:-1])
    return _analyze_plain(raw)


def compile_script(source: str) -> CompiledScript:
    """Parse a script into its compiled form.  Pure: no interpreter state."""
    commands = []
    for command in split_commands(source):
        words = [analyze_word(raw) for raw in split_words(command)]
        if words:
            commands.append(CompiledCommand(words))
    return CompiledScript(source, commands)


# ----------------------------------------------------------------------
# the shared compile cache
# ----------------------------------------------------------------------

#: Maximum number of distinct sources kept compiled.  Filter scripts,
#: proc bodies and control-flow blocks are a handful of stable strings;
#: the bound exists so dynamically built ``eval`` strings cannot grow the
#: cache without limit.
CACHE_MAX = 1024

_CACHE: "OrderedDict[str, CompiledScript]" = OrderedDict()


def lookup(source: str) -> Tuple[CompiledScript, bool]:
    """Fetch (compiling on miss) the compiled form; returns (script, hit)."""
    cached = _CACHE.get(source)
    if cached is not None:
        _CACHE.move_to_end(source)
        return cached, True
    compiled = compile_script(source)
    _CACHE[source] = compiled
    if len(_CACHE) > CACHE_MAX:
        _CACHE.popitem(last=False)
    return compiled, False


_SUBST_CACHE: "OrderedDict[str, Tuple[Segment, ...]]" = OrderedDict()


def lookup_substitution(text: str) -> Tuple[Segment, ...]:
    """Fetch (tokenising on miss) the segment form of a substitution string.

    Serves direct ``Interp.substitute`` callers -- ``if``/``while``
    conditions and ``expr`` bodies are stable strings re-substituted on
    every iteration.
    """
    cached = _SUBST_CACHE.get(text)
    if cached is not None:
        return cached
    segments = compile_substitution(text)
    _SUBST_CACHE[text] = segments
    if len(_SUBST_CACHE) > CACHE_MAX:
        _SUBST_CACHE.popitem(last=False)
    return segments


def cache_size() -> int:
    """Number of compiled scripts currently cached."""
    return len(_CACHE)


def cache_stats() -> dict:
    """Occupancy of every compile-path cache, for metrics snapshots."""
    return {"script_cache": len(_CACHE),
            "substitution_cache": len(_SUBST_CACHE),
            "cache_max": CACHE_MAX}


def clear_cache() -> None:
    """Drop every cached compilation (tests and long-lived processes)."""
    from repro.core.tclish import expr as _expr
    _CACHE.clear()
    _SUBST_CACHE.clear()
    _expr._EVAL_CACHE.clear()
