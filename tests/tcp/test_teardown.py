"""Unit tests for TCP teardown paths and edge states."""

import pytest

from repro.tcp.connection import (CLOSE_WAIT, CLOSED, FIN_WAIT_1,
                                  FIN_WAIT_2, LAST_ACK, TIME_WAIT)


class TestActiveClose:
    def test_fin_wait_progression(self, pair):
        pair.a.close()
        assert pair.a.state == FIN_WAIT_1
        pair.run(pair.scheduler.now + 1.0)
        # peer ACKed the FIN but has not closed: half-open
        assert pair.a.state == FIN_WAIT_2
        assert pair.b.state == CLOSE_WAIT

    def test_half_open_still_receives(self, pair):
        pair.a.close()
        pair.run(pair.scheduler.now + 1.0)
        pair.b.send(b"late data flows to the closer")
        pair.run(pair.scheduler.now + 2.0)
        assert bytes(pair.a.delivered) == b"late data flows to the closer"

    def test_full_close_both_ends(self, pair):
        pair.a.close()
        pair.run(pair.scheduler.now + 1.0)
        pair.b.close()
        assert pair.b.state == LAST_ACK
        pair.run(pair.scheduler.now + 10.0)
        assert pair.a.state == CLOSED
        assert pair.b.state == CLOSED
        assert pair.a.close_reason == "closed"
        assert pair.b.close_reason == "closed"

    def test_time_wait_is_transient(self, pair):
        pair.a.close()
        pair.run(pair.scheduler.now + 1.0)
        pair.b.close()
        pair.run(pair.scheduler.now + 0.1)
        assert pair.a.state in (TIME_WAIT, CLOSED)
        pair.run(pair.scheduler.now + 10.0)
        assert pair.a.state == CLOSED

    def test_pending_data_sent_before_fin_effectively(self, pair):
        pair.a.send(b"flush me")
        pair.a.close()
        pair.run(pair.scheduler.now + 5.0)
        assert bytes(pair.b.delivered) == b"flush me"


class TestSimultaneousAndLostClose:
    def test_simultaneous_close(self, pair):
        pair.a.close()
        pair.b.close()
        pair.run(pair.scheduler.now + 15.0)
        assert pair.a.state == CLOSED
        assert pair.b.state == CLOSED

    def test_lost_fin_retransmitted(self, pair):
        state = {"dropped": False}

        def drop_first_fin(seg):
            if seg.is_fin and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        pair.pipe.drop_a_to_b = drop_first_fin
        pair.a.close()
        pair.run(pair.scheduler.now + 20.0)
        assert pair.b.state in (CLOSE_WAIT, CLOSED)

    def test_close_on_listener_is_clean(self, raw_pair):
        raw_pair.b.listen()
        raw_pair.b.close()
        assert raw_pair.b.state == CLOSED


class TestPostMortem:
    def test_send_after_close_raises(self, pair):
        pair.a.abort()
        with pytest.raises(RuntimeError):
            pair.a.send(b"too late")

    def test_teardown_stops_all_timers(self, pair):
        pair.b.set_consuming(False)
        pair.a.send(b"x" * (pair.b.profile.recv_buffer + 512))
        pair.run(pair.scheduler.now + 30.0)
        assert pair.a.persist.active
        pair.a.abort()
        probes = pair.a.persist.probes_sent
        pair.run(pair.scheduler.now + 500.0)
        assert pair.a.persist.probes_sent == probes

    def test_keepalive_stops_on_teardown(self, pair):
        pair.a.enable_keepalive()
        pair.a.abort()
        pair.run(pair.scheduler.now + 20_000.0)
        assert pair.trace.count("tcp.keepalive_probe", conn="a") == 0

    def test_double_teardown_reports_once(self, pair):
        reasons = []
        pair.a.on_close = reasons.append
        pair.a.abort(reason="first")
        pair.a.abort(reason="second")
        assert reasons == ["first"]
