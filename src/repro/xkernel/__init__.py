"""x-Kernel-style protocol stack framework.

The paper models a distributed protocol "as an abstraction through which a
collection of participants communicate by exchanging a set of messages, in
the same spirit as the x-Kernel": every protocol -- device level, network,
transport, or application -- is a layer that provides an abstract
communication service to the layer above it.

This package provides that abstraction:

- :class:`~repro.xkernel.message.Message` -- a payload plus a stack of
  headers that layers push on the way down and pop on the way up.
- :class:`~repro.xkernel.protocol.Protocol` -- the layer base class with
  ``push`` (send toward the wire) and ``pop`` (deliver toward the
  application).
- :class:`~repro.xkernel.stack.ProtocolStack` -- assembles layers top to
  bottom and supports splicing a new layer between any two existing ones,
  which is exactly the operation that inserts the PFI layer beneath a
  target protocol.
"""

from repro.xkernel.message import Message
from repro.xkernel.protocol import PassthroughProtocol, Protocol
from repro.xkernel.stack import ProtocolStack

__all__ = ["Message", "PassthroughProtocol", "Protocol", "ProtocolStack"]
