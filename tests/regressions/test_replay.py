"""Replay the committed regression corpus.

Every ``*.json`` file beside this test is a shrunk reproduction artifact
written by ``repro fuzz --save-repro tests/regressions``: a minimal
fault script, its placement, the campaign seed, and the frozen verdict
(violation codes, count, fingerprint prefix).  Replaying re-runs the
simulation from the artifact alone and diffs the verdict byte-for-byte,
so any behavioural drift in the simulator, the PFI layer, the GMP bug
models, or the oracle packs fails here with the exact scenario that
regressed.
"""

from pathlib import Path

import pytest

from repro.oracle.shrink import ReproArtifact, replay_artifact

CORPUS = sorted(Path(__file__).parent.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS, ("the committed corpus vanished; regenerate with "
                    "`repro fuzz --save-repro tests/regressions`")


@pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
def test_artifact_replays_byte_identically(path):
    artifact = ReproArtifact.load(path)
    result = replay_artifact(artifact)
    assert result.ok, (
        f"{path.name} no longer reproduces its recorded verdict:\n"
        + "\n".join(result.mismatches))
    assert artifact.code in result.observed_codes
