"""Tests for the GMP wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmp.messages import ALL_KINDS, GmpMessage
from repro.gmp.wire import WireError, decode, encode

addresses = st.integers(min_value=-1, max_value=2**31 - 1)


def test_simple_roundtrip():
    msg = GmpMessage(kind="COMMIT", sender=1, originator=1,
                     group_id=7, members=(1, 2, 3))
    parsed = decode(encode(msg))
    assert parsed.kind == "COMMIT"
    assert parsed.sender == 1
    assert parsed.group_id == 7
    assert parsed.members == (1, 2, 3)


def test_down_flag_roundtrip():
    msg = GmpMessage(kind="HEARTBEAT", sender=3, down=True)
    assert decode(encode(msg)).down is True


def test_subject_roundtrip():
    msg = GmpMessage(kind="DEAD_REPORT", sender=2, subject=3)
    assert decode(encode(msg)).subject == 3


@given(st.sampled_from(ALL_KINDS), addresses, addresses,
       st.integers(min_value=0, max_value=2**31 - 1),
       st.lists(st.integers(min_value=0, max_value=1000), max_size=16))
@settings(max_examples=150)
def test_roundtrip_property(kind, sender, originator, gid, members):
    msg = GmpMessage(kind=kind, sender=sender, originator=originator,
                     group_id=gid, members=tuple(members))
    parsed = decode(encode(msg))
    assert parsed.kind == msg.kind
    assert parsed.sender == msg.sender
    assert parsed.originator == msg.originator
    assert parsed.group_id == msg.group_id
    assert parsed.members == msg.members


@given(st.integers(min_value=0))
@settings(max_examples=100)
def test_single_byte_corruption_detected(position):
    msg = GmpMessage(kind="MEMBERSHIP_CHANGE", sender=1,
                     group_id=5, members=(1, 2, 3))
    wire = bytearray(encode(msg))
    wire[position % len(wire)] ^= 0xA5
    with pytest.raises(WireError):
        decode(bytes(wire))


def test_truncated_rejected():
    with pytest.raises(WireError, match="short"):
        decode(b"\x47")


def test_bad_magic_rejected():
    msg = encode(GmpMessage(kind="ACK", sender=1))
    with pytest.raises(WireError, match="magic"):
        decode(b"\x00\x00" + msg[2:])


def test_member_count_mismatch_rejected():
    wire = encode(GmpMessage(kind="COMMIT", sender=1, members=(1, 2)))
    with pytest.raises(WireError, match="member list"):
        decode(wire[:-4])  # lop off one member


def test_verify_false_skips_checksum():
    wire = bytearray(encode(GmpMessage(kind="ACK", sender=1, group_id=9)))
    wire[-1] ^= 0xFF if len(wire) % 2 else 0x00
    wire[6] ^= 0x01  # corrupt the sender field
    parsed = decode(bytes(wire), verify=False)
    assert parsed.kind == "ACK"
