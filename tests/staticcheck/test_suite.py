"""The `repro check` suite: exit-code contract, formats, SARIF shape."""

import json

import pytest

from repro.cli import main
from repro.core.tclish.lint import lint_source
from repro.core.tclish.lint.diagnostics import CODES
from repro.staticcheck import render_sarif, run_suite


class TestSuiteOverRealRepo:
    def test_whole_repo_is_clean(self):
        # acceptance criterion: zero findings, zero suppressions
        result = run_suite()
        assert result.internal_errors == []
        assert result.findings() == []
        assert result.exit_code() == 0

    def test_all_passes_actually_ran(self):
        result = run_suite()
        assert result.checked["tclish scripts"] >= 5
        assert result.checked["corpus scripts"] >= 5
        assert result.checked["python modules"] >= 30
        assert result.checked["trace kinds"] >= 60

    def test_render_text_verdict_line(self):
        text = run_suite().render_text()
        assert text.splitlines()[-1].startswith("repro check: clean")


class TestExitCodes:
    def test_clean_is_zero(self, capsys):
        assert main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_are_one(self, tmp_path, capsys):
        hazard = tmp_path / "hazard.py"
        hazard.write_text("import time\n"
                          "def body(env):\n"
                          "    return time.time()\n")
        code = main(["check", str(hazard), "--no-drift"])
        assert code == 1
        assert "SC103" in capsys.readouterr().out

    def test_python_syntax_error_is_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        assert main(["check", str(broken), "--no-drift"]) == 2

    def test_tcl_syntax_error_is_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.tcl"
        broken.write_text("if {$x > 1 { xDrop cur_msg }\n")
        assert main(["check", str(broken), "--no-drift"]) == 2

    def test_lint_syntax_error_is_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.tcl"
        broken.write_text("if {$x > 1 { xDrop cur_msg }\n")
        assert main(["lint", str(broken)]) == 2

    def test_lint_findings_are_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.tcl"
        bad.write_text("xDropp cur_msg\n")
        assert main(["lint", str(bad)]) == 1

    def test_lint_clean_is_zero(self, tmp_path, capsys):
        ok = tmp_path / "ok.tcl"
        ok.write_text("xDelay 2.0\n")
        assert main(["lint", str(ok)]) == 0

    def test_lint_missing_file_is_two(self, capsys):
        assert main(["lint", "no/such/file.tcl"]) == 2


class TestFormats:
    def test_check_json(self, tmp_path, capsys):
        hazard = tmp_path / "hazard.py"
        hazard.write_text("import random\n"
                          "def body(env):\n"
                          "    return random.random()\n")
        assert main(["check", str(hazard), "--no-drift",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        codes = [d["code"] for r in payload["reports"]
                 for d in r["diagnostics"]]
        assert codes == ["SC104"]

    def test_check_sarif(self, tmp_path, capsys):
        hazard = tmp_path / "hazard.py"
        hazard.write_text("import time\n"
                          "def body(env):\n"
                          "    return time.time()\n")
        assert main(["check", str(hazard), "--no-drift",
                     "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert results[0]["ruleId"] == "SC103"

    def test_lint_sarif(self, tmp_path, capsys):
        bad = tmp_path / "bad.tcl"
        bad.write_text("chance 1.5\n")
        assert main(["lint", str(bad), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "SL006"
        assert result["locations"][0]["physicalLocation"][
            "region"]["startLine"] == 1


class TestSarifDocument:
    def test_rules_cover_every_code(self):
        doc = json.loads(render_sarif([]))
        rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert rules == set(CODES)

    def test_results_carry_stable_fingerprints(self):
        report = lint_source("puts $ghost", source_name="fp.tcl")
        doc_a = json.loads(render_sarif([report]))
        doc_b = json.loads(render_sarif([report]))
        fp_a = doc_a["runs"][0]["results"][0]["partialFingerprints"]
        fp_b = doc_b["runs"][0]["results"][0]["partialFingerprints"]
        assert fp_a == fp_b
        assert fp_a["reproStaticcheck/v1"]

    def test_severity_levels_map(self):
        report = lint_source("xDropp cur_msg\nxHold cur_msg tagA",
                             source_name="lv.tcl")
        doc = json.loads(render_sarif([report]))
        levels = {r["ruleId"]: r["level"]
                  for r in doc["runs"][0]["results"]}
        assert levels["SL001"] == "error"
        assert levels["SL008"] == "warning"


class TestCorpusExtraction:
    def test_embedded_scripts_are_linted(self):
        result = run_suite()
        corpus_reports = [r for r in result.reports
                          if ".json[" in r.source_name]
        assert len(corpus_reports) >= 5
        for report in corpus_reports:
            assert report.ok(severity="warning"), report.source_name

    def test_unreadable_artifact_is_internal_error(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"not": "an artifact"}')
        result = run_suite(tcl_paths=[], corpus_paths=[str(bogus)],
                           py_paths=[], drift_enabled=False)
        assert result.exit_code() == 2
        assert "bogus.json" in result.internal_errors[0]
