"""Command-line interface: regenerate any paper artifact from a shell.

The paper's §6 lists "development of a more elaborate tool" as ongoing
work; this CLI is that tool's headless form.  Usage::

    python -m repro table1            # Table 1: TCP retransmission
    python -m repro table5            # Table 5: GMP packet interruption
    python -m repro figure4           # Figure 4 series
    python -m repro all               # everything
    python -m repro campaign gmp      # auto-generated script battery
    python -m repro campaign tcp --tclish   # show the tclish sources
    python -m repro fuzz --protocol gmp --seed 0   # oracle-guided fuzzing
    python -m repro fuzz --checkpoint-depth 8      # fork trials from a prefix
    python -m repro explore --target self_death    # delivery-order exploration

Each table command runs the live experiment (nothing is cached) and
prints the paper-shaped rows.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.analysis.tables import render_table


def _print(title: str, body: str) -> None:
    bar = "=" * 72
    print(f"{bar}\n{title}\n{bar}\n{body}\n")


# ----------------------------------------------------------------------
# table commands
# ----------------------------------------------------------------------

def cmd_table1(_args) -> None:
    from repro.experiments.tcp_retransmission import run_all, table_rows
    results = run_all()
    _print("Table 1: TCP Retransmission Timeout Results",
           render_table("(pass 30 packets, then drop all incoming)",
                        ["Implementation", "Results", "Comments"],
                        table_rows(results)))


def cmd_table2(args) -> None:
    from repro.experiments.tcp_delayed_ack import run_all, table_rows
    delay = getattr(args, "delay", 3.0) or 3.0
    results = run_all(delay)
    _print(f"Table 2: RTO with {delay:.0f}-second delayed ACKs",
           render_table("(delay 30 ACKs, then drop all incoming)",
                        ["Implementation", "Results", "Comments"],
                        table_rows(results)))


def cmd_table3(_args) -> None:
    from repro.experiments.tcp_keepalive import run_all, table_rows
    _print("Table 3: TCP Keep-alive Results",
           render_table("(idle connection, keep-alive enabled)",
                        ["Implementation", "Results", "Comments"],
                        table_rows(run_all())))


def cmd_table4(_args) -> None:
    from repro.experiments.tcp_zero_window import run_all, table_rows
    for variant in ("acked", "unacked"):
        _print(f"Table 4: Zero Window Probes (probes {variant})",
               render_table("(receiver never consumes)",
                            ["Implementation", "Results", "Comments"],
                            table_rows(run_all(variant))))


def cmd_exp5(_args) -> None:
    from repro.experiments.tcp_reordering import run_all
    rows = [[r.vendor,
             "queued" if r.second_segment_queued else "dropped",
             "cumulative ACK" if r.acked_both_at_once else "partial ACKs",
             "intact" if r.data_delivered_in_order else "CORRUPTED"]
            for r in run_all().values()]
    _print("Experiment 5: Reordering of messages",
           render_table("(second segment overtakes a delayed first)",
                        ["Implementation", "OOO policy", "ACK", "Data"],
                        rows))


def cmd_figure4(_args) -> None:
    from repro.experiments.tcp_delayed_ack import run_all as run_delayed
    from repro.experiments.tcp_retransmission import run_all as run_nodelay
    panels = {
        "no delay": run_nodelay(),
        "3 s ACK delay": run_delayed(3.0),
        "8 s ACK delay": run_delayed(8.0),
    }
    for title, results in panels.items():
        lines = []
        for name, result in results.items():
            series = " ".join(f"{v:7.2f}" for v in result.intervals)
            lines.append(f"{name:<13s} {series}")
        _print(f"Figure 4 panel: {title} (seconds before each "
               f"retransmission)", "\n".join(lines))


def cmd_table5(_args) -> None:
    from repro.experiments.gmp_packet_interruption import run_all
    results = run_all()
    rows = []
    for key, value in results.items():
        attrs = ", ".join(f"{k}={v}" for k, v in vars(value).items()
                          if not k.startswith("_"))
        rows.append([key, attrs])
    _print("Table 5: GMP Packet Interruption",
           render_table("(three machines)", ["Experiment", "Findings"],
                        rows))


def cmd_table6(_args) -> None:
    from repro.experiments.gmp_partition import run_all
    results = run_all()
    rows = [[key, ", ".join(f"{k}={v}" for k, v in vars(value).items())]
            for key, value in results.items()]
    _print("Table 6: Network Partition Experiment",
           render_table("(five machines)", ["Experiment", "Findings"],
                        rows))


def cmd_table7(_args) -> None:
    from repro.experiments.gmp_proclaim import run_all
    results = run_all()
    rows = [[key, ", ".join(f"{k}={v}" for k, v in vars(value).items())]
            for key, value in results.items()]
    _print("Table 7: Proclaim Forwarding Experiment",
           render_table("(newcomer's proclaim to leader dropped)",
                        ["Build", "Findings"], rows))


def cmd_table8(_args) -> None:
    from repro.experiments.gmp_timer import run_all
    results = run_all()
    rows = [[key, ", ".join(f"{k}={v}" for k, v in vars(value).items())]
            for key, value in results.items()]
    _print("Table 8: GMP Timer Test",
           render_table("(second membership change; commits+heartbeats "
                        "dropped)", ["Build", "Findings"], rows))


def cmd_all(args) -> None:
    for fn in (cmd_table1, cmd_table2, cmd_table3, cmd_table4, cmd_exp5,
               cmd_figure4, cmd_table5, cmd_table6, cmd_table7, cmd_table8):
        fn(args)


def cmd_run_script(args) -> None:
    """Run a user-supplied tclish filter file against a standard workload.

    The TCP workload is the paper's default rig (vendor -> x-kernel,
    steady data stream); the GMP workload is a three-machine group.  The
    script is installed on the x-kernel machine's PFI layer (TCP) or on
    machine 3's (GMP).
    """
    from repro.core import TclishFilter
    with open(args.script_file) as fp:
        source = fp.read()
    script = TclishFilter(source, init_script=args.init or "",
                          name=args.script_file, lint="error")

    if args.protocol == "tcp":
        from repro.experiments.tcp_common import (build_tcp_testbed,
                                                  open_connection,
                                                  stream_from_vendor)
        from repro.tcp import VENDORS
        testbed = build_tcp_testbed(VENDORS[args.vendor])
        client, server = open_connection(testbed)
        if args.direction == "send":
            testbed.pfi.set_send_filter(script)
        else:
            testbed.pfi.set_receive_filter(script)
        stream_from_vendor(testbed, client,
                           segments=int(args.duration), interval=0.5)
        testbed.env.run_until(args.duration)
        pfi = testbed.pfi
        trace = testbed.trace
        print(f"ran {args.script_file} for {args.duration:.0f} virtual "
              f"seconds against {args.vendor}")
        print(f"connection: {client.state}"
              + (f" ({client.close_reason})" if client.close_reason else ""))
        print(f"delivered: {len(server.delivered)} bytes; "
              f"retransmissions: "
              f"{trace.count('tcp.retransmit', conn='vendor:5000')}")
    else:
        from repro.experiments.gmp_common import build_gmp_cluster
        cluster = build_gmp_cluster([1, 2, 3])
        if args.direction == "send":
            cluster.pfis[3].set_send_filter(script)
        else:
            cluster.pfis[3].set_receive_filter(script)
        cluster.start()
        cluster.run_until(args.duration)
        pfi = cluster.pfis[3]
        print(f"ran {args.script_file} for {args.duration:.0f} virtual "
              f"seconds against a 3-machine GMP group")
        for address, daemon in cluster.daemons.items():
            print(f"  gmd{address}: {daemon.status} "
                  f"view={list(daemon.view.members)}")

    print(f"pfi stats: {pfi.stats}")
    if script.output_lines:
        print("script output:")
        for line in script.output_lines[-20:]:
            print(f"  | {line}")
    if pfi.msglog.lines:
        print("last log lines:")
        for line in pfi.msglog.lines[-10:]:
            print(f"  {line}")


def cmd_sequence(args) -> None:
    """Render a message-sequence ladder for a standard workload."""
    if args.protocol == "tcp":
        from repro.analysis.timeline import tcp_sequence
        from repro.experiments.tcp_common import (build_tcp_testbed,
                                                  open_connection)
        from repro.tcp import VENDORS
        testbed = build_tcp_testbed(VENDORS[args.vendor])
        client, _server = open_connection(testbed)
        client.send(b"L" * 512 * 3)
        testbed.env.run_until(args.duration)
        diagram = tcp_sequence(
            testbed.trace,
            {"vendor:5000": "vendor", "xkernel:80": "xkernel"})
    else:
        from repro.analysis.timeline import gmp_sequence
        from repro.experiments.gmp_common import build_gmp_cluster
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start()
        cluster.run_until(args.duration)
        diagram = gmp_sequence(
            cluster.trace, [1, 2, 3],
            kinds={"PROCLAIM", "JOIN", "MEMBERSHIP_CHANGE", "ACK",
                   "COMMIT"})
    print(diagram.render(max_events=args.max_events))


def cmd_lint(args) -> int:
    """Statically analyze tclish filter scripts (scriptlint).

    Accepts files and directories (directories are walked for ``.tcl``
    and ``.tclish`` files).  ``--gen tcp,gmp`` additionally lints the
    auto-generated batteries.  Exit status: 2 for unreadable inputs or
    syntax errors (SL000), 1 for error-level findings, 0 when clean.
    """
    import json
    import os

    from repro.core.tclish.lint import (lint_source, render_json,
                                        render_text)

    targets = []
    for path in args.paths:
        if os.path.isdir(path):
            found = []
            for root, _dirs, files in sorted(os.walk(path)):
                for fname in sorted(files):
                    if fname.endswith((".tcl", ".tclish")):
                        found.append(os.path.join(root, fname))
            if not found:
                print(f"repro lint: no .tcl scripts under {path}",
                      file=sys.stderr)
                return 2
            targets.extend(found)
        elif os.path.exists(path):
            targets.append(path)
        else:
            print(f"repro lint: no such file: {path}", file=sys.stderr)
            return 2

    reports = []
    for path in targets:
        with open(path) as fp:
            source = fp.read()
        reports.append(lint_source(source, init_script=args.init or "",
                                   source_name=path))

    if args.gen:
        from repro.core.genscripts import (generate_campaign, gmp_spec,
                                           lint_generated, tcp_spec)
        from repro.core.tclish.lint import LintReport
        for name in args.gen.split(","):
            spec = {"tcp": tcp_spec, "gmp": gmp_spec}[name.strip()]()
            scripts = generate_campaign(spec, self_check=False)
            failing = lint_generated(scripts)
            if failing:
                reports.extend(failing)
            else:
                clean = LintReport(source_name=f"generated:{spec.name} "
                                   f"({len(scripts)} scripts)")
                reports.append(clean)

    if not reports:
        print("repro lint: nothing to lint (give files, directories, "
              "or --gen)", file=sys.stderr)
        return 2

    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(json.dumps([json.loads(render_json(r)) for r in reports],
                         indent=2, sort_keys=True))
    elif fmt == "sarif":
        from repro.staticcheck import render_sarif
        print(render_sarif(reports, tool_name="repro-scriptlint"))
    else:
        for report in reports:
            print(render_text(report))
        errors = sum(len(r.errors()) for r in reports)
        warnings = sum(len(r.warnings()) for r in reports)
        print(f"checked {len(reports)} script source(s): "
              f"{errors} error(s), {warnings} warning(s)")
    if any(d.code == "SL000" for r in reports for d in r):
        return 2
    return 1 if any(not r.ok() for r in reports) else 0


def cmd_check(args) -> int:
    """Run the three-pass static correctness suite (repro.staticcheck).

    With no paths, checks the standard repo layout: scriptlint over
    ``examples/filters`` and the regression corpus' embedded scripts,
    the determinism pass over the simulation Python, and the
    trace-schema drift pass over ``src/repro``.  Explicit paths replace
    the scriptlint/determinism targets (classified by suffix); the
    drift pass stays whole-program unless ``--no-drift``.  Exit status:
    2 for parse/internal errors, 1 for findings (warning or error), 0
    when clean.
    """
    from repro.staticcheck import render_sarif, run_suite

    overrides = {}
    if args.paths:
        overrides["tcl_paths"] = list(args.paths)
        overrides["py_paths"] = [p for p in args.paths
                                 if not p.endswith((".tcl", ".tclish",
                                                    ".json"))]
        overrides["corpus_paths"] = [p for p in args.paths
                                     if p.endswith(".json")]
    result = run_suite(drift_enabled=not args.no_drift, **overrides)
    if args.format == "sarif":
        print(render_sarif(result.reports))
    elif args.format == "json":
        print(result.to_json())
    else:
        print(result.render_text(verbose=args.verbose))
    return result.exit_code()


def _load_trace_file(path: str):
    from repro.analysis.export import load_trace
    with open(path) as fp:
        return load_trace(fp)


def cmd_report(args) -> int:
    """Reconstruct a run report from an exported JSON-lines trace.

    The report covers the run summary, per-kind/per-node metrics, the
    causal lineage of every derived message (delays, duplicates, holds/
    releases, injections, retransmissions), and a timeline tail.

    ``--campaign <journal>`` switches to the campaign flight record: the
    journal (crash-safe JSONL from any ``--journal`` sweep) is replayed
    into the partial-or-complete scorecard, a bug-yield ranking of the
    executed fault scenarios, and optionally machine-readable JSON
    (``--format json``) or a self-contained HTML report (``--html``).
    """
    if args.campaign:
        return _cmd_report_campaign(args)
    if not args.trace_file:
        print("repro report: give a trace file, or --campaign <journal>",
              file=sys.stderr)
        return 2
    from repro.obs.lineage import Lineage
    from repro.obs.report import render_report
    trace = _load_trace_file(args.trace_file)
    if args.uid is not None:
        lineage = Lineage.from_trace(trace)
        if args.uid not in lineage.uids():
            print(f"repro report: uid {args.uid} does not appear in "
                  f"{args.trace_file}", file=sys.stderr)
            return 2
        print(lineage.render(lineage.root_of(args.uid)))
        return 0
    oracle = None
    if args.oracle:
        from repro.oracle import packs_by_name
        try:
            oracle = packs_by_name(args.oracle.split(","))
        except ValueError as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            return 2
    print(render_report(trace, tail=args.tail, kind_prefix=args.kind,
                        oracle=oracle))
    return 0


def _cmd_report_campaign(args) -> int:
    """The ``repro report --campaign <journal-or-directory>`` path.

    A directory -- a fabric campaign dir or any folder of shard
    journals -- is folded by :func:`repro.core.fabric.merge.
    merge_campaign_dir` into one merged summary (rows deduplicated by
    config index, per-group capture-hits table included); a file is
    replayed as the single journal it always was.
    """
    import json
    import os

    from repro.obs.campaign_report import (render_html, render_text,
                                           summarize_journal,
                                           summary_to_json)
    if not os.path.exists(args.campaign):
        print(f"repro report: no such journal: {args.campaign}",
              file=sys.stderr)
        return 2
    if os.path.isdir(args.campaign):
        from repro.core.fabric.merge import merge_campaign_dir
        try:
            summary = merge_campaign_dir(args.campaign)
        except FileNotFoundError as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            return 2
    else:
        summary = summarize_journal(args.campaign)
    if args.html:
        with open(args.html, "w") as fp:
            fp.write(render_html(summary))
        # keep stdout pure JSON when both --html and --format json ask
        print(f"wrote {args.html} (self-contained HTML, "
              f"{summary.executed} run(s))",
              file=sys.stderr if args.format == "json" else sys.stdout)
    if args.format == "json":
        print(json.dumps(summary_to_json(summary), indent=2,
                         sort_keys=True))
    elif not args.html or args.format == "text":
        print(render_text(summary))
    return 0


def cmd_tail(args) -> int:
    """Follow (or replay) a campaign journal: ``repro tail <journal>``.

    Prints one line per journal event.  Without ``--follow`` the journal
    is replayed once and a torn final line (from a killed sweep) is
    reported; with ``--follow`` the file is polled for appended events
    until ``campaign.end`` arrives or ``--timeout`` elapses, which is
    how a second terminal watches a running sweep live.
    """
    import os

    from repro.obs.journal import follow_journal, replay_journal
    if not args.follow and not os.path.exists(args.journal):
        print(f"repro tail: no such journal: {args.journal}",
              file=sys.stderr)
        return 2
    if args.follow:
        for event in follow_journal(args.journal, poll=args.poll,
                                    timeout=args.timeout):
            print(_render_journal_event(event))
        return 0
    replay = replay_journal(args.journal)
    for event in replay.events:
        print(_render_journal_event(event))
    if replay.torn_tail is not None:
        print(f"  ! torn tail: {len(replay.torn_tail)} byte(s) cut "
              f"mid-append (writer killed); {len(replay.events)} "
              f"complete event(s) recovered")
    elif not replay.complete:
        print(f"  ! no campaign.end: sweep still running or interrupted "
              f"({len(replay.events)} event(s) so far)")
    return 0


def _render_journal_event(event) -> str:
    """One journal event as a tail line."""
    data = event.data
    bits = []
    for key in ("engine", "name", "label", "case", "target", "status",
                "protocol", "budget", "configs", "executed", "codes",
                "violations", "new_coverage", "coverage_total", "findings",
                "ok"):
        if key in data and data[key] not in (None, [], ""):
            bits.append(f"{key}={data[key]}")
    detail = " ".join(bits)
    return f"{event.t:9.3f}s  {event.kind:<28} {detail}"


def cmd_history(args) -> int:
    """Cross-run history: record journals, show per-sweep deltas.

    ``repro history DIR`` renders the store; ``--record <journal>``
    first folds one or more journals into content-addressed summary
    rows (idempotent -- re-recording an unchanged sweep adds nothing),
    and ``--bench <BENCH_*.json>`` records benchmark payloads the same
    way, turning them into a tracked trajectory.
    """
    from repro.obs.history import HistoryStore
    store = HistoryStore(args.dir)
    for journal in args.record or ():
        row = store.record_journal(journal)
        if not args.json:
            print(f"recorded {journal} -> {row.id} "
                  f"(fingerprint {row.fingerprint})")
    for bench in args.bench or ():
        row = store.record_bench(bench)
        if not args.json:
            print(f"recorded {bench} -> {row.id}")
    if args.json:
        import json

        from repro.analysis.export import _jsonable
        print(json.dumps(_jsonable(store.to_json()), indent=2,
                         sort_keys=True))
    else:
        print(store.render())
    return 0


def cmd_trace(args) -> int:
    """Export a JSON-lines trace as Chrome-trace/Perfetto JSON.

    Load the output in https://ui.perfetto.dev or ``chrome://tracing``:
    nodes become processes, fault-injection delays and hold/release
    windows become duration spans, everything else instant events.
    ``--journal <journal>`` converts a campaign journal instead:
    campaign phases (preflight, capture, dispatch, merge) and runs
    become duration spans on the sweep's wall-clock timeline.
    """
    import json

    if args.journal:
        from repro.obs.chrometrace import journal_chrome_trace
        from repro.obs.journal import replay_journal
        replay = replay_journal(args.journal)
        text = json.dumps(journal_chrome_trace(replay, title=args.journal),
                          sort_keys=True)
        count = len(replay.events)
    else:
        if not args.trace_file:
            print("repro trace: give a trace file, or --journal <journal>",
                  file=sys.stderr)
            return 2
        from repro.obs.chrometrace import dump_chrome_trace
        trace = _load_trace_file(args.trace_file)
        text = dump_chrome_trace(trace, title=args.trace_file)
        count = len(trace)
    if args.out:
        with open(args.out, "w") as fp:
            fp.write(text)
        print(f"wrote {args.out} ({count} entries); open in "
              f"https://ui.perfetto.dev or chrome://tracing")
    else:
        print(text)
    return 0


def cmd_fuzz(args) -> int:
    """Coverage-guided fault-scenario fuzzing (docs/conformance.md).

    Draws tclish fault scripts from the PFI-command grammar, runs them
    through the parallel campaign engine with the protocol's invariant
    pack as the oracle, and keeps coverage-novel cases as mutation
    parents.  ``--save-repro`` shrinks every finding (delta debugging
    over script clauses, then seed minimization) and writes a
    deterministic JSON repro artifact into the regression corpus.
    One checkpoint pool is shared between the sweep and the shrinkers,
    so a finding's probe prefix is only ever simulated once.
    """
    from repro.core.checkpoint import CheckpointPool
    from repro.oracle.fuzz import run_fuzz
    pool = CheckpointPool(max_items=8)
    report = run_fuzz(args.protocol, seed=args.seed, budget=args.budget,
                      workers=args.workers,
                      checkpoint_depth=args.checkpoint_depth,
                      pool=pool,
                      progress=print if args.progress else None,
                      journal=args.journal or None)
    print(report.render())
    if not args.save_repro:
        return 0
    if not report.findings:
        print("no findings to shrink")
        return 0
    from pathlib import Path

    from repro.oracle.shrink import artifact_name, shrink_finding
    out_dir = Path(args.save_repro)
    for finding in report.findings:
        artifact, stats = shrink_finding(finding, campaign_seed=args.seed,
                                         pool=pool)
        path = artifact.save(out_dir / artifact_name(artifact))
        print(f"  shrunk {finding.case.script.name}: "
              f"{stats.clauses_before}->{stats.clauses_after} clause(s), "
              f"seed {stats.seed_before}->{stats.seed_after} "
              f"({stats.runs} runs) -> {path}")
    return 0


def cmd_sweep(args) -> int:
    """Distributed, resumable campaign sweeps (docs/fabric.md).

    Runs a generated fault-script battery through ``Campaign.run`` on a
    chosen backend.  ``--backend local`` is the in-process engine;
    ``--backend sockets`` is the fabric: a coordinator plus
    ``--workers`` worker processes over the lease protocol, every
    completed row persisted to the campaign directory's shared result
    store.  The campaign directory (``--journal-dir``) holds the sweep
    spec, the store, and per-shard journals; SIGKILL anything mid-sweep
    and ``repro sweep --resume <dir>`` finishes the remainder --
    ``repro report --campaign <dir>`` then renders the merged scorecard,
    byte-identical on stable keys to an uninterrupted serial run.
    """
    import os

    from repro.core.fabric import FabricError, merge_campaign_dir
    from repro.core.fabric.spec import SpecError, SweepSpec
    from repro.core.orchestrator import Campaign
    from repro.obs.campaign_report import render_stable, render_text

    fabric_options = {}
    if args.ttl is not None:
        fabric_options["ttl"] = args.ttl
    if args.shard_size is not None:
        fabric_options["shard_size"] = args.shard_size

    if args.resume:
        fabric_dir = args.resume
        try:
            spec = SweepSpec.load(
                os.path.join(fabric_dir, "spec.pkl"))
        except SpecError as exc:
            print(f"repro sweep: {exc}", file=sys.stderr)
            return 2
        configs = spec.configs
        campaign = Campaign(spec.body, seed=spec.seed, lint=spec.lint)
        telemetry, oracle, group = (spec.telemetry, spec.oracle,
                                    spec.group)
    else:
        if not args.journal_dir:
            print("repro sweep: give --journal-dir DIR (the campaign "
                  "directory) or --resume DIR", file=sys.stderr)
            return 2
        fabric_dir = args.journal_dir
        from repro.oracle.fuzz import (GMP_VARIANTS, pack_for,
                                       prefixed_fuzz_body)
        from repro.oracle.grammar import generate_script
        if args.targets:
            targets = [t.strip() for t in args.targets.split(",")
                       if t.strip()]
        elif args.protocol == "tcp":
            from repro.tcp import VENDORS
            targets = sorted(VENDORS)
        else:
            targets = list(GMP_VARIANTS) + ["fixed"]
        import random as _random
        configs = []
        for target in targets:
            for index in range(args.count):
                script = generate_script(_random.Random(index),
                                         args.protocol, index=index)
                config = {"protocol": args.protocol, "target": target,
                          "script": script.source,
                          "init_script": script.init,
                          "direction": script.direction}
                if args.depth is not None:
                    config["install_at"] = args.depth
                configs.append(config)
        campaign = Campaign(prefixed_fuzz_body, seed=args.seed)
        telemetry, oracle, group = True, pack_for(args.protocol), True

    workers = args.workers if args.workers == "auto" else int(args.workers)
    try:
        if args.backend == "sockets":
            campaign.run(configs, workers=workers, telemetry=telemetry,
                         oracle=oracle, group=group, backend="sockets",
                         fabric_dir=fabric_dir,
                         fabric_options=fabric_options or None)
        else:
            campaign.run(configs, workers=workers, telemetry=telemetry,
                         oracle=oracle, group=group,
                         fabric_dir=fabric_dir)
    except FabricError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 3
    summary = merge_campaign_dir(fabric_dir)
    print(render_text(summary))
    if args.stable:
        print(render_stable(summary))
    return 0


def cmd_explore(args) -> int:
    """Bounded delivery-order exploration (docs/checkpointing.md).

    Warms the target rig to the checkpoint depth, then enumerates
    bounded perturbations of the pending event order -- dropping or
    deferring in-flight deliveries and protocol timers -- with every
    schedule forked from the same checkpoint and judged by the
    protocol's oracle pack.  Exit status 1 when any schedule violates
    an invariant the baseline does not.
    """
    from repro.oracle.explore import explore
    report = explore(args.protocol, args.target, seed=args.seed,
                     depth=args.depth, window=args.window,
                     horizon=args.horizon,
                     max_schedules=args.max_schedules,
                     max_perturbations=args.max_perturbations,
                     defer_delta=args.defer_delta,
                     recheckpoint_every=args.recheckpoint_every,
                     progress=print if args.progress else None,
                     journal=args.journal or None)
    print(report.render())
    return 1 if report.findings else 0


def cmd_campaign(args) -> None:
    from repro.core.genscripts import (generate_campaign, gmp_spec,
                                       tcp_spec)
    spec = tcp_spec() if args.protocol == "tcp" else gmp_spec()
    scripts = generate_campaign(spec)
    print(f"{len(scripts)} scripts generated for {spec.name}:\n")
    for script in scripts:
        print(f"  [{script.failure_model.value:>16}] {script.name:<40} "
              f"{script.description}")
        if args.tclish:
            for line in script.tclish_source.splitlines():
                print(f"      | {line}")
    print()


COMMANDS: Dict[str, Callable] = {
    "table1": cmd_table1, "table2": cmd_table2, "table3": cmd_table3,
    "table4": cmd_table4, "exp5": cmd_exp5, "figure4": cmd_figure4,
    "table5": cmd_table5, "table6": cmd_table6, "table7": cmd_table7,
    "table8": cmd_table8, "all": cmd_all,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Dawson & "
                    "Jahanian, ICDCS 1995.")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in COMMANDS:
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        if name == "table2":
            cmd.add_argument("--delay", type=float, default=3.0,
                             help="ACK delay in seconds (default 3)")
    campaign = sub.add_parser(
        "campaign", help="auto-generate a test-script battery from a "
                         "protocol spec (paper §6 future work)")
    campaign.add_argument("protocol", choices=["tcp", "gmp"])
    campaign.add_argument("--tclish", action="store_true",
                          help="print the generated tclish sources")
    runner = sub.add_parser(
        "run-script", help="run a tclish filter file against a standard "
                           "TCP or GMP workload")
    runner.add_argument("script_file", help="path to the tclish source")
    runner.add_argument("--protocol", choices=["tcp", "gmp"],
                        default="tcp")
    runner.add_argument("--direction", choices=["send", "receive"],
                        default="receive")
    runner.add_argument("--vendor", default="SunOS 4.1.3",
                        help="TCP vendor profile name")
    runner.add_argument("--duration", type=float, default=120.0,
                        help="virtual seconds to run")
    runner.add_argument("--init", default="",
                        help="init script (e.g. 'set n 0')")
    lint = sub.add_parser(
        "lint", help="statically analyze tclish filter scripts "
                     "(scriptlint; see docs/scriptlint.md)")
    lint.add_argument("paths", nargs="*",
                      help="script files or directories to walk for "
                           ".tcl/.tclish files")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable output (alias for "
                           "--format json)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="output format (sarif for CI annotation)")
    lint.add_argument("--init", default="",
                      help="init script evaluated before each body "
                           "(e.g. 'set n 0')")
    lint.add_argument("--gen", default="",
                      help="also lint the auto-generated batteries "
                           "(comma list of tcp,gmp)")
    check = sub.add_parser(
        "check", help="run the three-pass static correctness suite "
                      "(scriptlint dataflow, determinism, trace-schema "
                      "drift; see docs/staticcheck.md)")
    check.add_argument("paths", nargs="*",
                       help="files or directories to check (default: "
                            "the standard repo layout)")
    check.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text",
                       help="output format (sarif for CI annotation)")
    check.add_argument("--no-drift", action="store_true",
                       help="skip the whole-program trace-schema "
                            "drift pass")
    check.add_argument("-v", "--verbose", action="store_true",
                       help="also print info-level diagnostics "
                            "(e.g. SC202 oracle-coverage gaps)")
    sequence = sub.add_parser(
        "sequence", help="render a message-sequence ladder for a "
                         "standard TCP or GMP run")
    sequence.add_argument("--protocol", choices=["tcp", "gmp"],
                          default="gmp")
    sequence.add_argument("--vendor", default="SunOS 4.1.3")
    sequence.add_argument("--duration", type=float, default=5.0)
    sequence.add_argument("--max-events", type=int, default=30)
    report = sub.add_parser(
        "report", help="summarize an exported JSON-lines trace: metrics, "
                       "message lineage, timeline (docs/observability.md)")
    report.add_argument("trace_file", nargs="?", default="",
                        help="JSON-lines trace "
                             "(analysis.export.dump_trace)")
    report.add_argument("--tail", type=int, default=40,
                        help="timeline entries to show (default 40)")
    report.add_argument("--kind", default="",
                        help="restrict the timeline to kinds with this "
                             "prefix (e.g. 'pfi.')")
    report.add_argument("--uid", type=int, default=None,
                        help="print only the derivation tree containing "
                             "this message uid")
    report.add_argument("--oracle", default="",
                        help="add a conformance section: comma list of "
                             "invariant packs (tcp,gmp)")
    report.add_argument("--campaign", default="", metavar="JOURNAL",
                        help="report a campaign journal instead: partial "
                             "scorecard + bug-yield ranking "
                             "(docs/campaign-journal.md)")
    report.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="campaign report format (default text)")
    report.add_argument("--html", default="", metavar="FILE",
                        help="also write a self-contained HTML campaign "
                             "report to FILE")
    tail = sub.add_parser(
        "tail", help="follow or replay a campaign journal "
                     "(docs/campaign-journal.md)")
    tail.add_argument("journal", help="journal file (from any --journal "
                                      "sweep)")
    tail.add_argument("--follow", action="store_true",
                      help="poll for appended events until campaign.end "
                           "or --timeout (watch a running sweep)")
    tail.add_argument("--poll", type=float, default=0.2,
                      help="seconds between polls with --follow "
                           "(default 0.2)")
    tail.add_argument("--timeout", type=float, default=None,
                      help="stop following after this many wall seconds")
    history = sub.add_parser(
        "history", help="cross-run history: record campaign journals, "
                        "show per-sweep deltas (docs/campaign-journal.md)")
    history.add_argument("dir", help="history store directory")
    history.add_argument("--record", action="append", default=[],
                         metavar="JOURNAL",
                         help="fold a journal into the store first "
                              "(repeatable, idempotent)")
    history.add_argument("--bench", action="append", default=[],
                         metavar="FILE",
                         help="record a BENCH_*.json payload "
                              "(repeatable)")
    history.add_argument("--json", action="store_true",
                         help="machine-readable output")
    fuzz = sub.add_parser(
        "fuzz", help="coverage-guided fault-scenario fuzzing with the "
                     "conformance oracle as verdict (docs/conformance.md)")
    fuzz.add_argument("--protocol", choices=["tcp", "gmp"], default="gmp")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; the whole session is "
                           "deterministic in it (default 0)")
    fuzz.add_argument("--budget", type=int, default=24,
                      help="number of cases to execute (default 24)")
    fuzz.add_argument("--workers", type=int, default=1,
                      help="parallel campaign workers (default 1; does "
                           "not perturb results)")
    fuzz.add_argument("--save-repro", default="", metavar="DIR",
                      help="shrink findings and write JSON repro "
                           "artifacts into DIR (e.g. tests/regressions)")
    fuzz.add_argument("--checkpoint-depth", type=float, default=None,
                      metavar="T",
                      help="fork every trial from a prefix checkpoint "
                           "captured at virtual time T instead of cold-"
                           "starting (docs/checkpointing.md); results "
                           "are identical at the stock install depth")
    fuzz.add_argument("--progress", action="store_true",
                      help="print a progress line per batch "
                           "(trials/sec, checkpoint hit-rate)")
    fuzz.add_argument("--journal", default="", metavar="FILE",
                      help="append a crash-safe JSONL flight record of "
                           "the sweep to FILE (repro tail / repro report "
                           "--campaign; docs/campaign-journal.md)")
    sweep = sub.add_parser(
        "sweep", help="distributed, resumable campaign sweeps over the "
                      "fabric backends (docs/fabric.md)")
    sweep.add_argument("--protocol", choices=["tcp", "gmp"],
                       default="gmp")
    sweep.add_argument("--targets", default="",
                       help="comma list of targets (TCP vendor profiles "
                            "or GMP variants; default: all)")
    sweep.add_argument("--count", type=int, default=3,
                       help="generated scripts per target (default 3)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="campaign seed (default 0)")
    sweep.add_argument("--depth", type=float, default=None, metavar="T",
                       help="filter-install depth shared by every "
                            "config (forms one prefix group per target)")
    sweep.add_argument("--backend", choices=["local", "sockets"],
                       default="local",
                       help="execution backend (default local)")
    sweep.add_argument("--workers", default="2",
                       help="worker processes, or 'auto' (default 2)")
    sweep.add_argument("--journal-dir", default="", metavar="DIR",
                       help="campaign directory: sweep spec, shared "
                            "result store, per-shard journals")
    sweep.add_argument("--resume", default="", metavar="DIR",
                       help="resume the sweep recorded in DIR (its "
                            "spec.pkl); only rows missing from the "
                            "result store execute")
    sweep.add_argument("--ttl", type=float, default=None,
                       help="lease heartbeat TTL in seconds "
                            "(sockets backend; default 15)")
    sweep.add_argument("--shard-size", type=int, default=None,
                       help="configs per shard lease (default: sized "
                            "from --workers)")
    sweep.add_argument("--stable", action="store_true",
                       help="also print the wall-clock-free stable "
                            "scorecard (the chaos-test oracle)")
    explore = sub.add_parser(
        "explore", help="bounded delivery-order exploration from a "
                        "prefix checkpoint, oracle packs as verdict "
                        "(docs/checkpointing.md)")
    explore.add_argument("--protocol", choices=["tcp", "gmp"],
                         default="gmp")
    explore.add_argument("--target", default="self_death",
                         help="bug variant to build the rig with "
                              "(default self_death; 'fixed' for the "
                              "clean build)")
    explore.add_argument("--seed", type=int, default=0,
                         help="world seed (default 0)")
    explore.add_argument("--depth", type=float, default=None,
                         help="virtual time to warm the world to before "
                              "checkpointing (default: the protocol's "
                              "stock filter-install time)")
    explore.add_argument("--window", type=float, default=1.5,
                         help="seconds past the checkpoint whose events "
                              "may be perturbed (default 1.5)")
    explore.add_argument("--horizon", type=float, default=None,
                         help="virtual time to run each schedule to "
                              "(default: the protocol's fuzz horizon)")
    explore.add_argument("--max-schedules", type=int, default=64,
                         help="schedule budget (default 64)")
    explore.add_argument("--max-perturbations", type=int, default=1,
                         help="perturbations per schedule (default 1)")
    explore.add_argument("--defer-delta", type=float, default=4.0,
                         help="seconds a deferred event is pushed back "
                              "(default 4)")
    explore.add_argument("--recheckpoint-every", type=int, default=8,
                         metavar="K",
                         help="re-checkpoint explored branches every K "
                              "steps and refork later schedules from "
                              "the nearest ancestor (0 disables the "
                              "checkpoint tree; default 8)")
    explore.add_argument("--progress", action="store_true",
                         help="print findings and progress as schedules "
                              "run")
    explore.add_argument("--journal", default="", metavar="FILE",
                         help="append a crash-safe JSONL flight record "
                              "of the exploration to FILE "
                              "(docs/campaign-journal.md)")
    chrome = sub.add_parser(
        "trace", help="convert a JSON-lines trace to Chrome-trace/"
                      "Perfetto JSON")
    chrome.add_argument("trace_file", nargs="?", default="",
                        help="JSON-lines trace "
                             "(analysis.export.dump_trace)")
    chrome.add_argument("--out", default="",
                        help="write to this file instead of stdout")
    chrome.add_argument("--journal", default="", metavar="FILE",
                        help="convert a campaign journal instead: phases "
                             "and runs become duration spans")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "campaign":
        cmd_campaign(args)
    elif args.command == "lint":
        return cmd_lint(args)
    elif args.command == "check":
        return cmd_check(args)
    elif args.command == "run-script":
        cmd_run_script(args)
    elif args.command == "sequence":
        cmd_sequence(args)
    elif args.command == "report":
        return cmd_report(args)
    elif args.command == "tail":
        return cmd_tail(args)
    elif args.command == "history":
        return cmd_history(args)
    elif args.command == "trace":
        return cmd_trace(args)
    elif args.command == "fuzz":
        return cmd_fuzz(args)
    elif args.command == "sweep":
        return cmd_sweep(args)
    elif args.command == "explore":
        return cmd_explore(args)
    else:
        COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
