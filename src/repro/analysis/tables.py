"""Plain-text table rendering in the style of the paper's Tables 1-8.

Each benchmark prints its table through :func:`render_table` so the output
a user sees mirrors the rows the paper reports (implementation | results |
comments).
"""

from __future__ import annotations

import textwrap
from typing import List, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]], *,
                 max_col_width: int = 48) -> str:
    """Render a boxed, wrapped plain-text table."""
    str_rows = [[_to_cell(cell) for cell in row] for row in rows]
    wrapped_rows = [
        [textwrap.wrap(cell, max_col_width) or [""] for cell in row]
        for row in str_rows
    ]
    widths = []
    for col, header in enumerate(headers):
        cells = [len(line) for row in wrapped_rows
                 for line in row[col]] if wrapped_rows else [0]
        widths.append(min(max_col_width, max([len(header)] + cells)))

    def rule(ch: str = "-") -> str:
        return "+" + "+".join(ch * (w + 2) for w in widths) + "+"

    def emit_row(lines_per_cell: List[List[str]]) -> List[str]:
        height = max(len(lines) for lines in lines_per_cell)
        out = []
        for i in range(height):
            cells = []
            for col, lines in enumerate(lines_per_cell):
                text = lines[i] if i < len(lines) else ""
                cells.append(f" {text:<{widths[col]}} ")
            out.append("|" + "|".join(cells) + "|")
        return out

    lines = [title, rule("=")]
    lines.extend(emit_row([[h] for h in headers]))
    lines.append(rule("="))
    for row in wrapped_rows:
        lines.extend(emit_row(row))
        lines.append(rule())
    return "\n".join(lines)


def _to_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, (list, tuple)):
        return ", ".join(_to_cell(v) for v in value)
    return str(value)
