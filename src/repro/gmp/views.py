"""Group views.

A :class:`GroupView` is a consistent snapshot of the group: an incarnation
number and a member list.  The protocol's structural rules live here:

- the **leader** is the member with the lowest address (the paper's
  implementation used lowest IP address);
- the **crown prince** is "the machine which is next in line to be the
  leader if the leader fails" -- the second-lowest address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class GroupView:
    """An immutable group membership view."""

    group_id: int
    members: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "members", tuple(sorted(set(self.members))))
        if not self.members:
            raise ValueError("a group view must have at least one member")

    @property
    def leader(self) -> int:
        """Lowest-addressed member."""
        return self.members[0]

    @property
    def crown_prince(self) -> Optional[int]:
        """Second-lowest member, or None for a singleton group."""
        return self.members[1] if len(self.members) > 1 else None

    @property
    def is_singleton(self) -> bool:
        return len(self.members) == 1

    def contains(self, address: int) -> bool:
        return address in self.members

    def without(self, *addresses: int) -> Tuple[int, ...]:
        """Member list minus the given addresses."""
        gone = set(addresses)
        return tuple(m for m in self.members if m not in gone)

    def with_added(self, *addresses: int) -> Tuple[int, ...]:
        """Member list plus the given addresses."""
        return tuple(sorted(set(self.members) | set(addresses)))

    def __repr__(self) -> str:
        return f"GroupView(gid={self.group_id}, members={list(self.members)})"


def singleton_view(address: int, group_id: int = 0) -> GroupView:
    """The view a daemon starts with: a group of one."""
    return GroupView(group_id=group_id, members=(address,))
