"""Integration tests for scriptlint's three wiring layers.

Layer 1: TclishFilter validates at construction (warn by default).
Layer 2: Campaign refuses to start on any broken config script.
Layer 3: generate_campaign self-checks its battery.

Plus the corpus guarantee: every tclish script shipped in this
repository -- generated batteries, experiment scripts, example filters,
the quickstart -- lints error-clean.
"""

import re
import warnings
from pathlib import Path

import pytest

from repro.core.genscripts import (GenerationLintError, generate_campaign,
                                   gmp_spec, lint_generated, tcp_spec)
from repro.core.orchestrator import Campaign, CampaignScriptError
from repro.core.script import TclishFilter, TclishLintWarning
from repro.core.tclish.lint import TclishLintError, lint_source

REPO = Path(__file__).resolve().parents[2]


def _noop_body(env, config):
    return config.get("vendor")


class TestFilterConstruction:
    def test_default_mode_warns_and_stores_report(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            f = TclishFilter("xDropp cur_msg")
        assert any(issubclass(w.category, TclishLintWarning)
                   for w in caught)
        assert not f.lint_report.ok()
        assert f.lint_report.sorted()[0].code == "SL001"

    def test_error_mode_raises_with_full_report(self):
        with pytest.raises(TclishLintError) as excinfo:
            TclishFilter("xDropp cur_msg\nchance 1.5", lint="error")
        report = excinfo.value.report
        assert {d.code for d in report.sorted()} == {"SL001", "SL006"}

    def test_off_mode_skips_analysis(self):
        f = TclishFilter("xDropp cur_msg", lint="off")
        assert f.lint_report is None

    def test_clean_filter_quiet_in_every_mode(self):
        source = 'if {[msg_type cur_msg] eq "ACK"} { xDelay 3.0 }'
        with warnings.catch_warnings():
            warnings.simplefilter("error")      # any warning -> failure
            TclishFilter(source)
            TclishFilter(source, lint="error")

    def test_init_script_participates(self):
        # $seen comes from the init script: clean with it, flagged without
        body = "incr seen\nif {$seen > 3} { xDrop cur_msg }"
        TclishFilter(body, init_script="set seen 0", lint="error")
        with pytest.raises(TclishLintError):
            TclishFilter("puts $ghost", lint="error")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TclishFilter("set x 1", lint="loud")


class TestCampaignRefusal:
    def test_broken_config_fails_before_any_worker(self):
        ran = []

        def body(env, config):
            ran.append(config)

        with pytest.raises(CampaignScriptError):
            Campaign(body).run([
                {"vendor": "a", "script": "set x 1"},       # clean
                {"vendor": "b", "script": "xDropp cur_msg"},
            ])
        assert ran == []          # not even the clean config executed

    def test_all_broken_configs_reported_at_once(self):
        with pytest.raises(CampaignScriptError) as excinfo:
            Campaign(_noop_body).run([
                {"script": "xDropp cur_msg"},
                {"script": "chance 1.5"},
                {"script": "set ok 1"},
            ])
        err = excinfo.value
        assert len(err.reports) == 2
        text = str(err)
        assert "config[0].script" in text and "config[1].script" in text
        assert "refused to start" in text

    def test_init_key_pairs_with_script_key(self):
        # $n is defined by init_script, so the config is clean
        results = Campaign(_noop_body).run([
            {"vendor": "a", "script": "incr n", "init_script": "set n 0"}])
        assert len(results) == 1

    def test_filter_instances_are_linted(self):
        bad = TclishFilter("chance 1.5", lint="off")
        with pytest.raises(CampaignScriptError):
            Campaign(_noop_body).run([{"filter": bad}])

    def test_lint_off_restores_old_behaviour(self):
        results = Campaign(_noop_body, lint="off").run(
            [{"vendor": "a", "script": "xDropp cur_msg"}])
        assert len(results) == 1

    def test_invalid_lint_mode_rejected(self):
        with pytest.raises(ValueError):
            Campaign(_noop_body, lint="warn")

    def test_parallel_path_also_guarded(self):
        with pytest.raises(CampaignScriptError):
            Campaign(_noop_body).run(
                [{"script": "xDropp cur_msg"}, {"script": "set x 1"}],
                workers=2)


class TestGeneratorSelfCheck:
    def test_generated_batteries_are_clean(self):
        for spec in (tcp_spec(), gmp_spec()):
            scripts = generate_campaign(spec)
            assert scripts
            assert lint_generated(scripts) == []

    def test_broken_template_raises_at_generation_time(self):
        scripts = generate_campaign(tcp_spec(), self_check=False)
        # simulate a template regression
        scripts[0].tclish_source = "xDropp cur_msg"
        failing = lint_generated(scripts)
        assert len(failing) == 1
        with pytest.raises(GenerationLintError):
            if failing:
                raise GenerationLintError(failing)


class TestCorpusIsClean:
    def test_experiment_embedded_script(self):
        from repro.experiments.tcp_retransmission import (DROP_AFTER_TCLISH,
                                                          PASS_COUNT)
        report = lint_source(
            DROP_AFTER_TCLISH,
            init_script=f"set seen 0; set limit {PASS_COUNT}")
        assert report.ok(), report.sorted()

    def test_example_filter_files(self):
        filters = sorted((REPO / "examples" / "filters").glob("*.tcl"))
        assert len(filters) >= 5
        for path in filters:
            report = lint_source(path.read_text(),
                                 source_name=str(path))
            assert report.ok(), report.sorted()

    def test_quickstart_embedded_script(self):
        text = (REPO / "examples" / "quickstart.py").read_text()
        blocks = re.findall(
            r'TclishFilter\("""(.*?)"""(?:,\s*init_script="([^"]*)")?',
            text, re.S)
        assert blocks, "quickstart no longer embeds a tclish script?"
        for source, init in blocks:
            report = lint_source(source, init_script=init)
            assert report.ok(), report.sorted()
