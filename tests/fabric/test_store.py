"""ResultStore: multi-writer atomicity and probe-based resume."""

import pickle

import pytest

from repro.core.fabric import ResultStore, SweepSpec
from repro.core.orchestrator import RunCache, _execute_config
from tests.fabric.rig import chaos_body, make_spec


def _result(item=0):
    return _execute_config(chaos_body, 1, {"item": item, "ticks": 2})


def test_put_has_get_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = make_spec(3)
    keys = spec.store_keys(store)
    assert not store.has(keys[0])
    result = _result(0)
    assert store.put(keys[0], result)
    assert store.has(keys[0])
    loaded = store.get(keys[0])
    assert loaded.config == result.config
    assert loaded.result == result.result


def test_missing_returns_todo_indices_in_order(tmp_path):
    store = ResultStore(tmp_path / "store")
    keys = make_spec(4).store_keys(store)
    store.put(keys[1], _result(1))
    store.put(keys[3], _result(3))
    assert store.missing(keys) == [0, 2]
    store.put(keys[0], _result(0))
    store.put(keys[2], _result(2))
    assert store.missing(keys) == []


def test_load_all_raises_on_gap(tmp_path):
    store = ResultStore(tmp_path / "store")
    keys = make_spec(2).store_keys(store)
    store.put(keys[0], _result(0))
    with pytest.raises(RuntimeError, match="missing row 1"):
        store.load_all(keys)
    store.put(keys[1], _result(1))
    results = store.load_all(keys)
    assert [r.config["item"] for r in results] == [0, 1]


def test_concurrent_writers_never_leave_temp_debris(tmp_path):
    # two store objects simulate two worker processes racing on one key
    a = ResultStore(tmp_path / "store")
    b = ResultStore(tmp_path / "store")
    key = make_spec(1).store_keys(a)[0]
    assert a.put(key, _result(0))
    assert b.put(key, _result(0))
    assert a.has(key) and b.has(key)
    leftovers = [p for p in (tmp_path / "store").rglob("*.tmp")]
    assert leftovers == []


def test_unpicklable_result_refused_not_crashed(tmp_path):
    store = ResultStore(tmp_path / "store")
    key = make_spec(1).store_keys(store)[0]

    class Hostile:
        def __reduce__(self):
            raise pickle.PicklingError("no")

    result = _result(0)
    result.result = Hostile()
    assert store.put(key, result) is False
    assert not store.has(key)


def test_store_interoperates_with_plain_runcache(tmp_path):
    # a serial Campaign.run(cache=RunCache(dir)) warms the same
    # directory a fabric sweep resumes from: keys must agree
    store = ResultStore(tmp_path / "store")
    cache = RunCache(tmp_path / "store")
    spec = make_spec(2)
    fabric_keys = spec.store_keys(store)
    for index, config in enumerate(spec.configs):
        assert cache.key(spec.body, spec.seed, config,
                         telemetry=spec.telemetry,
                         oracle=spec.oracle) == fabric_keys[index]


def test_spec_digest_stable_across_save_load_cycles(tmp_path):
    spec = make_spec(3)
    path = tmp_path / "spec.pkl"
    spec.save(path)
    first = SweepSpec.load(path)
    second = SweepSpec.load(path)
    assert spec.digest() == first.digest() == second.digest()
    # and across a re-save of a loaded spec (pickle memo layouts differ;
    # the digest must not care)
    first.save(tmp_path / "respec.pkl")
    assert SweepSpec.load(tmp_path / "respec.pkl").digest() == spec.digest()


def test_spec_digest_distinguishes_content(tmp_path):
    base = make_spec(3)
    assert make_spec(4).digest() != base.digest()
    assert make_spec(3, seed=2).digest() != base.digest()
