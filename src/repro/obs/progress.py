"""One shared live-progress renderer for every long-running engine.

``run_fuzz --progress``, ``Campaign.run(progress=)``, ``repro explore
--progress`` and ``repro tail`` all used to format their own status
lines; this module is the single formatter they now share, so a sweep
looks the same whether it is watched live or replayed from its journal.

The line shape is fixed::

    [fuzz gmp] 12/64 trials, 41.7 trials/s, eta 1s, coverage 58, findings 1, checkpoint hit-rate 83%

i.e. ``[label]``, progress (``done`` or ``done/total``), the rate, an
ETA when the total is known, then every extra stat in the order the
caller passed it.  Rates guard zero/negative elapsed time (a sweep
whose first event lands within clock resolution reports 0.0, never a
``ZeroDivisionError``), matching the
:class:`~repro.obs.telemetry.RunTelemetry` contract.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Optional


def rate_of(done: int, elapsed: float) -> float:
    """``done`` per second over ``elapsed``, 0.0 for degenerate clocks."""
    return done / elapsed if elapsed > 0 else 0.0


def _format_stat(key: str, value: Any) -> str:
    label = key.replace("_", " ")
    if isinstance(value, float):
        return f"{label} {value:.1f}"
    return f"{label} {value}"


def format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressRenderer:
    """Render uniform progress lines for a counted unit of work.

    ``sink`` is any ``line -> None`` callable (``print`` for live
    output); with ``sink=None`` the renderer only formats --
    :meth:`line` is still usable, which is how ``repro tail`` renders
    journal events without owning a clock.
    """

    def __init__(self, label: str, *, total: Optional[int] = None,
                 unit: str = "trials",
                 sink: Optional[Callable[[str], None]] = None,
                 clock: Callable[[], float] = perf_counter):
        self.label = label
        self.total = total
        self.unit = unit
        self.sink = sink
        self._clock = clock
        self._start = clock()

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    def line(self, done: int, *, elapsed: Optional[float] = None,
             **stats: Any) -> str:
        """Format one progress line without emitting it.

        ``elapsed`` overrides the renderer's own clock -- journal
        replays pass the recorded event time so a tailed line matches
        what the live run printed.
        """
        if elapsed is None:
            elapsed = self.elapsed
        progress = (f"{done}/{self.total}" if self.total is not None
                    else f"{done}")
        rate = rate_of(done, elapsed)
        parts = [f"[{self.label}] {progress} {self.unit}",
                 f"{rate:.1f} {self.unit}/s"]
        if self.total is not None and rate > 0 and done < self.total:
            parts.append(f"eta {format_eta((self.total - done) / rate)}")
        parts.extend(_format_stat(key, value)
                     for key, value in stats.items() if value is not None)
        return ", ".join(parts)

    def update(self, done: int, **stats: Any) -> str:
        """Format one line and push it to the sink (if any)."""
        text = self.line(done, **stats)
        if self.sink is not None:
            self.sink(text)
        return text
