"""Experiment orchestration.

An :class:`ExperimentEnv` bundles the shared infrastructure every
experiment needs -- one scheduler, one network, one trace, one sync object,
seeded distributions -- so experiment modules read as: build env, attach
protocol machinery, install filter scripts, run, query the trace.

:class:`Campaign` runs the same experiment body across a parameter sweep
(e.g. the four TCP vendor profiles) and collects per-configuration
results, which is how each paper table with one row per vendor is
produced.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.distributions import DistributionSet, derive_seed
from repro.core.sync import ScriptSync
from repro.netsim.network import Network
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.obs.telemetry import RunTelemetry, render_scorecard

#: config keys whose string values are treated as tclish script sources
SCRIPT_KEYS = ("script", "tclish", "tclish_source", "send_script",
               "receive_script")

#: config keys naming the init script for the matching script key
_INIT_KEYS = {"script": "init_script", "tclish": "tclish_init",
              "tclish_source": "tclish_init", "send_script": "send_init",
              "receive_script": "receive_init"}


@dataclass
class ExperimentEnv:
    """Shared infrastructure for one experiment run."""

    scheduler: Scheduler
    network: Network
    trace: TraceRecorder
    sync: ScriptSync
    seed: int

    def dist(self, *labels) -> DistributionSet:
        """A deterministic distribution stream derived from the run seed."""
        return DistributionSet(derive_seed(self.seed, *labels))

    def run_until(self, deadline: float, max_events: int = 2_000_000) -> int:
        """Advance virtual time to ``deadline``."""
        return self.scheduler.run_until(deadline, max_events=max_events)

    def run_until_quiet(self, max_time: float = 1e9,
                        max_events: int = 2_000_000) -> float:
        """Run until no events remain (or max_time); returns final time."""
        fired = 0
        while True:
            next_time = self.scheduler.peek_time()
            if next_time is None or next_time > max_time:
                break
            self.scheduler.step()
            fired += 1
            if fired >= max_events:
                raise RuntimeError("experiment did not quiesce")
        return self.scheduler.now


def make_env(seed: int = 0, *, default_latency: float = 0.001) -> ExperimentEnv:
    """Construct a fresh environment with everything wired together."""
    scheduler = Scheduler()
    trace = TraceRecorder(clock=lambda: scheduler.now)
    network = Network(scheduler, default_latency=default_latency,
                      seed=seed, trace=trace)
    return ExperimentEnv(scheduler=scheduler, network=network, trace=trace,
                         sync=ScriptSync(), seed=seed)


@dataclass
class RunResult:
    """The outcome of one experiment configuration.

    ``telemetry`` carries per-run timing and volume figures
    (:class:`~repro.obs.telemetry.RunTelemetry`); it is ``None`` when the
    campaign ran with ``telemetry=False``.
    """

    config: Dict[str, Any]
    result: Any
    trace: TraceRecorder
    telemetry: Optional[RunTelemetry] = None


class CampaignScriptError(ValueError):
    """One or more campaign configs carry scripts that fail lint.

    Raised before any configuration executes; ``reports`` holds one
    :class:`~repro.core.tclish.lint.LintReport` per broken script so the
    message lists every diagnostic of every config, not just the first.
    """

    def __init__(self, reports):
        from repro.core.tclish.lint.reporting import render_text
        self.reports = list(reports)
        text = "\n".join(render_text(report) for report in self.reports)
        super().__init__(
            f"campaign refused to start: {len(self.reports)} config "
            f"script(s) failed lint\n{text}")


def _config_scripts(config: Dict[str, Any], index: int
                    ) -> List[Tuple[str, str, str]]:
    """Extract ``(label, source, init)`` script triples from one config.

    Recognized forms: string values under :data:`SCRIPT_KEYS` (with an
    optional companion init key), :class:`~repro.core.script
    .TclishFilter` instances, and :class:`~repro.core.genscripts
    .GeneratedScript` instances under any key.
    """
    from repro.core.genscripts import GeneratedScript
    from repro.core.script import TclishFilter
    scripts: List[Tuple[str, str, str]] = []
    for key, value in config.items():
        label = f"config[{index}].{key}"
        if isinstance(value, str) and key in SCRIPT_KEYS:
            init = config.get(_INIT_KEYS.get(key, ""), "")
            scripts.append((label, value, init if isinstance(init, str)
                            else ""))
        elif isinstance(value, TclishFilter):
            scripts.append((label, value.source, ""))
        elif isinstance(value, GeneratedScript):
            scripts.append((label, value.tclish_source, value.tclish_init))
    return scripts


class Campaign:
    """Run an experiment body across a sweep of configurations.

    The body receives a fresh :class:`ExperimentEnv` plus the configuration
    dict and returns any result object.  Determinism note: each
    configuration derives its own seed from the campaign seed and the
    configuration repr, so adding a configuration does not perturb others.

    Because every configuration is an independent seeded simulation, the
    sweep is embarrassingly parallel: ``run(configs, workers=N)`` fans the
    configurations out over ``N`` worker processes.  Serial and parallel
    execution share :func:`_execute_config`, so parallel results are
    identical to serial ones and are returned in input order.  Requirements
    for ``workers > 1``: the body must be a module-level (picklable)
    callable, and its result values must be picklable too.  Each worker
    builds its own :class:`ExperimentEnv` -- in particular each process
    gets its own ``ScriptSync``, so cross-configuration coordination is
    impossible by construction (it would break determinism anyway).
    """

    def __init__(self, body: Callable[[ExperimentEnv, Dict[str, Any]], Any],
                 *, seed: int = 0, lint: str = "error"):
        if lint not in ("error", "off"):
            raise ValueError(f'Campaign lint mode must be "error" or '
                             f'"off", got {lint!r}')
        self._body = body
        self._seed = seed
        self._lint = lint

    def validate_scripts(self, configs: Iterable[Dict[str, Any]]):
        """Lint every tclish script found in the configs.

        Returns the list of failing
        :class:`~repro.core.tclish.lint.LintReport` objects (empty when
        everything is clean).  ``run`` calls this before starting any
        worker and raises :class:`CampaignScriptError` with *all*
        diagnostics, so one campaign launch surfaces every broken config
        at once instead of failing minutes in on the first.
        """
        from repro.core.tclish.lint import lint_source
        failing = []
        for index, config in enumerate(configs):
            for label, source, init in _config_scripts(config, index):
                report = lint_source(source, init_script=init,
                                     source_name=label)
                if not report.ok():
                    failing.append(report)
        return failing

    def run(self, configs: Iterable[Dict[str, Any]], *,
            workers: int = 1, telemetry: bool = True,
            scorecard: bool = False) -> List[RunResult]:
        """Execute the body once per configuration.

        With ``workers > 1`` the configurations run in a process pool;
        results are byte-identical to serial execution and come back in
        input order.  The default stays serial so existing sweeps are
        untouched.  Configs carrying tclish scripts (see
        :data:`SCRIPT_KEYS`) are statically analyzed first; any
        error-level diagnostic aborts the whole campaign before any
        worker runs (``Campaign(..., lint="off")`` skips this).

        ``telemetry`` (default on) records per-configuration wall time,
        dispatched-event count, final virtual time and trace volume onto
        ``RunResult.telemetry``; ``telemetry=False`` restores the bare
        execution path.  ``scorecard=True`` additionally prints the
        campaign scorecard (:func:`repro.obs.telemetry.render_scorecard`)
        after the sweep completes.
        """
        config_list = [dict(config) for config in configs]
        if self._lint != "off":
            failing = self.validate_scripts(config_list)
            if failing:
                raise CampaignScriptError(failing)
        if workers <= 1 or len(config_list) <= 1:
            results = [_execute_config(self._body, self._seed, config,
                                       telemetry=telemetry)
                       for config in config_list]
        else:
            try:
                pickle.dumps(self._body)
            except Exception as err:
                raise TypeError(
                    "Campaign.run(workers>1) needs a picklable "
                    f"(module-level) body, got {self._body!r}: {err}"
                ) from err
            pool_size = min(workers, len(config_list))
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                futures = [pool.submit(_execute_config, self._body,
                                       self._seed, config,
                                       telemetry=telemetry)
                           for config in config_list]
                results = []
                for index, future in enumerate(futures):
                    try:
                        results.append(future.result())
                    except Exception as err:
                        # name the failing configuration: a bare pool
                        # traceback says nothing about which sweep point
                        # died.  add_note keeps the original type and
                        # message intact for callers matching on them.
                        err.add_note(
                            f"campaign config [{index}] failed: "
                            f"{config_list[index]!r}")
                        raise
        if scorecard:
            print(render_scorecard(results))
        return results


def _execute_config(body: Callable[[ExperimentEnv, Dict[str, Any]], Any],
                    seed: int, config: Dict[str, Any], *,
                    telemetry: bool = True) -> RunResult:
    """Run one configuration: the shared serial/parallel execution path."""
    run_seed = derive_seed(seed, repr(sorted(config.items())))
    env = make_env(seed=run_seed)
    if not telemetry:
        result = body(env, dict(config))
        return RunResult(config=dict(config), result=result, trace=env.trace)
    start = perf_counter()
    result = body(env, dict(config))
    wall_s = perf_counter() - start
    run_telemetry = RunTelemetry(
        wall_s=wall_s, events=env.scheduler.dispatched_count,
        virtual_s=env.scheduler.now, trace_entries=len(env.trace))
    return RunResult(config=dict(config), result=result, trace=env.trace,
                     telemetry=run_telemetry)
