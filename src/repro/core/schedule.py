"""Declarative fault schedules.

Experiments often follow a timeline: behave normally, inject a fault at
t1, tighten it at t2, heal at t3, check the aftermath.  A
:class:`FaultSchedule` expresses that timeline declaratively and arms it
on the scheduler, replacing ad-hoc ``scheduler.schedule(...)`` sprinkled
through experiment code:

    schedule = (FaultSchedule(env.scheduler)
                .at(10.0, "partition", lambda: net.partition([1], [2, 3]))
                .at(40.0, "heal", net.heal)
                .every(5.0, "probe", send_probe, until=40.0))
    schedule.arm()

Each step is recorded in the trace (kind ``fault.step``), so the injected
timeline is part of the experiment's record -- and the schedule can be
rendered as a runbook for the experiment writeup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder


@dataclass
class _Step:
    time: float
    label: str
    action: Callable[[], None]
    interval: Optional[float] = None
    until: Optional[float] = None


class FaultSchedule:
    """A timeline of named fault-injection actions."""

    def __init__(self, scheduler: Scheduler, *,
                 trace: Optional[TraceRecorder] = None):
        self._scheduler = scheduler
        self._trace = trace
        self._steps: List[_Step] = []
        self._armed = False
        self.fired: List[str] = []

    # ------------------------------------------------------------------
    # construction (chainable)
    # ------------------------------------------------------------------

    def at(self, time: float, label: str,
           action: Callable[[], None]) -> "FaultSchedule":
        """Run ``action`` once at absolute virtual time ``time``."""
        self._ensure_not_armed()
        self._steps.append(_Step(time, label, action))
        return self

    def after(self, delay: float, label: str,
              action: Callable[[], None]) -> "FaultSchedule":
        """Run ``action`` once, ``delay`` seconds after arming."""
        self._ensure_not_armed()
        self._steps.append(_Step(-delay, label, action))  # resolved on arm
        return self

    def every(self, interval: float, label: str,
              action: Callable[[], None], *, start: float = 0.0,
              until: Optional[float] = None) -> "FaultSchedule":
        """Run ``action`` repeatedly from ``start``, every ``interval``,
        stopping after ``until`` (absolute) when given."""
        self._ensure_not_armed()
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._steps.append(_Step(start, label, action,
                                 interval=interval, until=until))
        return self

    def _ensure_not_armed(self) -> None:
        if self._armed:
            raise RuntimeError("schedule already armed")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def arm(self) -> "FaultSchedule":
        """Install every step on the scheduler."""
        self._ensure_not_armed()
        self._armed = True
        now = self._scheduler.now
        for step in self._steps:
            time = now - step.time if step.time < 0 else step.time
            if step.interval is None:
                self._scheduler.schedule_at(max(time, now),
                                            self._fire_once, step)
            else:
                first = max(time, now)
                self._scheduler.schedule_at(first, self._fire_repeating,
                                            step)
        return self

    def _fire_once(self, step: _Step) -> None:
        self.fired.append(step.label)
        self._record(step)
        step.action()

    def _fire_repeating(self, step: _Step) -> None:
        if step.until is not None and self._scheduler.now > step.until:
            return
        self.fired.append(step.label)
        self._record(step)
        step.action()
        next_time = self._scheduler.now + step.interval
        if step.until is None or next_time <= step.until:
            self._scheduler.schedule_at(next_time, self._fire_repeating,
                                        step)

    def _record(self, step: _Step) -> None:
        if self._trace is not None:
            self._trace.record("fault.step", t=self._scheduler.now,
                               label=step.label)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def runbook(self) -> str:
        """Human-readable timeline of the planned steps."""
        lines = []
        for step in sorted(self._steps,
                           key=lambda s: abs(s.time)):
            when = (f"+{-step.time:.1f}s after arm" if step.time < 0
                    else f"t={step.time:.1f}s")
            if step.interval is not None:
                until = (f" until t={step.until:.1f}s"
                         if step.until is not None else "")
                lines.append(f"{when} then every {step.interval:.1f}s"
                             f"{until}: {step.label}")
            else:
                lines.append(f"{when}: {step.label}")
        return "\n".join(lines)
