"""Built-in tclish commands.

:func:`install` registers the standard command set on an interpreter.  The
implementations stay close to Tcl semantics for the subset the paper's
filter scripts use; they are intentionally plain functions so the whole
stdlib is greppable.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, List

from repro.core.tclish import expr as _expr
from repro.core.tclish.errors import TclBreak, TclContinue, TclError, TclReturn
from repro.core.tclish.lexer import split_words, strip_braces

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tclish.interp import Interp


# ----------------------------------------------------------------------
# list helpers (Tcl lists are strings with brace quoting)
# ----------------------------------------------------------------------

#: the word separators split_words recognises, as a regex for the fast path
_PLAIN_SEP = re.compile(r"[ \t\n]+")


def parse_list(text: str) -> List[str]:
    """Split a Tcl list string into elements.

    Lists with no quoting constructs -- the overwhelmingly common case in
    filter scripts -- split on whitespace directly instead of walking the
    lexer character by character.
    """
    if "{" not in text and '"' not in text and "\\" not in text \
            and "[" not in text:
        stripped = text.strip(" \t\n")
        return _PLAIN_SEP.split(stripped) if stripped else []
    return [strip_braces(word) for word in split_words(text)]


def build_list(elements: List[str]) -> str:
    """Join elements into a Tcl list string, brace-quoting as needed."""
    quoted = []
    for element in elements:
        if element == "" or any(c in element for c in " \t\n{}[]$\";"):
            quoted.append("{" + element + "}")
        else:
            quoted.append(element)
    return " ".join(quoted)


def _index(text: str, length: int) -> int:
    """Parse a Tcl index, supporting ``end`` and ``end-N``."""
    if text == "end":
        return length - 1
    if text.startswith("end-"):
        return length - 1 - int(text[4:])
    return int(text)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------

def _cmd_set(interp: "Interp", args: List[str]) -> str:
    if len(args) == 1:
        return interp.get_var(args[0])
    if len(args) == 2:
        return interp.set_var(args[0], args[1])
    raise TclError('wrong # args: should be "set varName ?newValue?"')


def _cmd_unset(interp: "Interp", args: List[str]) -> str:
    for name in args:
        interp.unset_var(name)
    return ""


def _cmd_incr(interp: "Interp", args: List[str]) -> str:
    if not 1 <= len(args) <= 2:
        raise TclError('wrong # args: should be "incr varName ?increment?"')
    step = int(args[1]) if len(args) == 2 else 1
    current = int(interp.get_var(args[0])) if interp.has_var(args[0]) else 0
    return interp.set_var(args[0], current + step)


def _cmd_append(interp: "Interp", args: List[str]) -> str:
    if not args:
        raise TclError('wrong # args: should be "append varName ?value ...?"')
    current = interp.get_var(args[0]) if interp.has_var(args[0]) else ""
    return interp.set_var(args[0], current + "".join(args[1:]))


def _evaluate(interp: "Interp", text: str):
    """Expression evaluation, memoised when the compiled engine is active."""
    if interp.compiled:
        return _expr.evaluate_cached(text)
    return _expr.evaluate(text)


def _cmd_expr(interp: "Interp", args: List[str]) -> str:
    text = interp.substitute(" ".join(args))
    return _expr.format_value(_evaluate(interp, text))


def _cmd_if(interp: "Interp", args: List[str]) -> str:
    i = 0
    while i < len(args):
        condition = interp.substitute(args[i])
        if _expr.truth(_evaluate(interp, condition)):
            body_index = i + 1
            if body_index < len(args) and args[body_index] == "then":
                body_index += 1
            if body_index >= len(args):
                raise TclError('missing body in "if"')
            return interp.eval(args[body_index])
        i += 2
        if i < len(args) and args[i - 1] == "then":
            i += 1
        if i < len(args) and args[i] == "elseif":
            i += 1
            continue
        if i < len(args) and args[i] == "else":
            if i + 1 >= len(args):
                raise TclError('missing body after "else"')
            return interp.eval(args[i + 1])
        break
    return ""


def _cmd_while(interp: "Interp", args: List[str]) -> str:
    if len(args) != 2:
        raise TclError('wrong # args: should be "while test body"')
    test, body = args
    iterations = 0
    while _expr.truth(_evaluate(interp, interp.substitute(test))):
        iterations += 1
        if iterations > 1_000_000:
            raise TclError("while loop exceeded 1e6 iterations")
        try:
            interp.eval(body)
        except TclBreak:
            break
        except TclContinue:
            continue
    return ""


def _cmd_for(interp: "Interp", args: List[str]) -> str:
    if len(args) != 4:
        raise TclError('wrong # args: should be "for start test next body"')
    start, test, nxt, body = args
    interp.eval(start)
    iterations = 0
    while _expr.truth(_evaluate(interp, interp.substitute(test))):
        iterations += 1
        if iterations > 1_000_000:
            raise TclError("for loop exceeded 1e6 iterations")
        try:
            interp.eval(body)
        except TclBreak:
            break
        except TclContinue:
            pass
        interp.eval(nxt)
    return ""


def _cmd_foreach(interp: "Interp", args: List[str]) -> str:
    if len(args) != 3:
        raise TclError('wrong # args: should be "foreach varName list body"')
    var, list_text, body = args
    for element in parse_list(list_text):
        interp.set_var(var, element)
        try:
            interp.eval(body)
        except TclBreak:
            break
        except TclContinue:
            continue
    return ""


def _cmd_proc(interp: "Interp", args: List[str]) -> str:
    from repro.core.tclish.interp import Proc
    if len(args) != 3:
        raise TclError('wrong # args: should be "proc name params body"')
    name, params_text, body = args
    params = []
    for raw in split_words(params_text):
        parts = [strip_braces(w) for w in split_words(strip_braces(raw))]
        params.append(parts if parts else [strip_braces(raw)])
    interp.procs[name] = Proc(name, params, body)
    return ""


def _cmd_return(interp: "Interp", args: List[str]) -> str:
    raise TclReturn(args[0] if args else "")


def _cmd_break(interp: "Interp", args: List[str]) -> str:
    raise TclBreak()


def _cmd_continue(interp: "Interp", args: List[str]) -> str:
    raise TclContinue()


def _cmd_global(interp: "Interp", args: List[str]) -> str:
    for name in args:
        interp.link_global(name)
    return ""


def _cmd_puts(interp: "Interp", args: List[str]) -> str:
    nonewline = False
    if args and args[0] == "-nonewline":
        nonewline = True
        args = args[1:]
    text = args[0] if args else ""
    interp.write(text if nonewline else text)
    return ""


def _cmd_eval(interp: "Interp", args: List[str]) -> str:
    return interp.eval(" ".join(args))


def _cmd_catch(interp: "Interp", args: List[str]) -> str:
    if not 1 <= len(args) <= 2:
        raise TclError('wrong # args: should be "catch script ?varName?"')
    try:
        result = interp.eval(args[0])
        code = "0"
    except TclError as err:
        result = str(err)
        code = "1"
    except TclReturn as ret:
        result = ret.value
        code = "2"
    if len(args) == 2:
        interp.set_var(args[1], result)
    return code


def _cmd_list(interp: "Interp", args: List[str]) -> str:
    return build_list(args)


def _cmd_lindex(interp: "Interp", args: List[str]) -> str:
    if len(args) != 2:
        raise TclError('wrong # args: should be "lindex list index"')
    elements = parse_list(args[0])
    index = _index(args[1], len(elements))
    if 0 <= index < len(elements):
        return elements[index]
    return ""


def _cmd_llength(interp: "Interp", args: List[str]) -> str:
    if len(args) != 1:
        raise TclError('wrong # args: should be "llength list"')
    return str(len(parse_list(args[0])))


def _cmd_lappend(interp: "Interp", args: List[str]) -> str:
    if not args:
        raise TclError('wrong # args: should be "lappend varName ?value ...?"')
    current = interp.get_var(args[0]) if interp.has_var(args[0]) else ""
    elements = parse_list(current)
    elements.extend(args[1:])
    return interp.set_var(args[0], build_list(elements))


def _cmd_lrange(interp: "Interp", args: List[str]) -> str:
    if len(args) != 3:
        raise TclError('wrong # args: should be "lrange list first last"')
    elements = parse_list(args[0])
    first = max(0, _index(args[1], len(elements)))
    last = min(len(elements) - 1, _index(args[2], len(elements)))
    return build_list(elements[first:last + 1])


def _cmd_lsearch(interp: "Interp", args: List[str]) -> str:
    if len(args) != 2:
        raise TclError('wrong # args: should be "lsearch list pattern"')
    for i, element in enumerate(parse_list(args[0])):
        if element == args[1]:
            return str(i)
    return "-1"


def _cmd_lsort(interp: "Interp", args: List[str]) -> str:
    options = [a for a in args[:-1]]
    if not args:
        raise TclError('wrong # args: should be "lsort ?options? list"')
    elements = parse_list(args[-1])
    reverse = "-decreasing" in options
    if "-integer" in options:
        elements.sort(key=lambda e: int(e), reverse=reverse)
    elif "-real" in options:
        elements.sort(key=lambda e: float(e), reverse=reverse)
    else:
        elements.sort(reverse=reverse)
    if "-unique" in options:
        deduped: List[str] = []
        for element in elements:
            if not deduped or deduped[-1] != element:
                deduped.append(element)
        elements = deduped
    return build_list(elements)


def _cmd_lreplace(interp: "Interp", args: List[str]) -> str:
    if len(args) < 3:
        raise TclError(
            'wrong # args: should be "lreplace list first last ?element ...?"')
    elements = parse_list(args[0])
    first = max(0, _index(args[1], len(elements)))
    last = _index(args[2], len(elements))
    return build_list(elements[:first] + list(args[3:])
                      + elements[last + 1:])


def _cmd_lrepeat(interp: "Interp", args: List[str]) -> str:
    if len(args) < 2:
        raise TclError('wrong # args: should be "lrepeat count ?element ...?"')
    count = int(args[0])
    if count < 0:
        raise TclError("bad count: must be >= 0")
    return build_list(list(args[1:]) * count)


def _cmd_switch(interp: "Interp", args: List[str]) -> str:
    """``switch ?-exact|-glob? value {pattern body ... ?default body?}``"""
    mode = "exact"
    while args and args[0] in ("-exact", "-glob", "--"):
        if args[0] == "-glob":
            mode = "glob"
        args = args[1:]
    if len(args) == 2:
        value = args[0]
        pairs = [strip_braces(w) for w in split_words(args[1])]
    elif len(args) >= 3 and len(args) % 2 == 1:
        value, pairs = args[0], list(args[1:])
    else:
        raise TclError('wrong # args: should be '
                       '"switch ?options? value {pattern body ...}"')
    if len(pairs) % 2 != 0:
        raise TclError("switch: pattern/body list must have even length")
    import fnmatch
    fallthrough_pending = False
    for i in range(0, len(pairs), 2):
        pattern, body = pairs[i], pairs[i + 1]
        matched = fallthrough_pending
        if not matched:
            if pattern == "default" and i == len(pairs) - 2:
                matched = True
            elif mode == "glob":
                matched = fnmatch.fnmatchcase(value, pattern)
            else:
                matched = value == pattern
        if matched:
            if body == "-":
                fallthrough_pending = True
                continue
            return interp.eval(body)
    return ""


def _cmd_concat(interp: "Interp", args: List[str]) -> str:
    return " ".join(a.strip() for a in args if a.strip())


def _cmd_split(interp: "Interp", args: List[str]) -> str:
    if not 1 <= len(args) <= 2:
        raise TclError('wrong # args: should be "split string ?splitChars?"')
    text = args[0]
    chars = args[1] if len(args) == 2 else " \t\n"
    if not chars:
        return build_list(list(text))
    parts: List[str] = []
    current = ""
    for ch in text:
        if ch in chars:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return build_list(parts)


def _cmd_join(interp: "Interp", args: List[str]) -> str:
    if not 1 <= len(args) <= 2:
        raise TclError('wrong # args: should be "join list ?joinString?"')
    sep = args[1] if len(args) == 2 else " "
    return sep.join(parse_list(args[0]))


def _cmd_string(interp: "Interp", args: List[str]) -> str:
    if len(args) < 2:
        raise TclError('wrong # args: should be "string option arg ?arg ...?"')
    option, text = args[0], args[1]
    if option == "length":
        return str(len(text))
    if option == "tolower":
        return text.lower()
    if option == "toupper":
        return text.upper()
    if option == "trim":
        return text.strip(args[2]) if len(args) > 2 else text.strip()
    if option == "index":
        index = _index(args[2], len(text))
        return text[index] if 0 <= index < len(text) else ""
    if option == "range":
        first = max(0, _index(args[2], len(text)))
        last = min(len(text) - 1, _index(args[3], len(text)))
        return text[first:last + 1]
    if option == "compare":
        other = args[2]
        return str((text > other) - (text < other))
    if option == "equal":
        return "1" if text == args[2] else "0"
    if option == "first":
        return str(args[2].find(text))
    if option == "match":
        import fnmatch
        return "1" if fnmatch.fnmatchcase(args[2], text) else "0"
    if option == "repeat":
        return text * int(args[2])
    raise TclError(f'bad string option "{option}"')


def _cmd_format(interp: "Interp", args: List[str]) -> str:
    if not args:
        raise TclError('wrong # args: should be "format formatString ?arg ...?"')
    template = args[0]
    values: List[object] = []
    spec_types = _format_spec_types(template)
    for text, kind in zip(args[1:], spec_types):
        if kind in "dioxXc":
            values.append(int(float(text)) if "." in text else int(text, 0))
        elif kind in "eEfgG":
            values.append(float(text))
        else:
            values.append(text)
    try:
        return template % tuple(values)
    except (TypeError, ValueError) as err:
        raise TclError(f"format error: {err}")


def _format_spec_types(template: str) -> List[str]:
    kinds = []
    i = 0
    while i < len(template):
        if template[i] == "%" and i + 1 < len(template):
            j = i + 1
            while j < len(template) and template[j] in "-+ #0123456789.*":
                j += 1
            if j < len(template):
                if template[j] != "%":
                    kinds.append(template[j])
                i = j + 1
                continue
        i += 1
    return kinds


def _cmd_info(interp: "Interp", args: List[str]) -> str:
    if not args:
        raise TclError('wrong # args: should be "info option ?arg?"')
    option = args[0]
    if option == "exists":
        return "1" if interp.has_var(args[1]) else "0"
    if option == "commands":
        names = sorted(set(interp.commands) | set(interp.procs))
        return build_list(names)
    if option == "procs":
        return build_list(sorted(interp.procs))
    if option == "vars":
        scope = interp._current_scope()
        return build_list(sorted(scope))
    if option == "globals":
        return build_list(sorted(interp.globals))
    raise TclError(f'bad info option "{option}"')


def _cmd_error(interp: "Interp", args: List[str]) -> str:
    raise TclError(args[0] if args else "error")


def install(interp: "Interp") -> None:
    """Register the standard command set on an interpreter."""
    commands = {
        "set": _cmd_set,
        "unset": _cmd_unset,
        "incr": _cmd_incr,
        "append": _cmd_append,
        "expr": _cmd_expr,
        "if": _cmd_if,
        "while": _cmd_while,
        "for": _cmd_for,
        "foreach": _cmd_foreach,
        "proc": _cmd_proc,
        "return": _cmd_return,
        "break": _cmd_break,
        "continue": _cmd_continue,
        "global": _cmd_global,
        "puts": _cmd_puts,
        "eval": _cmd_eval,
        "catch": _cmd_catch,
        "list": _cmd_list,
        "lindex": _cmd_lindex,
        "llength": _cmd_llength,
        "lappend": _cmd_lappend,
        "lrange": _cmd_lrange,
        "lsearch": _cmd_lsearch,
        "lsort": _cmd_lsort,
        "lreplace": _cmd_lreplace,
        "lrepeat": _cmd_lrepeat,
        "switch": _cmd_switch,
        "concat": _cmd_concat,
        "split": _cmd_split,
        "join": _cmd_join,
        "string": _cmd_string,
        "format": _cmd_format,
        "info": _cmd_info,
        "error": _cmd_error,
    }
    for name, fn in commands.items():
        interp.register_command(name, fn)
