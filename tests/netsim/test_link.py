"""Unit tests for simulated links."""

import random

import pytest

from repro.netsim.link import Link
from repro.netsim.scheduler import Scheduler


@pytest.fixture
def sched():
    return Scheduler()


def make_link(sched, **kw):
    received = []
    link = Link(sched, received.append, **kw)
    return link, received


def test_delivers_after_latency(sched):
    link, received = make_link(sched, latency=0.5)
    link.send("hello")
    sched.run_until(0.4)
    assert received == []
    sched.run_until(0.6)
    assert received == ["hello"]


def test_fifo_ordering_preserved(sched):
    link, received = make_link(sched, latency=0.1)
    for i in range(5):
        link.send(i)
    sched.run()
    assert received == [0, 1, 2, 3, 4]


def test_jitter_never_reorders(sched):
    link, received = make_link(sched, latency=0.01, jitter=0.5,
                               rng=random.Random(42))
    for i in range(50):
        sched.schedule(i * 0.001, link.send, i)
    sched.run()
    assert received == list(range(50))


def test_loss_rate_drops_packets(sched):
    link, received = make_link(sched, loss_rate=0.5, rng=random.Random(7))
    for i in range(200):
        link.send(i)
    sched.run()
    assert 40 < len(received) < 160
    assert link.dropped_count == 200 - len(received)


def test_loss_rate_zero_drops_nothing(sched):
    link, received = make_link(sched, loss_rate=0.0)
    for i in range(50):
        link.send(i)
    sched.run()
    assert len(received) == 50


def test_loss_rate_one_drops_everything(sched):
    link, received = make_link(sched, loss_rate=1.0)
    for i in range(20):
        assert link.send(i) is False
    sched.run()
    assert received == []


def test_down_link_rejects_sends(sched):
    link, received = make_link(sched)
    link.down()
    assert link.send("x") is False
    sched.run()
    assert received == []


def test_down_destroys_in_flight(sched):
    link, received = make_link(sched, latency=1.0)
    link.send("doomed")
    sched.run_until(0.5)
    link.down()
    sched.run()
    assert received == []


def test_up_after_down_carries_again(sched):
    link, received = make_link(sched)
    link.down()
    link.up()
    link.send("alive")
    sched.run()
    assert received == ["alive"]


def test_counters(sched):
    link, received = make_link(sched)
    link.send("a")
    sched.run()          # deliver before unplugging
    link.down()
    link.send("b")
    sched.run()
    assert link.sent_count == 2
    assert link.delivered_count == 1
    assert link.dropped_count == 1


def test_invalid_loss_rate_rejected(sched):
    with pytest.raises(ValueError):
        Link(sched, lambda p: None, loss_rate=1.5)


def test_negative_latency_rejected(sched):
    with pytest.raises(ValueError):
        Link(sched, lambda p: None, latency=-1.0)


def test_deterministic_with_same_seed(sched):
    outcomes = []
    for _ in range(2):
        s = Scheduler()
        link, received = make_link(s, loss_rate=0.3, rng=random.Random(9))
        for i in range(100):
            link.send(i)
        s.run()
        outcomes.append(tuple(received))
    assert outcomes[0] == outcomes[1]
