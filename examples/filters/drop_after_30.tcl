# Table 1 filter: behave correctly for 30 packets, then drop everything.
# Paper §4.1 -- the receive-side omission fault that exposes each
# vendor's retransmission-timeout schedule.
#
# Self-contained form of the experiment script: state lives in the
# interpreter across invocations, so the counter is initialised once
# with an `info exists` guard instead of an init script.
if {![info exists seen]} {
    set seen 0
    set limit 30
}
incr seen
if {$seen > $limit} {
    msg_log "dropping [msg_type cur_msg] #$seen"
    xDrop cur_msg
}
