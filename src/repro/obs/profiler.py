"""The tclish script profiler.

A million-event campaign spends most of its wall clock inside filter
scripts; when one is slow, the question is *which command* is eating the
time.  :class:`ScriptProfiler` answers it: attach one to an interpreter
(``interp.profiler = profiler``) or a filter
(:meth:`~repro.core.script.TclishFilter.enable_profiler`) and the
compiled execution path records per-command invocation counts and wall
time, while ``TclishFilter.run`` records per-script totals.

The hook is strictly opt-in: with no profiler attached the compiled
executor pays one ``is not None`` test per command and allocates
nothing.  Command times are *inclusive* -- ``if``/``while``/``proc``
bodies evaluated inside a command are charged to that command as well as
to their own commands -- which is the useful shape for "where does the
time go" questions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class ScriptProfiler:
    """Accumulates per-command and per-script wall time."""

    __slots__ = ("commands", "scripts")

    def __init__(self):
        #: command name -> [invocations, total seconds] (inclusive)
        self.commands: Dict[str, List[float]] = {}
        #: script label -> [runs, total seconds]
        self.scripts: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # capture (called from the interpreter hot path)
    # ------------------------------------------------------------------

    def record_command(self, name: str, seconds: float) -> None:
        cell = self.commands.get(name)
        if cell is None:
            self.commands[name] = [1, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds

    def record_script(self, label: str, seconds: float) -> None:
        cell = self.scripts.get(label)
        if cell is None:
            self.scripts[label] = [1, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds

    # ------------------------------------------------------------------
    # aggregation / reporting
    # ------------------------------------------------------------------

    def merge(self, other: "ScriptProfiler") -> "ScriptProfiler":
        """Fold another profiler (e.g. the peer filter's) into this one."""
        for table_name in ("commands", "scripts"):
            mine, theirs = getattr(self, table_name), getattr(other,
                                                             table_name)
            for key, (count, total) in theirs.items():
                cell = mine.get(key)
                if cell is None:
                    mine[key] = [count, total]
                else:
                    cell[0] += count
                    cell[1] += total
        return self

    def command_rows(self) -> List[Tuple[str, int, float, float]]:
        """``(name, calls, total_s, per_call_us)`` sorted by total desc."""
        rows = [(name, int(count), total, total / count * 1e6)
                for name, (count, total) in self.commands.items()]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows

    def script_rows(self) -> List[Tuple[str, int, float, float]]:
        """``(label, runs, total_s, per_run_us)`` sorted by total desc."""
        rows = [(label, int(count), total, total / count * 1e6)
                for label, (count, total) in self.scripts.items()]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows

    def report(self, *, top: int = 20) -> str:
        """Aligned text report: scripts first, then the command ranking."""
        lines: List[str] = []
        if self.scripts:
            lines.append(f"{'script':<32} {'runs':>8} {'total s':>10} "
                         f"{'us/run':>10}")
            for label, runs, total, per in self.script_rows()[:top]:
                lines.append(f"{label:<32} {runs:>8} {total:>10.4f} "
                             f"{per:>10.1f}")
        if self.commands:
            if lines:
                lines.append("")
            lines.append(f"{'command':<32} {'calls':>8} {'total s':>10} "
                         f"{'us/call':>10}")
            for name, calls, total, per in self.command_rows()[:top]:
                lines.append(f"{name:<32} {calls:>8} {total:>10.4f} "
                             f"{per:>10.1f}")
        return "\n".join(lines) if lines else "(profiler captured nothing)"

    def __repr__(self) -> str:
        return (f"ScriptProfiler({len(self.commands)} commands, "
                f"{len(self.scripts)} scripts)")
