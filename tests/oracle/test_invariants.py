"""Unit tests of the trace-invariant engine itself.

The protocol packs get their own suites (conformance + known-bug
detection); here we pin the engine mechanics: subscription dispatch,
single-pass evaluation, finish hooks, violation fingerprints, and the
report/metrics surface.
"""

import pytest

from repro.netsim.trace import TraceRecorder
from repro.obs.metrics import MetricsRegistry
from repro.oracle import (Invariant, Violation, describe, evaluate,
                          gmp_pack, packs_by_name, tcp_pack)


def make_trace():
    trace = TraceRecorder()
    trace.record("tcp.state", t=1.0, conn="a", old="CLOSED", new="SYN_SENT")
    trace.record("tcp.send", t=2.0, conn="a", seq=1)
    trace.record("gmp.send", t=3.0, node=1, msg_kind="HEARTBEAT")
    trace.record("pfi.drop", t=4.0, node=2, uid=7)
    return trace


class CountingInvariant(Invariant):
    code = "TEST-COUNT"
    description = "counts subscribed entries"
    kinds = ("tcp.send",)

    def __init__(self):
        self.seen = []

    def on_entry(self, entry):
        self.seen.append(entry.kind)


class PrefixInvariant(Invariant):
    code = "TEST-PREFIX"
    prefixes = ("tcp.",)

    def __init__(self):
        self.seen = []

    def on_entry(self, entry):
        self.seen.append(entry.kind)


class FinishInvariant(Invariant):
    code = "TEST-FINISH"
    kinds = ("pfi.drop",)

    def __init__(self):
        self.last = None

    def on_entry(self, entry):
        self.last = entry

    def finish(self):
        if self.last is not None:
            return [self.violation(self.last, "drop observed")]


def test_exact_kind_subscription_dispatches_only_those_entries():
    inv = CountingInvariant()
    report = evaluate(make_trace(), [inv])
    assert inv.seen == ["tcp.send"]
    assert report.ok()
    assert report.invariant_codes == ("TEST-COUNT",)
    assert report.trace_entries == 4


def test_prefix_subscription_sees_the_whole_family_in_order():
    inv = PrefixInvariant()
    evaluate(make_trace(), [inv])
    assert inv.seen == ["tcp.state", "tcp.send"]


def test_entries_scanned_counts_subscribed_entries_once():
    # two invariants subscribed to overlapping kinds: the pass is still
    # one walk, so each subscribed entry is scanned exactly once
    report = evaluate(make_trace(), [CountingInvariant(), PrefixInvariant()])
    assert report.entries_scanned == 2  # tcp.state + tcp.send


def test_finish_violations_carry_the_anchor_entry():
    report = evaluate(make_trace(), [FinishInvariant()])
    assert not report.ok()
    [violation] = report.violations
    assert violation.code == "TEST-FINISH"
    assert violation.kind == "pfi.drop"
    assert violation.time == 4.0
    assert violation.subject == "2"     # node fallback
    assert violation.uid == 7


def test_fingerprint_excludes_the_uid():
    a = Violation(code="X", message="m", time=1.0, kind="k", uid=1)
    b = Violation(code="X", message="m", time=1.0, kind="k", uid=999)
    assert a.fingerprint() == b.fingerprint()
    assert "uid" not in str(a)


def test_report_grouping_and_render():
    v1 = Violation(code="A", message="first", time=1.0, kind="k")
    v2 = Violation(code="B", message="second", time=2.0, kind="k")
    v3 = Violation(code="A", message="third", time=3.0, kind="k")
    report = evaluate(make_trace(), [])
    report.violations.extend([v1, v2, v3])
    assert report.codes() == ("A", "B")
    assert [v.message for v in report.by_code()["A"]] == ["first", "third"]
    assert len(report.fingerprints()) == 3
    rendered = report.render()
    assert "A: 2" in rendered and "B: 1" in rendered


def test_fill_metrics_exports_violation_counters():
    registry = MetricsRegistry()
    report = evaluate(make_trace(), [FinishInvariant()])
    report.fill_metrics(registry)
    text = registry.render()
    assert "oracle_violations" in text
    assert "TEST-FINISH" in text


def test_packs_by_name_returns_fresh_instances():
    first = packs_by_name(["tcp", "gmp"])
    second = packs_by_name(["tcp"])
    assert len(first) == len(tcp_pack()) + len(gmp_pack())
    assert not {id(inv) for inv in first} & {id(inv) for inv in second}
    with pytest.raises(ValueError, match="unknown invariant pack"):
        packs_by_name(["bogus"])


def test_stock_packs_describe_themselves():
    for pack in (tcp_pack(), gmp_pack()):
        for code, description in describe(pack):
            assert code and description
