"""Capstone bench: auto-generated campaign scorecard for the GMP.

Combines the two §6 future-work features -- script generation from a
protocol spec and statistical campaign execution -- into the resilience
scorecard a testing organization would actually ship: every generated
fault script runs against a live three-node group, and the safety
property (view agreement) plus a liveness check (recovery after the fault
clears) are evaluated per failure model.
"""

from repro.core.genscripts import generate_campaign, gmp_spec
from repro.core.randomtest import TrialOutcome, run_campaign
from repro.experiments.gmp_common import build_gmp_cluster

from conftest import emit

VICTIM = 3


def gmp_trial(script, seed) -> TrialOutcome:
    cluster = build_gmp_cluster([1, 2, 3], seed=seed % 100000)
    cluster.start()
    cluster.run_until(10.0)
    if not cluster.all_in_one_group():
        return TrialOutcome(False, "group never formed")

    if script.direction == "send":
        cluster.pfis[VICTIM].set_send_filter(script.python_filter)
    else:
        cluster.pfis[VICTIM].set_receive_filter(script.python_filter)
    cluster.run_until(50.0)

    # safety: committed views must agree across daemons
    by_key = {}
    for daemon in cluster.daemons.values():
        for view in daemon.views_adopted:
            key = (view.leader, view.group_id)
            if by_key.setdefault(key, view.members) != view.members:
                return TrialOutcome(False, f"view disagreement at {key}")

    # liveness: clear the fault, the full group must re-form
    cluster.pfis[VICTIM].clear_filters()
    cluster.run_until(120.0)
    if not cluster.all_in_one_group():
        return TrialOutcome(False, "did not recover after fault cleared")
    return TrialOutcome(True)


def run_scorecard():
    scripts = generate_campaign(gmp_spec(), omission_rates=(0.3,),
                                crash_after_messages=30)
    return run_campaign(scripts, gmp_trial, seed=7)


def test_gmp_campaign_scorecard(once_benchmark):
    scorecard = once_benchmark(run_scorecard)
    emit("Auto-generated campaign scorecard: GMP under every generated "
         "fault (safety + recovery)",
         scorecard.render("one victim machine, three-node group"))
    # the fixed GMP must hold its safety property under every generated
    # fault, and recover from the overwhelming majority
    for record in scorecard.records:
        assert "disagreement" not in record.outcome.detail, record
    assert scorecard.pass_rate() >= 0.9, scorecard.failing_scripts()
