"""Experiment orchestration.

An :class:`ExperimentEnv` bundles the shared infrastructure every
experiment needs -- one scheduler, one network, one trace, one sync object,
seeded distributions -- so experiment modules read as: build env, attach
protocol machinery, install filter scripts, run, query the trace.

:class:`Campaign` runs the same experiment body across a parameter sweep
(e.g. the four TCP vendor profiles) and collects per-configuration
results, which is how each paper table with one row per vendor is
produced.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List

from repro.core.distributions import DistributionSet, derive_seed
from repro.core.sync import ScriptSync
from repro.netsim.network import Network
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder


@dataclass
class ExperimentEnv:
    """Shared infrastructure for one experiment run."""

    scheduler: Scheduler
    network: Network
    trace: TraceRecorder
    sync: ScriptSync
    seed: int

    def dist(self, *labels) -> DistributionSet:
        """A deterministic distribution stream derived from the run seed."""
        return DistributionSet(derive_seed(self.seed, *labels))

    def run_until(self, deadline: float, max_events: int = 2_000_000) -> int:
        """Advance virtual time to ``deadline``."""
        return self.scheduler.run_until(deadline, max_events=max_events)

    def run_until_quiet(self, max_time: float = 1e9,
                        max_events: int = 2_000_000) -> float:
        """Run until no events remain (or max_time); returns final time."""
        fired = 0
        while True:
            next_time = self.scheduler.peek_time()
            if next_time is None or next_time > max_time:
                break
            self.scheduler.step()
            fired += 1
            if fired >= max_events:
                raise RuntimeError("experiment did not quiesce")
        return self.scheduler.now


def make_env(seed: int = 0, *, default_latency: float = 0.001) -> ExperimentEnv:
    """Construct a fresh environment with everything wired together."""
    scheduler = Scheduler()
    trace = TraceRecorder(clock=lambda: scheduler.now)
    network = Network(scheduler, default_latency=default_latency,
                      seed=seed, trace=trace)
    return ExperimentEnv(scheduler=scheduler, network=network, trace=trace,
                         sync=ScriptSync(), seed=seed)


@dataclass
class RunResult:
    """The outcome of one experiment configuration."""

    config: Dict[str, Any]
    result: Any
    trace: TraceRecorder


class Campaign:
    """Run an experiment body across a sweep of configurations.

    The body receives a fresh :class:`ExperimentEnv` plus the configuration
    dict and returns any result object.  Determinism note: each
    configuration derives its own seed from the campaign seed and the
    configuration repr, so adding a configuration does not perturb others.

    Because every configuration is an independent seeded simulation, the
    sweep is embarrassingly parallel: ``run(configs, workers=N)`` fans the
    configurations out over ``N`` worker processes.  Serial and parallel
    execution share :func:`_execute_config`, so parallel results are
    identical to serial ones and are returned in input order.  Requirements
    for ``workers > 1``: the body must be a module-level (picklable)
    callable, and its result values must be picklable too.  Each worker
    builds its own :class:`ExperimentEnv` -- in particular each process
    gets its own ``ScriptSync``, so cross-configuration coordination is
    impossible by construction (it would break determinism anyway).
    """

    def __init__(self, body: Callable[[ExperimentEnv, Dict[str, Any]], Any],
                 *, seed: int = 0):
        self._body = body
        self._seed = seed

    def run(self, configs: Iterable[Dict[str, Any]], *,
            workers: int = 1) -> List[RunResult]:
        """Execute the body once per configuration.

        With ``workers > 1`` the configurations run in a process pool;
        results are byte-identical to serial execution and come back in
        input order.  The default stays serial so existing sweeps are
        untouched.
        """
        config_list = [dict(config) for config in configs]
        if workers <= 1 or len(config_list) <= 1:
            return [_execute_config(self._body, self._seed, config)
                    for config in config_list]
        try:
            pickle.dumps(self._body)
        except Exception as err:
            raise TypeError(
                "Campaign.run(workers>1) needs a picklable (module-level) "
                f"body, got {self._body!r}: {err}") from err
        pool_size = min(workers, len(config_list))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = [pool.submit(_execute_config, self._body, self._seed,
                                   config) for config in config_list]
            return [future.result() for future in futures]


def _execute_config(body: Callable[[ExperimentEnv, Dict[str, Any]], Any],
                    seed: int, config: Dict[str, Any]) -> RunResult:
    """Run one configuration: the shared serial/parallel execution path."""
    run_seed = derive_seed(seed, repr(sorted(config.items())))
    env = make_env(seed=run_seed)
    result = body(env, dict(config))
    return RunResult(config=dict(config), result=result, trace=env.trace)
