"""Experiment orchestration.

An :class:`ExperimentEnv` bundles the shared infrastructure every
experiment needs -- one scheduler, one network, one trace, one sync object,
seeded distributions -- so experiment modules read as: build env, attach
protocol machinery, install filter scripts, run, query the trace.

:class:`Campaign` runs the same experiment body across a parameter sweep
(e.g. the four TCP vendor profiles) and collects per-configuration
results, which is how each paper table with one row per vendor is
produced.

Sweep-scale layout: parallel campaigns dispatch *chunks* of configurations
to a persistent :class:`~concurrent.futures.ProcessPoolExecutor` (one pool
per process, grown on demand, torn down at interpreter exit), so a
thousand-point sweep pays worker startup once and pickles one task per
chunk instead of one per configuration.  ``workers="auto"`` sizes the pool
from ``os.cpu_count()`` and falls back to serial execution when the sweep
is too small to amortize the pool.  An optional :class:`RunCache` keyed on
the body's code, the campaign seed, and the configuration makes repeated
sweeps (bench reruns, notebook iterations) skip already-computed points.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from time import perf_counter
from types import CodeType
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.distributions import DistributionSet, derive_seed
from repro.core.sync import ScriptSync
from repro.netsim import kinds as K
from repro.netsim.network import Network
from repro.netsim.scheduler import Scheduler, SchedulerClock, SchedulerError
from repro.netsim.trace import TraceRecorder
from repro.obs.journal import Journal
from repro.obs.progress import ProgressRenderer
from repro.obs.telemetry import RunTelemetry, _config_label, render_scorecard

#: config keys whose string values are treated as tclish script sources
SCRIPT_KEYS = ("script", "tclish", "tclish_source", "send_script",
               "receive_script")

#: config keys naming the init script for the matching script key
_INIT_KEYS = {"script": "init_script", "tclish": "tclish_init",
              "tclish_source": "tclish_init", "send_script": "send_init",
              "receive_script": "receive_init"}

#: sweeps smaller than this run serially even under ``workers="auto"``;
#: pool startup + pickling dominates below it
_AUTO_SERIAL_THRESHOLD = 4

#: chunks submitted per worker slot -- small enough to amortize dispatch,
#: large enough that one slow chunk cannot serialize the whole sweep
_CHUNKS_PER_WORKER = 4


@dataclass
class ExperimentEnv:
    """Shared infrastructure for one experiment run."""

    scheduler: Scheduler
    network: Network
    trace: TraceRecorder
    sync: ScriptSync
    seed: int
    #: every stream handed out by :meth:`dist`, so a checkpoint fork can
    #: re-derive all of them under a new run seed (see :meth:`reseed`)
    dists: List[DistributionSet] = dataclass_field(default_factory=list)

    def dist(self, *labels) -> DistributionSet:
        """A deterministic distribution stream derived from the run seed."""
        stream = DistributionSet(derive_seed(self.seed, *labels),
                                 labels=labels)
        self.dists.append(stream)
        return stream

    def reseed(self, seed: int) -> None:
        """Re-target this environment (a checkpoint fork) to a new seed.

        Re-derives the network's link streams and every
        :meth:`dist`-issued stream exactly as a cold run under ``seed``
        would have, which is only sound while none of them has been
        drawn from yet -- a stream consumed during the checkpointed
        prefix would make the fork diverge from the cold run, so that
        case raises instead (the checkpoint layer surfaces it as a
        ``CheckpointError``).
        """
        consumed = [d for d in self.dists if d.draws]
        if consumed:
            raise RuntimeError(
                f"{len(consumed)} distribution stream(s) drew from their "
                f"RNG before the reseed (labels "
                f"{[d.labels for d in consumed]}); checkpoint is not "
                f"seed-portable")
        self.network.reseed(seed)
        self.seed = seed
        for stream in self.dists:
            if stream.labels is not None:
                stream.reseed(derive_seed(seed, *stream.labels))

    def run_until(self, deadline: float, max_events: int = 2_000_000) -> int:
        """Advance virtual time to ``deadline``."""
        return self.scheduler.run_until(deadline, max_events=max_events)

    def run_until_quiet(self, max_time: float = 1e9,
                        max_events: int = 2_000_000) -> float:
        """Run until no events remain (or max_time); returns final time."""
        try:
            self.scheduler.run_until_quiet(max_time, max_events=max_events)
        except SchedulerError as err:
            raise RuntimeError("experiment did not quiesce") from err
        return self.scheduler.now


def make_env(seed: int = 0, *, default_latency: float = 0.001) -> ExperimentEnv:
    """Construct a fresh environment with everything wired together."""
    scheduler = Scheduler()
    trace = TraceRecorder(clock=SchedulerClock(scheduler))
    network = Network(scheduler, default_latency=default_latency,
                      seed=seed, trace=trace)
    return ExperimentEnv(scheduler=scheduler, network=network, trace=trace,
                         sync=ScriptSync(), seed=seed)


@dataclass
class RunResult:
    """The outcome of one experiment configuration.

    ``telemetry`` carries per-run timing and volume figures
    (:class:`~repro.obs.telemetry.RunTelemetry`); it is ``None`` when the
    campaign ran with ``telemetry=False``.  ``violations`` holds the
    :class:`~repro.oracle.Violation` list from the campaign's conformance
    oracle (``Campaign.run(..., oracle=...)``); it is ``None`` when no
    oracle ran, and ``[]`` when one ran and found the trace clean.
    """

    config: Dict[str, Any]
    result: Any
    trace: TraceRecorder
    telemetry: Optional[RunTelemetry] = None
    violations: Optional[List[Any]] = None

    def ok(self) -> bool:
        """True when the run's oracle (if any) reported no violations."""
        return not self.violations


def _hash_code(digest, code) -> None:
    """Mix a code object into ``digest``, process-stably.

    Nested code objects (inner functions, comprehensions) are hashed
    structurally -- name, bytecode, then their own consts -- instead of
    through ``repr``, whose ``<code object ... at 0x...>`` form embeds a
    memory address and would therefore derive a different key in every
    process.  The fabric's shared result store depends on this: workers
    and the coordinator must address the same row by the same key.
    """
    digest.update(code.co_name.encode())
    digest.update(code.co_code)
    for const in code.co_consts:
        if isinstance(const, CodeType):
            _hash_code(digest, const)
        else:
            digest.update(repr(const).encode())


class RunCache:
    """Content-addressed store of pickled :class:`RunResult` objects.

    The cache key hashes everything that determines a configuration's
    outcome: the body's module, qualname and compiled bytecode, the
    campaign seed, the configuration contents, and the telemetry flag.
    Editing the body function, changing the seed, or touching the config
    therefore all miss naturally -- no explicit invalidation step exists or
    is needed; stale entries are simply never addressed again (delete the
    cache directory to reclaim the space).

    Configurations whose values cannot be pickled deterministically fall
    back to ``repr``; a value whose repr embeds an object id (the default
    ``<Foo object at 0x...>`` form) yields a fresh key every process, which
    degrades to a guaranteed miss -- never to a wrong hit.

    The cache is opt-in (``Campaign.run(..., cache=RunCache(path))``)
    because a cached sweep skips the body entirely: wall-time telemetry of
    a hit reflects the original run, and side effects the body may have
    (prints, file output) do not reoccur.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key(self, body: Callable, seed: int, config: Dict[str, Any], *,
            telemetry: bool, oracle: Optional[Callable] = None,
            checkpoint: Optional[str] = None) -> str:
        digest = hashlib.sha256()
        # split bodies (PrefixedBody) expose their parts so the key
        # covers the prefix *and* continuation bytecode, not the
        # wrapper instance whose repr would churn per process
        parts = getattr(body, "cache_parts", None)
        for fn in (parts() if callable(parts) else (body,)):
            digest.update(getattr(fn, "__module__", "").encode())
            digest.update(getattr(fn, "__qualname__", repr(fn)).encode())
            code = getattr(fn, "__code__", None)
            if code is not None:
                _hash_code(digest, code)
        digest.update(str(seed).encode())
        digest.update(b"telemetry" if telemetry else b"bare")
        if checkpoint is not None:
            # results computed by continuing a checkpoint are only
            # interchangeable with runs from the *same* captured prefix:
            # mix the checkpoint identity in so a changed prefix (other
            # depth, other warmup code) can never address a stale entry
            digest.update(b"checkpoint:")
            digest.update(str(checkpoint).encode())
        if oracle is not None:
            digest.update(getattr(oracle, "__module__", "").encode())
            digest.update(getattr(oracle, "__qualname__",
                                  repr(oracle)).encode())
        for k in sorted(config):
            digest.update(k.encode())
            value = config[k]
            try:
                digest.update(pickle.dumps(value))
            except Exception:
                digest.update(repr(value).encode())
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> bool:
        """Store one result; returns False if it is not picklable."""
        try:
            blob = pickle.dumps(result)
        except Exception:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return True


class CampaignScriptError(ValueError):
    """One or more campaign configs carry scripts that fail lint.

    Raised before any configuration executes; ``reports`` holds one
    :class:`~repro.core.tclish.lint.LintReport` per broken script so the
    message lists every diagnostic of every config, not just the first.
    """

    def __init__(self, reports):
        from repro.core.tclish.lint.reporting import render_text
        self.reports = list(reports)
        text = "\n".join(render_text(report) for report in self.reports)
        super().__init__(
            f"campaign refused to start: {len(self.reports)} "
            f"source(s) failed the static check\n{text}")


def _config_scripts(config: Dict[str, Any], index: int
                    ) -> List[Tuple[str, str, str]]:
    """Extract ``(label, source, init)`` script triples from one config.

    Recognized forms: string values under :data:`SCRIPT_KEYS` (with an
    optional companion init key), :class:`~repro.core.script
    .TclishFilter` instances, and :class:`~repro.core.genscripts
    .GeneratedScript` instances under any key.
    """
    from repro.core.genscripts import GeneratedScript
    from repro.core.script import TclishFilter
    scripts: List[Tuple[str, str, str]] = []
    for key, value in config.items():
        label = f"config[{index}].{key}"
        if isinstance(value, str) and key in SCRIPT_KEYS:
            init = config.get(_INIT_KEYS.get(key, ""), "")
            scripts.append((label, value, init if isinstance(init, str)
                            else ""))
        elif isinstance(value, TclishFilter):
            scripts.append((label, value.source, ""))
        elif isinstance(value, GeneratedScript):
            scripts.append((label, value.tclish_source, value.tclish_init))
    return scripts


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_size = 0


def _get_pool(size: int) -> ProcessPoolExecutor:
    """The process-wide campaign pool, grown (never shrunk) to ``size``.

    Keeping one pool alive across ``Campaign.run`` calls means a bench
    loop or notebook session pays worker startup once, not per sweep.
    """
    global _pool, _pool_size
    if _pool is not None and _pool_size >= size:
        return _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
    _pool = ProcessPoolExecutor(max_workers=size)
    _pool_size = size
    return _pool


def _shutdown_pool() -> None:
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_size = 0


atexit.register(_shutdown_pool)


def _chunk_ranges(total: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` chunks covering ``range(total)``.

    Aims for :data:`_CHUNKS_PER_WORKER` chunks per worker slot so uneven
    per-config workloads still load-balance, while never creating more
    chunks than configs.
    """
    target = min(total, workers * _CHUNKS_PER_WORKER)
    size = -(-total // target)  # ceil division
    return [(start, min(start + size, total))
            for start in range(0, total, size)]


#: roots key a non-dict prefix state travels under through a checkpoint
_STATE_ROOT = "__prefix_state__"


class PrefixedBody:
    """A campaign body split at a shareable warm prefix.

    ``prefix(env, config)`` simulates the part many configurations have
    in common (handshake, view formation, steady state) and returns the
    rig state the rest of the run needs; ``continuation(env, state,
    config)`` runs the part that varies and returns the run's result.
    Called directly (``body(env, config)``) it executes prefix then
    continuation back to back -- that cold path is the byte-identity
    reference the grouped scheduler is checked against.

    ``key`` maps a configuration to its *prefix key*: configurations
    with equal keys promise byte-identical prefix behaviour (same
    simulated events, zero RNG draws -- the checkpoint reseed contract),
    so :meth:`Campaign.run` may capture the prefix once per group and
    fork it per configuration.  A config may override the derivation
    with an explicit ``"prefix_key"`` entry; a key of ``None`` opts the
    configuration out of grouping (it always runs cold).

    Instances are SC101-clean callable objects; with module-level
    ``prefix``/``continuation`` functions they pickle, so a split body
    works under parallel campaigns unchanged.
    """

    def __init__(self, prefix: Callable[[ExperimentEnv, Dict[str, Any]], Any],
                 continuation: Callable[[ExperimentEnv, Any,
                                         Dict[str, Any]], Any],
                 key: Optional[Callable[[Dict[str, Any]], Optional[str]]]
                 = None):
        self.prefix = prefix
        self.continuation = continuation
        self.key = key
        self.__module__ = getattr(continuation, "__module__",
                                  type(self).__module__)
        self.__qualname__ = (
            f"PrefixedBody({getattr(prefix, '__qualname__', repr(prefix))}"
            f"+{getattr(continuation, '__qualname__', repr(continuation))})")

    def __call__(self, env: ExperimentEnv, config: Dict[str, Any]) -> Any:
        state = self.prefix(env, config)
        return self.continuation(env, state, config)

    def prefix_key(self, config: Dict[str, Any]) -> Optional[str]:
        """The grouping key for one configuration (None: never group)."""
        if "prefix_key" in config:
            return config["prefix_key"]
        if self.key is None:
            return None
        return self.key(config)

    def cache_parts(self) -> Tuple[Callable, ...]:
        """The callables whose code determines results (for cache keys)."""
        return (self.prefix, self.continuation)

    def __repr__(self) -> str:
        return f"<{self.__qualname__}>"


def _prefix_digest(body: PrefixedBody, key: Any) -> str:
    """A static digest naming one (prefix code, prefix key) pair.

    Deterministic *before* any capture happens -- unlike a captured
    checkpoint's ``identity`` -- so cache pre-passes can mix it into
    :meth:`RunCache.key` and let fully-cached groups skip capture
    entirely, while a changed prefix function or key still misses.
    """
    digest = hashlib.sha256()
    fn = body.prefix
    digest.update(getattr(fn, "__module__", "").encode())
    digest.update(getattr(fn, "__qualname__", repr(fn)).encode())
    code = getattr(fn, "__code__", None)
    if code is not None:
        _hash_code(digest, code)
    digest.update(repr(key).encode())
    return digest.hexdigest()[:16]


def _prefix_groups(todo: List[int], keys: List[Optional[Any]]
                   ) -> List[Tuple[Optional[Any], List[int]]]:
    """Group sweep indices by prefix key, in first-appearance order.

    ``None``-keyed configurations stay singleton groups (they always run
    cold); every other key collects all its indices into one group even
    when they are scattered through the input, which is what lets one
    capture serve the whole group.
    """
    groups: List[Tuple[Optional[Any], List[int]]] = []
    by_key: Dict[Any, List[int]] = {}
    for index in todo:
        key = keys[index]
        if key is None:
            groups.append((None, [index]))
        elif key in by_key:
            by_key[key].append(index)
        else:
            members = [index]
            by_key[key] = members
            groups.append((key, members))
    return groups


def _prefix_chunks(todo: List[int], keys: List[Optional[Any]],
                   workers: int) -> List[List[int]]:
    """Worker chunks that keep prefix groups whole.

    Contiguous chunking (:func:`_chunk_ranges`) can land one group's
    configurations in two workers' chunks, paying the prefix capture
    twice.  This packs whole groups into chunks instead, under two
    budgets: small groups pack up to the fine-grained load-balancing
    size (:data:`_CHUNKS_PER_WORKER` chunks per worker), but a group is
    only *split* -- duplicating its capture -- when it alone exceeds a
    worker's fair share of the sweep.  Result assembly stays input-
    ordered regardless, because results land in slots by global index.
    """
    groups = _prefix_groups(todo, keys)
    target = min(len(todo), workers * _CHUNKS_PER_WORKER)
    pack_size = -(-len(todo) // target)  # ceil division
    split_size = -(-len(todo) // max(1, workers))
    chunks: List[List[int]] = []
    current: List[int] = []
    for _key, indices in groups:
        if len(indices) > split_size:
            if current:
                chunks.append(current)
                current = []
            chunks.extend(indices[start:start + split_size]
                          for start in range(0, len(indices), split_size))
            continue
        if current and len(current) + len(indices) > pack_size:
            chunks.append(current)
            current = []
        current.extend(indices)
    if current:
        chunks.append(current)
    return chunks


class Campaign:
    """Run an experiment body across a sweep of configurations.

    The body receives a fresh :class:`ExperimentEnv` plus the configuration
    dict and returns any result object.  Determinism note: each
    configuration derives its own seed from the campaign seed and the
    configuration repr, so adding a configuration does not perturb others.

    Because every configuration is an independent seeded simulation, the
    sweep is embarrassingly parallel: ``run(configs, workers=N)`` fans the
    configurations out over ``N`` worker processes (``workers="auto"``
    sizes the pool from the machine).  Serial and parallel execution share
    :func:`_execute_config`, so parallel results are identical to serial
    ones and are returned in input order.  Requirements for parallel runs:
    the body must be a module-level (picklable) callable, and its result
    values must be picklable too.  Each worker builds its own
    :class:`ExperimentEnv` -- in particular each process gets its own
    ``ScriptSync``, so cross-configuration coordination is impossible by
    construction (it would break determinism anyway).
    """

    def __init__(self, body: Callable[[ExperimentEnv, Dict[str, Any]], Any],
                 *, seed: int = 0, lint: str = "error"):
        if lint not in ("error", "off"):
            raise ValueError(f'Campaign lint mode must be "error" or '
                             f'"off", got {lint!r}')
        self._body = body
        self._seed = seed
        self._lint = lint

    def validate_scripts(self, configs: Iterable[Dict[str, Any]]):
        """Lint every tclish script found in the configs.

        Returns the list of failing
        :class:`~repro.core.tclish.lint.LintReport` objects (empty when
        everything is clean).  ``run`` calls this before starting any
        worker and raises :class:`CampaignScriptError` with *all*
        diagnostics, so one campaign launch surfaces every broken config
        at once instead of failing minutes in on the first.
        """
        from repro.core.tclish.lint import lint_source
        failing = []
        for index, config in enumerate(configs):
            for label, source, init in _config_scripts(config, index):
                report = lint_source(source, init_script=init,
                                     source_name=label)
                if not report.ok():
                    failing.append(report)
        return failing

    def precheck_body(self):
        """Statically vet the campaign body for determinism hazards.

        Runs the SC1xx pass (:func:`repro.staticcheck.precheck_body`)
        over the functions reachable from the body in its own module --
        closures scheduled as callbacks, wall-clock time, unseeded
        randomness -- and returns the failing
        :class:`~repro.core.tclish.lint.LintReport` objects (empty when
        clean, and for bodies whose source cannot be retrieved).
        ``run`` calls this alongside :meth:`validate_scripts` so a
        body that would poison determinism or checkpoint capture is
        refused before any worker starts.  A :class:`PrefixedBody` is
        vetted part by part (prefix and continuation), since the
        wrapper instance itself carries no retrievable source.
        """
        from repro.staticcheck import precheck_body
        parts = (self._body.cache_parts()
                 if isinstance(self._body, PrefixedBody) else (self._body,))
        failing = []
        for part in parts:
            report = precheck_body(part)
            if not report.ok():
                failing.append(report)
        return failing

    def _resolve_workers(self, workers: Union[int, str], jobs: int) -> int:
        if workers == "auto":
            cpus = os.cpu_count() or 1
            if cpus < 2 or jobs < _AUTO_SERIAL_THRESHOLD:
                return 1
            return min(cpus, jobs)
        if not isinstance(workers, int):
            raise ValueError(f'workers must be an int or "auto", '
                             f"got {workers!r}")
        return workers

    def run(self, configs: Iterable[Dict[str, Any]], *,
            workers: Union[int, str] = 1, telemetry: bool = True,
            scorecard: bool = False,
            cache: Optional[RunCache] = None,
            oracle: Optional[Callable[[], List[Any]]] = None,
            journal: Union[None, str, Path, Journal] = None,
            progress: Optional[Callable[[str], None]] = None,
            group: bool = True,
            prefix_pool: Optional[Any] = None,
            backend: str = "local",
            fabric_dir: Union[None, str, Path] = None,
            fabric_options: Optional[Dict[str, Any]] = None
            ) -> List[RunResult]:
        """Execute the body once per configuration.

        With ``workers > 1`` the configurations run chunked over a
        persistent process pool; results are byte-identical to serial
        execution and come back in input order.  ``workers="auto"`` picks
        ``os.cpu_count()`` workers, staying serial on single-CPU machines
        and for sweeps too small to amortize the pool.  The default stays
        serial so existing sweeps are untouched.  Configs carrying tclish
        scripts (see :data:`SCRIPT_KEYS`) are statically analyzed first;
        any error-level diagnostic aborts the whole campaign before any
        worker runs (``Campaign(..., lint="off")`` skips this).

        ``telemetry`` (default on) records per-configuration wall time,
        dispatched-event count, final virtual time and trace volume onto
        ``RunResult.telemetry``; ``telemetry=False`` restores the bare
        execution path.  ``scorecard=True`` additionally prints the
        campaign scorecard (:func:`repro.obs.telemetry.render_scorecard`)
        after the sweep completes.

        ``cache`` (a :class:`RunCache`, default off) returns stored
        results for configurations this body+seed has already computed
        and stores fresh ones; see the class docstring for the
        invalidation rules.

        ``oracle`` (default off) is an invariant-pack factory -- a
        zero-argument callable returning fresh
        :class:`~repro.oracle.Invariant` instances, e.g.
        :func:`repro.oracle.tcp_pack`.  When given, every configuration's
        trace is evaluated against a fresh pack *in the worker that ran
        it* (the trace is already hot there), and the resulting violation
        list lands on ``RunResult.violations``.  Parallel runs need the
        factory picklable, i.e. module-level -- the same rule as the body.

        ``journal`` (default off) attaches the campaign flight recorder
        (:class:`repro.obs.journal.Journal`, or a path one is opened at):
        the sweep's lifecycle -- start, lint preflight, every
        configuration's ``run_end`` with telemetry and oracle verdicts,
        worker errors, dispatch/merge phases, end -- is appended as
        crash-safe JSONL the parent process owns, so a killed sweep
        still reproduces its partial scorecard via ``repro report
        --campaign``.  ``progress`` is a line sink (e.g. ``print``) fed
        by the shared renderer as configurations complete.

        ``group`` (default on) enables **prefix-grouped scheduling**
        when the body is a :class:`PrefixedBody`: configurations
        sharing a prefix key have their warm prefix simulated once per
        worker process (a :class:`~repro.core.checkpoint.Checkpoint`
        capture) and are each run as a re-seeded fork of it -- byte-
        identical to the cold path, just without re-simulating the
        shared prefix per configuration.  ``group=False`` forces every
        configuration cold (the reference path benches and byte-
        identity tests compare against).  ``prefix_pool`` (a
        :class:`~repro.core.checkpoint.CheckpointPool`) carries
        captured prefixes across ``run`` calls in this process;
        omitted, each sweep uses a private pool.

        ``backend`` selects the execution fabric
        (:mod:`repro.core.fabric.backends`).  ``"local"`` -- the
        default -- is everything described above, unchanged.
        ``"sockets"`` runs the sweep as a coordinator plus worker
        *processes* over the fabric protocol: it requires
        ``fabric_dir`` (the campaign directory holding the sweep spec,
        the shared result store and per-shard journals) and owns
        caching and journaling itself, so ``cache=``/``journal=`` must
        stay unset and ``progress`` is not served live.  Re-running the
        same sweep against the same ``fabric_dir`` resumes it: only
        configurations the store does not hold yet execute.
        ``fabric_dir`` with the local backend joins the same resume
        protocol in-process (the store becomes the cache, the journal
        lands at the coordinator path), so serial runs and fabric runs
        share completed rows.  ``fabric_options`` passes coordinator
        tuning through (``ttl``, ``poll``, ``shard_size``, ...).
        """
        from repro.core.fabric.backends import (resolve_backend,
                                                run_sockets_campaign)
        resolve_backend(backend)
        config_list = [dict(config) for config in configs]
        if backend == "sockets":
            if fabric_dir is None:
                raise ValueError(
                    'backend="sockets" needs fabric_dir= (the campaign '
                    "directory shared by coordinator and workers)")
            if cache is not None or journal is not None:
                raise ValueError(
                    'backend="sockets" owns caching and journaling '
                    "(the result store and per-shard journals live in "
                    "fabric_dir); pass fabric_dir= only")
            results = run_sockets_campaign(
                self, config_list, fabric_dir=fabric_dir,
                workers=workers, telemetry=telemetry, oracle=oracle,
                group=group, fabric_options=fabric_options)
            if scorecard:
                print(render_scorecard(results))
            return results
        if fabric_dir is not None:
            from repro.core.fabric.store import ResultStore
            fabric_path = Path(fabric_dir)
            if cache is None:
                cache = ResultStore(fabric_path / "store")
            if journal is None:
                journal = fabric_path / "journals" / "coordinator.jsonl"
        journal_obj, journal_owned = Journal.ensure(journal)
        try:
            return self._run_journaled(
                config_list, journal_obj, workers=workers,
                telemetry=telemetry, scorecard=scorecard, cache=cache,
                oracle=oracle, progress=progress, group=group,
                prefix_pool=prefix_pool)
        finally:
            if journal_owned:
                journal_obj.close()

    def _run_journaled(self, config_list: List[Dict[str, Any]],
                       journal: Optional[Journal], *,
                       workers: Union[int, str], telemetry: bool,
                       scorecard: bool, cache: Optional[RunCache],
                       oracle: Optional[Callable],
                       progress: Optional[Callable[[str], None]],
                       group: bool = True,
                       prefix_pool: Optional[Any] = None
                       ) -> List[RunResult]:
        if journal is not None:
            journal.start("campaign", seed=self._seed,
                          configs=len(config_list), workers=str(workers),
                          telemetry=telemetry, lint=self._lint,
                          oracle=getattr(oracle, "__qualname__", None),
                          body=getattr(self._body, "__qualname__",
                                       repr(self._body)))
        renderer = (ProgressRenderer("campaign", total=len(config_list),
                                     unit="configs", sink=progress)
                    if progress is not None else None)
        if self._lint != "off":
            if journal is not None:
                with journal.phase("preflight"):
                    failing = self.precheck_body()
                    failing += self.validate_scripts(config_list)
                    journal.record(K.CAMPAIGN_PREFLIGHT,
                                   ok=not failing, failing=len(failing))
            else:
                failing = self.precheck_body()
                failing += self.validate_scripts(config_list)
            if failing:
                if journal is not None:
                    journal.record(K.CAMPAIGN_END, status="preflight_failed",
                                   executed=0, cached=0)
                raise CampaignScriptError(failing)
        elif journal is not None:
            journal.record(K.CAMPAIGN_PREFLIGHT, ok=True, skipped=True)

        split = isinstance(self._body, PrefixedBody)
        prefix_keys: List[Optional[Any]] = (
            [self._body.prefix_key(config) for config in config_list]
            if split else [None] * len(config_list))
        grouped = (group and split
                   and any(key is not None for key in prefix_keys))
        stats = {"captures": 0, "forks": 0, "fallbacks": 0}

        slots: List[Optional[RunResult]] = [None] * len(config_list)
        keys: List[Optional[str]] = [None] * len(config_list)
        todo: List[int] = []
        if cache is not None:
            for index, config in enumerate(config_list):
                # mix the static prefix digest in for split bodies so a
                # cached hit never needs a capture, yet a changed
                # prefix function or key can never alias a stale result
                key = cache.key(
                    self._body, self._seed, config,
                    telemetry=telemetry, oracle=oracle,
                    checkpoint=(_prefix_digest(self._body,
                                               prefix_keys[index])
                                if split and prefix_keys[index] is not None
                                else None))
                keys[index] = key
                cached = cache.get(key)
                if cached is not None:
                    slots[index] = cached
                    if journal is not None:
                        journal.record(K.CAMPAIGN_RUN_END,
                                       **_run_end_payload(index, cached,
                                                          cached_hit=True))
                else:
                    todo.append(index)
            done = len(config_list) - len(todo)
            if renderer is not None and done:
                renderer.update(done, cached=done)
        else:
            todo = list(range(len(config_list)))

        pool_size = self._resolve_workers(workers, len(todo))
        failed: Optional[BaseException] = None
        try:
            if todo:
                if pool_size <= 1 or len(todo) <= 1:
                    if grouped:
                        self._run_serial_grouped(
                            todo, config_list, slots, journal, renderer,
                            telemetry=telemetry, oracle=oracle,
                            prefix_keys=prefix_keys, pool=prefix_pool,
                            stats=stats)
                    else:
                        self._run_serial(todo, config_list, slots, journal,
                                         renderer, telemetry=telemetry,
                                         oracle=oracle)
                else:
                    self._run_parallel(
                        todo, config_list, slots, journal, renderer,
                        pool_size=pool_size, telemetry=telemetry,
                        oracle=oracle,
                        prefix_keys=prefix_keys if grouped else None,
                        stats=stats)
                if cache is not None:
                    for index in todo:
                        if slots[index] is not None:
                            cache.put(keys[index], slots[index])
        except BaseException as err:
            failed = err
            raise
        finally:
            if journal is not None:
                executed = sum(1 for i in todo if slots[i] is not None)
                payload: Dict[str, Any] = {
                    "status": "failed" if failed is not None else "ok",
                    "executed": executed,
                    "cached": len(config_list) - len(todo),
                    "findings": sum(1 for r in slots
                                    if r is not None and not r.ok()),
                }
                if grouped:
                    payload["prefix_captures"] = stats["captures"]
                    payload["prefix_forks"] = stats["forks"]
                    payload["prefix_fallbacks"] = stats["fallbacks"]
                journal.record(K.CAMPAIGN_END, **payload)

        results = [result for result in slots if result is not None]
        if scorecard:
            print(render_scorecard(results))
        return results

    def _run_serial(self, todo: List[int],
                    config_list: List[Dict[str, Any]],
                    slots: List[Optional[RunResult]],
                    journal: Optional[Journal],
                    renderer: Optional[ProgressRenderer], *,
                    telemetry: bool, oracle: Optional[Callable]) -> None:
        done = len(config_list) - len(todo)
        with _maybe_phase(journal, "dispatch"):
            for index in todo:
                if journal is not None:
                    journal.record(K.CAMPAIGN_RUN_START, index=index,
                                   label=_config_label(config_list[index]))
                try:
                    slots[index] = _execute_config(
                        self._body, self._seed, config_list[index],
                        telemetry=telemetry, oracle=oracle)
                except Exception as err:
                    if journal is not None:
                        journal.record(K.CAMPAIGN_WORKER_ERROR, index=index,
                                       error=repr(err))
                    raise
                if journal is not None:
                    journal.record(K.CAMPAIGN_RUN_END,
                                   **_run_end_payload(index, slots[index]))
                done += 1
                if renderer is not None:
                    renderer.update(done, findings=sum(
                        1 for r in slots if r is not None and not r.ok())
                        or None)

    def _run_serial_grouped(self, todo: List[int],
                            config_list: List[Dict[str, Any]],
                            slots: List[Optional[RunResult]],
                            journal: Optional[Journal],
                            renderer: Optional[ProgressRenderer], *,
                            telemetry: bool, oracle: Optional[Callable],
                            prefix_keys: List[Optional[Any]],
                            pool: Optional[Any],
                            stats: Dict[str, int]) -> None:
        """Serial sweep with one prefix capture per group, one fork per run.

        Execution happens group by group (results still land in input
        order via ``slots``).  A group whose prefix cannot be captured
        or re-seeded (:class:`~repro.core.checkpoint.CheckpointError`:
        the prefix drew from an RNG stream, or holds an uncopyable
        callback) falls back to the cold path for every member -- the
        sweep's results never depend on whether sharing worked, only
        its speed does.
        """
        from repro.core.checkpoint import CheckpointError, CheckpointPool
        if pool is None:
            pool = CheckpointPool(max_items=4)
        body: PrefixedBody = self._body
        done = len(config_list) - len(todo)
        with _maybe_phase(journal, "dispatch"):
            for key, indices in _prefix_groups(todo, prefix_keys):
                checkpoint = None
                if key is not None:
                    pool_key = _prefix_digest(body, key)
                    checkpoint = pool.get(pool_key)
                    if checkpoint is None and len(indices) > 1:
                        try:
                            checkpoint = _capture_prefix(
                                body, config_list[indices[0]], key)
                        except CheckpointError:
                            stats["fallbacks"] += len(indices)
                        else:
                            pool.put(pool_key, checkpoint)
                            stats["captures"] += 1
                            if journal is not None:
                                journal.record(
                                    K.CAMPAIGN_CHECKPOINT_CAPTURE,
                                    **_capture_payload(key, checkpoint,
                                                       len(indices)))
                for index in indices:
                    if journal is not None:
                        journal.record(
                            K.CAMPAIGN_RUN_START, index=index,
                            label=_config_label(config_list[index]))
                    try:
                        forked = checkpoint is not None
                        if forked:
                            try:
                                slots[index] = _execute_forked(
                                    body, self._seed, config_list[index],
                                    checkpoint, telemetry=telemetry,
                                    oracle=oracle)
                                stats["forks"] += 1
                            except CheckpointError:
                                # prefix is not seed-portable: run this
                                # and the rest of the group cold
                                checkpoint = None
                                forked = False
                                stats["fallbacks"] += 1
                        if not forked:
                            slots[index] = _execute_config(
                                body, self._seed, config_list[index],
                                telemetry=telemetry, oracle=oracle)
                    except Exception as err:
                        if journal is not None:
                            journal.record(K.CAMPAIGN_WORKER_ERROR,
                                           index=index, error=repr(err))
                        raise
                    if journal is not None:
                        journal.record(
                            K.CAMPAIGN_RUN_END,
                            **_run_end_payload(index, slots[index],
                                               prefix=key, forked=forked))
                    done += 1
                    if renderer is not None:
                        renderer.update(done, findings=sum(
                            1 for r in slots
                            if r is not None and not r.ok()) or None)

    def _run_parallel(self, todo: List[int],
                      config_list: List[Dict[str, Any]],
                      slots: List[Optional[RunResult]],
                      journal: Optional[Journal],
                      renderer: Optional[ProgressRenderer], *,
                      pool_size: int, telemetry: bool,
                      oracle: Optional[Callable],
                      prefix_keys: Optional[List[Optional[Any]]] = None,
                      stats: Optional[Dict[str, int]] = None) -> None:
        try:
            pickle.dumps((self._body, oracle))
        except Exception as err:
            raise TypeError(
                "Campaign.run(workers>1) needs a picklable "
                "(module-level) body and oracle, got "
                f"{self._body!r} / {oracle!r}: {err}") from err
        pool = _get_pool(min(pool_size, len(todo)))
        if prefix_keys is not None:
            chunk_indices = _prefix_chunks(todo, prefix_keys, pool_size)
        else:
            chunk_indices = [todo[start:stop]
                             for start, stop in _chunk_ranges(len(todo),
                                                              pool_size)]
        with _maybe_phase(journal, "dispatch"):
            futures = []
            for indices in chunk_indices:
                futures.append((indices, pool.submit(
                    _execute_chunk, self._body, self._seed,
                    [config_list[i] for i in indices], indices,
                    telemetry=telemetry, oracle=oracle,
                    prefix_keys=([prefix_keys[i] for i in indices]
                                 if prefix_keys is not None else None))))
        done = len(config_list) - len(todo)
        with _maybe_phase(journal, "merge"):
            for indices, future in futures:
                try:
                    chunk_results, chunk_stats = future.result()
                except Exception as err:
                    if journal is not None:
                        journal.record(K.CAMPAIGN_WORKER_ERROR,
                                       indices=indices, error=repr(err))
                    raise
                if stats is not None:
                    for capture in chunk_stats.get("captured", ()):
                        stats["captures"] += 1
                        if journal is not None:
                            journal.record(K.CAMPAIGN_CHECKPOINT_CAPTURE,
                                           **capture)
                    stats["forks"] += chunk_stats.get("forks", 0)
                    stats["fallbacks"] += chunk_stats.get("fallbacks", 0)
                forked_flags = chunk_stats.get("forked", [])
                for position, (index, run_result) in enumerate(
                        zip(indices, chunk_results)):
                    slots[index] = run_result
                    if journal is not None:
                        journal.record(K.CAMPAIGN_RUN_END,
                                       **_run_end_payload(
                                           index, run_result,
                                           prefix=(prefix_keys[index]
                                                   if prefix_keys is not None
                                                   else None),
                                           forked=(forked_flags[position]
                                                   if position
                                                   < len(forked_flags)
                                                   else False)))
                done += len(indices)
                if renderer is not None:
                    renderer.update(done, findings=sum(
                        1 for r in slots if r is not None and not r.ok())
                        or None)


def _maybe_phase(journal: Optional[Journal], name: str, **payload: Any):
    """``journal.phase(name)`` when journaling, a no-op span otherwise."""
    if journal is None:
        return nullcontext()
    return journal.phase(name, **payload)


def _run_end_payload(index: int, result: RunResult, *,
                     cached_hit: bool = False,
                     prefix: Optional[Any] = None,
                     forked: bool = False) -> Dict[str, Any]:
    """The ``campaign.run_end`` event payload for one result.

    Carries every deterministic scorecard input -- label, oracle verdict
    codes, telemetry -- so a journal replay can rebuild the exact
    scorecard the live sweep printed (or would have printed when it was
    killed first).  Grouped runs additionally carry their prefix key
    and whether they were served by a fork, so ``repro report
    --campaign`` can show amortization per prefix group.
    """
    payload: Dict[str, Any] = {
        "index": index,
        "label": _config_label(result.config),
        "cached": cached_hit,
        "ok": result.ok(),
    }
    if prefix is not None:
        payload["prefix"] = str(prefix)
        payload["forked"] = forked
    if result.violations is not None:
        payload["violations"] = len(result.violations)
        payload["codes"] = sorted({v.code for v in result.violations})
    if result.telemetry is not None:
        payload["telemetry"] = result.telemetry.as_dict()
    return payload


def _capture_payload(key: Any, checkpoint: Any,
                     group_size: int) -> Dict[str, Any]:
    """The ``campaign.checkpoint_capture`` payload for one prefix group."""
    return {"prefix": str(key), "label": checkpoint.label,
            "identity": checkpoint.identity, "time": checkpoint.time,
            "entries": checkpoint.position, "configs": group_size}


def _capture_prefix(body: PrefixedBody, config: Dict[str, Any],
                    key: Any) -> Any:
    """Simulate one group's warm prefix and capture it as a checkpoint.

    The capture env is built at seed 0; forks re-seed to each member's
    run seed, which the checkpoint layer only permits for zero-draw
    prefixes (the grouping contract).  Raises ``CheckpointError`` when
    the world cannot be captured soundly -- callers fall back cold.
    """
    from repro.core.checkpoint import Checkpoint
    env = make_env(seed=0)
    state = body.prefix(env, dict(config))
    roots = state if isinstance(state, dict) else {_STATE_ROOT: state}
    return Checkpoint.capture(env, roots, label=f"campaign/{key}")


def _execute_forked(body: PrefixedBody, seed: int, config: Dict[str, Any],
                    checkpoint: Any, *, telemetry: bool = True,
                    oracle: Optional[Callable] = None) -> RunResult:
    """Run one configuration as a re-seeded fork of its prefix checkpoint.

    Derives the run seed exactly as :func:`_execute_config` does, so the
    forked run is byte-identical to the cold one; telemetry's event and
    trace counts carry the prefix's share too (the forked scheduler and
    recorder resume from the captured counters, matching a cold run's
    totals), only ``wall_s`` reflects the saved simulation.
    """
    run_seed = derive_seed(seed, repr(sorted(config.items())))
    forked = checkpoint.fork(seed=run_seed)
    env = forked.env
    state = (forked.roots[_STATE_ROOT] if set(forked.roots) == {_STATE_ROOT}
             else forked.roots)
    if not telemetry:
        result = body.continuation(env, state, dict(config))
        return RunResult(config=dict(config), result=result, trace=env.trace,
                         violations=_oracle_violations(env.trace, oracle))
    start = perf_counter()
    result = body.continuation(env, state, dict(config))
    wall_s = perf_counter() - start
    run_telemetry = RunTelemetry(
        wall_s=wall_s, events=env.scheduler.dispatched_count,
        virtual_s=env.scheduler.now, trace_entries=len(env.trace))
    return RunResult(config=dict(config), result=result, trace=env.trace,
                     telemetry=run_telemetry,
                     violations=_oracle_violations(env.trace, oracle))


def _execute_config(body: Callable[[ExperimentEnv, Dict[str, Any]], Any],
                    seed: int, config: Dict[str, Any], *,
                    telemetry: bool = True,
                    oracle: Optional[Callable] = None) -> RunResult:
    """Run one configuration: the shared serial/parallel execution path."""
    run_seed = derive_seed(seed, repr(sorted(config.items())))
    env = make_env(seed=run_seed)
    if not telemetry:
        result = body(env, dict(config))
        return RunResult(config=dict(config), result=result, trace=env.trace,
                         violations=_oracle_violations(env.trace, oracle))
    start = perf_counter()
    result = body(env, dict(config))
    wall_s = perf_counter() - start
    run_telemetry = RunTelemetry(
        wall_s=wall_s, events=env.scheduler.dispatched_count,
        virtual_s=env.scheduler.now, trace_entries=len(env.trace))
    return RunResult(config=dict(config), result=result, trace=env.trace,
                     telemetry=run_telemetry,
                     violations=_oracle_violations(env.trace, oracle))


def _oracle_violations(trace: TraceRecorder,
                       oracle: Optional[Callable]) -> Optional[List[Any]]:
    """Evaluate a fresh pack from ``oracle`` over ``trace`` (None: skip)."""
    if oracle is None:
        return None
    from repro.oracle import evaluate
    return evaluate(trace, oracle()).violations


def _execute_chunk(body: Callable[[ExperimentEnv, Dict[str, Any]], Any],
                   seed: int, configs: List[Dict[str, Any]],
                   indices: List[int], *,
                   telemetry: bool = True,
                   oracle: Optional[Callable] = None,
                   prefix_keys: Optional[List[Optional[Any]]] = None
                   ) -> Tuple[List[RunResult], Dict[str, Any]]:
    """Worker-side loop over one chunk of configurations.

    With ``prefix_keys`` given (prefix-grouped dispatch), contiguous
    same-key runs share one locally captured prefix checkpoint; the
    returned stats dict reports each capture (for the parent's journal)
    plus fork/fallback counts.  Only the current group's checkpoint is
    kept alive, so worker memory stays flat however long the chunk is.

    A failure is annotated with the *global* sweep index before it
    propagates (exception notes survive pickling back to the parent), so
    a bare pool traceback still names which sweep point died.
    """
    stats: Dict[str, Any] = {"captured": [], "forks": 0, "fallbacks": 0,
                             "forked": []}
    results: List[RunResult] = []
    checkpoint = None
    current_key: Optional[Any] = None
    for position, (index, config) in enumerate(zip(indices, configs)):
        key = prefix_keys[position] if prefix_keys is not None else None
        try:
            if key is None:
                checkpoint, current_key = None, None
                results.append(_execute_config(body, seed, config,
                                               telemetry=telemetry,
                                               oracle=oracle))
                stats["forked"].append(False)
                continue
            if key != current_key:
                from repro.core.checkpoint import CheckpointError
                current_key = key
                checkpoint = None
                group_size = sum(1 for k in prefix_keys[position:]
                                 if k == key)
                if group_size > 1:
                    try:
                        checkpoint = _capture_prefix(body, config, key)
                    except CheckpointError:
                        checkpoint = None
                    else:
                        stats["captured"].append(
                            _capture_payload(key, checkpoint, group_size))
            if checkpoint is not None:
                from repro.core.checkpoint import CheckpointError
                try:
                    results.append(_execute_forked(
                        body, seed, config, checkpoint,
                        telemetry=telemetry, oracle=oracle))
                    stats["forks"] += 1
                    stats["forked"].append(True)
                    continue
                except CheckpointError:
                    checkpoint = None
                    stats["fallbacks"] += 1
            results.append(_execute_config(body, seed, config,
                                           telemetry=telemetry,
                                           oracle=oracle))
            stats["forked"].append(False)
        except Exception as err:
            err.add_note(
                f"campaign config [{index}] failed: {config!r}")
            raise
    return results, stats
