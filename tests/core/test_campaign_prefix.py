"""Prefix-grouped campaign scheduling is byte-identical to cold runs.

A :class:`~repro.core.orchestrator.PrefixedBody` splits a campaign body
at its shareable warm prefix; ``Campaign.run`` (``group=True``, the
default) captures that prefix once per group and forks it per
configuration.  Everything observable -- results, traces, oracle
verdicts, telemetry's deterministic fields -- must be exactly what the
cold path produces; only wall time may differ.
"""

import pytest

from repro.core.checkpoint import CheckpointPool
from repro.core.orchestrator import (Campaign, PrefixedBody, RunCache,
                                     _prefix_chunks, _prefix_digest,
                                     _prefix_groups)
from repro.netsim import kinds as K
from repro.obs.journal import replay_journal


class _Pulse:
    """Self-rescheduling callable class (SC101-clean, picklable)."""

    def __init__(self, env, period):
        self.env = env
        self.period = period
        self.fired = 0

    def __call__(self):
        self.fired += 1
        self.env.trace.record("pulse", n=self.fired)
        self.env.scheduler.schedule(self.period, self)


def warm_prefix(env, config):
    """Zero-draw warmup shared by every config in a group."""
    pulse = _Pulse(env, period=float(config["grp"][-1]) * 0.1 + 0.5)
    env.scheduler.schedule(0.5, pulse)
    env.run_until(5.0)
    return {"pulse": pulse}


def noisy_continue(env, state, config):
    """The varying tail: seeded draws, so seed identity is observable."""
    dist = env.dist("tail", config["grp"])
    acc = sum(dist.dst_uniform(0.0, 1.0) for _ in range(5))
    env.run_until(5.0 + config["extra"])
    env.trace.record("tail.done", fired=state["pulse"].fired)
    return {"fired": state["pulse"].fired, "acc": round(acc, 9)}


def group_key(config):
    return f"warm-{config['grp']}"


def drawing_prefix(env, config):
    """A prefix that consumes RNG: violates the reseed contract."""
    env.dist("early", config["grp"]).dst_uniform(0.0, 1.0)
    return warm_prefix(env, config)


split_body = PrefixedBody(warm_prefix, noisy_continue, key=group_key)
drawing_body = PrefixedBody(drawing_prefix, noisy_continue, key=group_key)


def _configs(groups=("g1", "g2"), per_group=3):
    return [{"grp": grp, "extra": float(n)}
            for grp in groups for n in range(per_group)]


def _stable(results):
    """Everything a run produced except wall time."""
    return [(r.config, r.result, list(r.trace),
             None if r.telemetry is None else
             (r.telemetry.events, r.telemetry.virtual_s,
              r.telemetry.trace_entries))
            for r in results]


# ----------------------------------------------------------------------
# PrefixedBody semantics
# ----------------------------------------------------------------------

class TestPrefixedBody:
    def test_cold_call_is_prefix_then_continuation(self):
        from repro.core.orchestrator import make_env
        env = make_env(seed=3)
        direct = split_body(env, {"grp": "g1", "extra": 1.0})
        env2 = make_env(seed=3)
        state = warm_prefix(env2, {"grp": "g1", "extra": 1.0})
        composed = noisy_continue(env2, state, {"grp": "g1", "extra": 1.0})
        assert direct == composed
        assert list(env.trace) == list(env2.trace)

    def test_prefix_key_derivation_and_override(self):
        assert split_body.prefix_key({"grp": "g1"}) == "warm-g1"
        assert split_body.prefix_key(
            {"grp": "g1", "prefix_key": "forced"}) == "forced"
        assert split_body.prefix_key(
            {"grp": "g1", "prefix_key": None}) is None
        keyless = PrefixedBody(warm_prefix, noisy_continue)
        assert keyless.prefix_key({"grp": "g1"}) is None

    def test_digest_names_prefix_code_and_key(self):
        base = _prefix_digest(split_body, "warm-g1")
        assert _prefix_digest(split_body, "warm-g1") == base
        assert _prefix_digest(split_body, "warm-g2") != base
        assert _prefix_digest(drawing_body, "warm-g1") != base


# ----------------------------------------------------------------------
# grouping and chunking
# ----------------------------------------------------------------------

class TestGrouping:
    def test_groups_collect_scattered_keys_in_first_appearance_order(self):
        keys = ["a", "b", "a", None, "b", "a"]
        groups = _prefix_groups(list(range(6)), keys)
        assert groups == [("a", [0, 2, 5]), ("b", [1, 4]), (None, [3])]

    def test_none_keys_stay_singletons(self):
        groups = _prefix_groups([0, 1], [None, None])
        assert groups == [(None, [0]), (None, [1])]

    def test_chunks_keep_small_groups_whole(self):
        keys = ["a"] * 4 + ["b"] * 4 + ["c"] * 4
        chunks = _prefix_chunks(list(range(12)), keys, workers=3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]

    def test_oversized_group_splits_at_fair_share(self):
        keys = ["a"] * 10 + ["b"] * 2
        chunks = _prefix_chunks(list(range(12)), keys, workers=3)
        # "a" alone exceeds one worker's fair share (4): split; "b" whole
        assert [len(c) for c in chunks] == [4, 4, 2, 2]
        assert sorted(i for c in chunks for i in c) == list(range(12))

    def test_chunks_cover_todo_exactly(self):
        keys = ["a", None, "b", "a", None, "b", "c"]
        todo = list(range(7))
        chunks = _prefix_chunks(todo, keys, workers=2)
        assert sorted(i for c in chunks for i in c) == todo


# ----------------------------------------------------------------------
# grouped execution == cold execution
# ----------------------------------------------------------------------

class TestGroupedByteIdentity:
    def test_serial_grouped_matches_cold(self):
        campaign = Campaign(split_body, seed=11)
        configs = _configs()
        cold = campaign.run(configs, group=False)
        grouped = campaign.run(configs)
        assert _stable(grouped) == _stable(cold)

    def test_parallel_grouped_matches_cold(self):
        campaign = Campaign(split_body, seed=11)
        configs = _configs(groups=("g1", "g2", "g3"), per_group=4)
        cold = campaign.run(configs, group=False)
        grouped = campaign.run(configs, workers=2)
        assert _stable(grouped) == _stable(cold)

    def test_drawing_prefix_falls_back_cold_with_same_results(self, tmp_path):
        campaign = Campaign(drawing_body, seed=11)
        configs = _configs()
        cold = campaign.run(configs, group=False)
        path = tmp_path / "j.jsonl"
        grouped = campaign.run(configs, journal=path)
        assert _stable(grouped) == _stable(cold)
        end = replay_journal(path).last(K.CAMPAIGN_END)
        assert end.get("prefix_forks") == 0
        assert end.get("prefix_fallbacks") > 0

    def test_explicit_prefix_key_none_opts_out(self, tmp_path):
        campaign = Campaign(split_body, seed=11)
        configs = [dict(c, prefix_key=None) for c in _configs()]
        path = tmp_path / "j.jsonl"
        results = campaign.run(configs, journal=path)
        assert _stable(results) == _stable(campaign.run(configs,
                                                        group=False))
        replay = replay_journal(path)
        assert not replay.of(K.CAMPAIGN_CHECKPOINT_CAPTURE)
        assert replay.last(K.CAMPAIGN_END).get("prefix_captures") is None


# ----------------------------------------------------------------------
# capture amortization: journal, pool, cache
# ----------------------------------------------------------------------

class TestAmortization:
    def test_one_capture_per_group_serial(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Campaign(split_body, seed=11).run(_configs(), journal=path)
        replay = replay_journal(path)
        captures = replay.of(K.CAMPAIGN_CHECKPOINT_CAPTURE)
        assert [c.get("prefix") for c in captures] == ["warm-g1", "warm-g2"]
        assert all(c.get("configs") == 3 for c in captures)
        ends = replay.of(K.CAMPAIGN_RUN_END)
        assert all(e.get("forked") for e in ends)
        end = replay.last(K.CAMPAIGN_END)
        assert end.get("prefix_captures") == 2
        assert end.get("prefix_forks") == 6
        assert end.get("prefix_fallbacks") == 0

    def test_one_capture_per_group_parallel(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Campaign(split_body, seed=11).run(
            _configs(groups=("g1", "g2", "g3"), per_group=4),
            workers=2, journal=path)
        replay = replay_journal(path)
        captures = replay.of(K.CAMPAIGN_CHECKPOINT_CAPTURE)
        assert sorted(c.get("prefix") for c in captures) == [
            "warm-g1", "warm-g2", "warm-g3"]
        assert replay.last(K.CAMPAIGN_END).get("prefix_forks") == 12

    def test_singleton_group_runs_cold(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Campaign(split_body, seed=11).run(
            [{"grp": "g1", "extra": 0.0}], journal=path)
        replay = replay_journal(path)
        assert not replay.of(K.CAMPAIGN_CHECKPOINT_CAPTURE)
        assert replay.last(K.CAMPAIGN_END).get("prefix_captures") == 0

    def test_shared_pool_reuses_captures_across_sweeps(self, tmp_path):
        pool = CheckpointPool(max_items=4)
        campaign = Campaign(split_body, seed=11)
        campaign.run(_configs(), prefix_pool=pool)
        assert len(pool) == 2
        path = tmp_path / "second.jsonl"
        second = campaign.run(_configs(), prefix_pool=pool, journal=path)
        replay = replay_journal(path)
        assert not replay.of(K.CAMPAIGN_CHECKPOINT_CAPTURE)
        assert replay.last(K.CAMPAIGN_END).get("prefix_forks") == 6
        assert _stable(second) == _stable(campaign.run(_configs(),
                                                       group=False))

    def test_pooled_prefix_serves_singleton_groups(self, tmp_path):
        pool = CheckpointPool(max_items=4)
        campaign = Campaign(split_body, seed=11)
        campaign.run(_configs(groups=("g1",)), prefix_pool=pool)
        path = tmp_path / "j.jsonl"
        campaign.run([{"grp": "g1", "extra": 9.0}], prefix_pool=pool,
                     journal=path)
        replay = replay_journal(path)
        assert not replay.of(K.CAMPAIGN_CHECKPOINT_CAPTURE)
        assert replay.last(K.CAMPAIGN_END).get("prefix_forks") == 1

    def test_cached_sweep_skips_capture_entirely(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        campaign = Campaign(split_body, seed=11)
        configs = _configs()
        campaign.run(configs, cache=cache)
        path = tmp_path / "j.jsonl"
        second = campaign.run(configs, cache=cache, journal=path)
        assert cache.hits == len(configs)
        replay = replay_journal(path)
        assert not replay.of(K.CAMPAIGN_CHECKPOINT_CAPTURE)
        assert all(row.get("cached")
                   for row in replay.of(K.CAMPAIGN_RUN_END))
        assert [r.result for r in second] == [
            r.result for r in campaign.run(configs, group=False)]

    def test_cache_keys_are_group_flag_independent(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        campaign = Campaign(split_body, seed=11)
        configs = _configs(per_group=2)
        campaign.run(configs, cache=cache, group=False)
        campaign.run(configs, cache=cache)  # grouped: must hit
        assert cache.hits == len(configs)

    def test_changed_prefix_function_misses_cache(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        configs = _configs(per_group=2)
        Campaign(split_body, seed=11).run(configs, cache=cache)
        Campaign(drawing_body, seed=11).run(configs, cache=cache)
        assert cache.hits == 0


class TestOracleAndErrors:
    def test_grouped_oracle_verdicts_match_cold(self):
        from repro.oracle import Invariant

        class Odd(Invariant):
            code = "TEST-ODD"

            def __init__(self):
                self.count = 0

            def observe(self, entry):
                if entry.kind == "pulse":
                    self.count += 1

            def finish(self):
                if self.count % 2:
                    self.fail("odd pulse count", t=0.0)

        # module-level factory not needed: serial path only
        def pack():
            return [Odd()]

        campaign = Campaign(split_body, seed=11)
        configs = _configs()
        cold = campaign.run(configs, group=False, oracle=pack)
        grouped = campaign.run(configs, oracle=pack)
        assert ([[v.code for v in (r.violations or [])] for r in grouped]
                == [[v.code for v in (r.violations or [])] for r in cold])

    def test_continuation_error_names_global_index(self, tmp_path):
        body = PrefixedBody(warm_prefix, exploding_continue, key=group_key)
        campaign = Campaign(body, seed=11)
        with pytest.raises(RuntimeError, match="boom"):
            campaign.run(_configs(), journal=tmp_path / "j.jsonl")
        replay = replay_journal(tmp_path / "j.jsonl")
        assert replay.of(K.CAMPAIGN_WORKER_ERROR)
        assert replay.last(K.CAMPAIGN_END).get("status") == "failed"


def exploding_continue(env, state, config):
    if config["extra"] == 1.0:
        raise RuntimeError("boom")
    return noisy_continue(env, state, config)
