"""Shape detectors.

The reproduction's benchmarks assert *shapes* -- who backs off
exponentially, where intervals plateau, who probes forever -- rather than
absolute timings, because the substrate is a simulator rather than the
authors' testbed.  These helpers define those shapes precisely so every
bench and test uses the same notion.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def is_exponential_backoff(intervals: Sequence[float], *,
                           ratio_low: float = 1.5, ratio_high: float = 3.0,
                           cap: Optional[float] = None,
                           floor: Optional[float] = None,
                           tolerance: float = 0.15) -> bool:
    """True if successive intervals roughly double until an optional cap.

    Each ratio of successive intervals must fall within
    ``[ratio_low, ratio_high]`` (doubling with timer-tick slop), with two
    clamping exceptions:

    - once the series reaches ``cap`` (within ``tolerance`` relative), it
      may stay flat at the cap -- including the first, partial step onto
      the cap (48 -> 64 in the BSD series);
    - while the series sits at ``floor`` it may stay flat there (the
      Solaris minimum-RTO floor produces 0.33, 0.33, 0.66, ...).
    """
    if len(intervals) < 2:
        return True
    for prev, cur in zip(intervals, intervals[1:]):
        if prev <= 0:
            return False
        if cap is not None and cur >= prev * (1 - tolerance) and \
                abs(cur - cap) <= tolerance * cap:
            continue  # stepping onto, or sitting at, the cap
        if floor is not None and \
                abs(prev - floor) <= tolerance * floor and \
                abs(cur - floor) <= tolerance * floor:
            continue  # flat at the minimum-RTO floor
        ratio = cur / prev
        if not ratio_low <= ratio <= ratio_high:
            return False
    return True


def plateau_value(intervals: Sequence[float], *,
                  tolerance: float = 0.1,
                  min_run: int = 2) -> Optional[float]:
    """The value the tail of the series flattens at, or None.

    A plateau is ``min_run`` or more trailing intervals within
    ``tolerance`` (relative) of their mean.
    """
    if len(intervals) < min_run:
        return None
    tail = list(intervals[-min_run:])
    mean = sum(tail) / len(tail)
    if mean <= 0:
        return None
    if all(abs(v - mean) <= tolerance * mean for v in tail):
        return mean
    return None


def intervals_plateau(intervals: Sequence[float], at: float, *,
                      tolerance: float = 0.1, min_run: int = 2) -> bool:
    """True if the series flattens at roughly ``at``."""
    value = plateau_value(intervals, tolerance=tolerance, min_run=min_run)
    return value is not None and abs(value - at) <= tolerance * at


def is_roughly_constant(intervals: Sequence[float], *,
                        tolerance: float = 0.1) -> bool:
    """True if every interval is within tolerance of the series mean."""
    if not intervals:
        return True
    mean = sum(intervals) / len(intervals)
    if mean <= 0:
        return False
    return all(abs(v - mean) <= tolerance * mean for v in intervals)


def first_interval(times: Sequence[float]) -> Optional[float]:
    """Gap between the first two timestamps, or None."""
    if len(times) < 2:
        return None
    return times[1] - times[0]


def intervals_of(times: Sequence[float]) -> List[float]:
    """Successive differences of a timestamp series."""
    return [b - a for a, b in zip(times, times[1:])]
