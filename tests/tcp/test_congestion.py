"""Unit and behaviour tests for Tahoe congestion control."""

import dataclasses


from repro.tcp.congestion import TahoeController
from repro.tcp.vendors import SUNOS_413, XKERNEL
from tests.tcp.conftest import ConnPair

CC = dataclasses.replace(SUNOS_413, name="SunOS/cc",
                         congestion_control=True, recv_buffer=16384)
CC_PEER = dataclasses.replace(XKERNEL, name="xk/big-buf",
                              recv_buffer=16384)


def cc_pair():
    return ConnPair(profile_a=CC, profile_b=CC_PEER).establish()


class TestController:
    def make(self):
        return TahoeController(CC, name="t")

    def test_starts_at_one_mss(self):
        controller = self.make()
        assert controller.cwnd == CC.mss
        assert controller.in_slow_start

    def test_slow_start_grows_one_mss_per_ack(self):
        controller = self.make()
        for _ in range(4):
            controller.on_new_ack(0)
        assert controller.cwnd == 5 * CC.mss

    def test_avoidance_grows_slowly(self):
        controller = self.make()
        controller.ssthresh = 2 * CC.mss
        controller.cwnd = 4 * CC.mss
        before = controller.cwnd
        controller.on_new_ack(0)
        assert before < controller.cwnd <= before + CC.mss // 2 + 1

    def test_timeout_collapses(self):
        controller = self.make()
        for _ in range(8):
            controller.on_new_ack(0)
        controller.on_timeout(bytes_in_flight=8 * CC.mss)
        assert controller.cwnd == CC.mss
        assert controller.ssthresh == 4 * CC.mss

    def test_ssthresh_floor_two_mss(self):
        controller = self.make()
        controller.on_timeout(bytes_in_flight=CC.mss)
        assert controller.ssthresh == 2 * CC.mss

    def test_third_dupack_triggers(self):
        controller = self.make()
        assert not controller.on_duplicate_ack(4 * CC.mss)
        assert not controller.on_duplicate_ack(4 * CC.mss)
        assert controller.on_duplicate_ack(4 * CC.mss)
        assert controller.cwnd == CC.mss
        assert controller.fast_retransmits == 1

    def test_new_ack_resets_dupack_count(self):
        controller = self.make()
        controller.on_duplicate_ack(0)
        controller.on_duplicate_ack(0)
        controller.on_new_ack(0)
        assert not controller.on_duplicate_ack(0)
        assert controller.dup_acks == 1

    def test_send_allowance_min_of_windows(self):
        controller = self.make()
        controller.cwnd = 2048
        assert controller.send_allowance(peer_window=4096) == 2048
        assert controller.send_allowance(peer_window=1024) == 1024


class TestConnectionIntegration:
    def test_disabled_by_default(self):
        pair = ConnPair().establish()
        assert pair.a.congestion is None

    def test_slow_start_paces_initial_burst(self):
        pair = cc_pair()
        pair.a.send(b"x" * (CC.mss * 16))
        # before any ACKs return, only one segment may be outstanding
        assert pair.a.bytes_in_flight() == CC.mss
        pair.run(pair.scheduler.now + 30.0)
        assert len(pair.b.delivered) == CC.mss * 16

    def test_window_opens_as_acks_return(self):
        pair = cc_pair()
        pair.a.send(b"y" * (CC.mss * 16))
        pair.run(pair.scheduler.now + 0.01)   # one round trip
        assert pair.a.congestion.cwnd > CC.mss

    def test_timeout_collapses_cwnd(self):
        pair = cc_pair()
        pair.a.send(b"z" * (CC.mss * 8))
        pair.run(pair.scheduler.now + 1.0)
        grown = pair.a.congestion.cwnd
        assert grown >= 4 * CC.mss
        pair.pipe.drop_a_to_b = lambda seg: True
        pair.a.send(b"w" * CC.mss)
        pair.run(pair.scheduler.now + 10.0)
        assert pair.a.congestion.cwnd == CC.mss
        assert pair.a.congestion.timeout_collapses >= 1

    def test_fast_retransmit_beats_the_timer(self):
        pair = cc_pair()
        # open the congestion window first
        pair.a.send(b"p" * (CC.mss * 8))
        pair.run(pair.scheduler.now + 2.0)
        state = {"dropped": False}

        def drop_one(seg):
            if seg.payload and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        pair.pipe.drop_a_to_b = drop_one
        start = pair.scheduler.now
        pair.a.send(b"q" * (CC.mss * 6))   # later segments arrive, dup-ACK
        pair.run(start + 0.8)              # well under the >= 1 s RTO
        fast = [e for e in pair.trace.entries("tcp.retransmit", conn="a")
                if e.get("fast")]
        assert fast, "fast retransmit should fire on the third dup ACK"
        assert fast[0].time - start < 0.5
        pair.run(start + 10.0)
        assert len(pair.b.delivered) == CC.mss * 14

    def test_transfer_completes_under_loss(self):
        import random
        rng = random.Random(5)
        pair = cc_pair()
        pair.pipe.drop_a_to_b = lambda seg: rng.random() < 0.05
        payload = b"r" * (CC.mss * 30)
        pair.a.send(payload)
        pair.run(pair.scheduler.now + 600.0)
        assert bytes(pair.b.delivered) == payload
