"""Analysis helpers for turning traces into the paper's tables and figures.

- :mod:`~repro.analysis.shape` -- detectors for the qualitative shapes the
  paper reports: exponential backoff, upper-bound plateaus, interval
  regularity.
- :mod:`~repro.analysis.series` -- extraction of per-run interval series
  (Figure 4's retransmission-timeout curves).
- :mod:`~repro.analysis.tables` -- plain-text rendering of result rows in
  the style of the paper's Tables 1-8.
"""

from repro.analysis.export import (VOLATILE_ATTRS, dump_trace, export_trace,
                                   load_trace, stream_trace, traces_equal)
from repro.analysis.series import retransmission_series, transmissions_of_seq
from repro.analysis.shape import (first_interval, intervals_plateau,
                                  is_exponential_backoff, is_roughly_constant,
                                  plateau_value)
from repro.analysis.tables import render_table
from repro.analysis.timeline import SequenceDiagram, gmp_sequence, tcp_sequence

__all__ = [
    "VOLATILE_ATTRS",
    "dump_trace",
    "export_trace",
    "first_interval",
    "load_trace",
    "stream_trace",
    "traces_equal",
    "intervals_plateau",
    "is_exponential_backoff",
    "is_roughly_constant",
    "plateau_value",
    "SequenceDiagram",
    "gmp_sequence",
    "tcp_sequence",
    "render_table",
    "retransmission_series",
    "transmissions_of_seq",
]
