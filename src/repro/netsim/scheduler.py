"""Virtual-time discrete-event scheduler.

The scheduler is the single source of time in the simulator.  All protocol
timers, link latencies, and fault-injection delays are events on one heap,
which makes every experiment deterministic: two runs with the same inputs
produce identical event orderings.

Events scheduled for the same instant fire in the order they were scheduled
(a monotonically increasing sequence number breaks ties), which mirrors the
FIFO behaviour of a real event loop and keeps traces stable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SchedulerError(Exception):
    """Raised on scheduler misuse (negative delays, running an empty loop)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Scheduler.schedule` so callers can cancel it later.
    Cancellation is lazy: the heap entry stays put and is skipped when it
    surfaces, which keeps cancel O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_scheduler")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple, scheduler: "Optional[Scheduler]" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._pending -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        status = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {status})"


class Scheduler:
    """Priority-queue event loop over a virtual clock.

    The clock only advances when events are dispatched; there is no relation
    to wall-clock time.  A ``max_events`` safety valve guards against
    accidental infinite event cascades (e.g. two protocols ping-ponging
    messages with zero latency).
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._dispatched = 0
        self._pending = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still on the heap.

        Maintained as a live counter (push/cancel/dispatch) rather than a
        heap scan, so polling it inside an event loop stays O(1).
        """
        return self._pending

    @property
    def dispatched_count(self) -> int:
        """Total number of events dispatched since construction."""
        return self._dispatched

    def fill_metrics(self, registry, **labels: Any) -> None:
        """Absorb the scheduler's counters into a metrics registry.

        This supersedes reading the bare ``dispatched_count`` /
        ``pending_count`` attributes when building a run snapshot: the
        values land as labelled gauges next to every other subsystem's
        series (see :mod:`repro.obs.metrics`).
        """
        registry.gauge("scheduler_now_s", **labels).set(self._now)
        registry.gauge("scheduler_dispatched", **labels).set(
            self._dispatched)
        registry.gauge("scheduler_pending", **labels).set(self._pending)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        event = Event(time, next(self._seq), callback, args, scheduler=self)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def _pop_next(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._pending -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None`` if idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if none remained."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self._dispatched += 1
        event.callback(*event.args)
        return True

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until the heap drains.  Returns the number of events fired."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SchedulerError(
                    f"exceeded max_events={max_events}; probable event cascade"
                )
        return fired

    def run_until(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Run events up to and including ``deadline``, then set now=deadline.

        Events scheduled exactly at the deadline do fire.  The clock is left
        at the deadline even if the heap drained earlier, so subsequent
        relative scheduling behaves as if time genuinely passed.
        """
        if deadline < self._now:
            raise SchedulerError(
                f"deadline {deadline} is before current time {self._now}"
            )
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
            fired += 1
            if fired >= max_events:
                raise SchedulerError(
                    f"exceeded max_events={max_events}; probable event cascade"
                )
        self._now = deadline
        return fired

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Convenience wrapper: run until ``now + duration``."""
        return self.run_until(self._now + duration, max_events=max_events)

    def __repr__(self) -> str:
        return f"Scheduler(now={self._now:.6f}, pending={self.pending_count})"
