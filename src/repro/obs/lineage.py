"""Causal message lineage reconstructed from a trace.

Every fault-injection action that creates or re-emits a message records
the message uids involved: ``pfi.duplicate`` carries ``original -> uid``,
``pfi.inject`` carries the ``parent`` that triggered it, TCP and the GMP
reliable layer record ``parent -> uid`` edges for each retransmitted wire
message.  This module folds those edges (plus every per-uid event such as
``pfi.delay``, ``pfi.hold``, ``pfi.release``, ``pfi.drop``, ``pfi.log``)
into a forest, so the full derivation tree of any packet -- *why does
this message exist, and what happened to it?* -- is a query over an
archived run rather than archaeology.

Build one with :meth:`Lineage.from_trace` (works on a live
:class:`~repro.netsim.trace.TraceRecorder` or one loaded back via
:func:`repro.analysis.export.load_trace`), then ask for ``tree(uid)``,
``root_of(uid)``, or a rendered ``render(uid)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.netsim.trace import TraceEntry

#: trace kinds that carry an explicit parent attribute name -> relation
_EDGE_ATTRS = {
    "pfi.duplicate": ("original", "duplicate"),
    "pfi.inject": ("parent", "inject"),
}

#: attrs that are bookkeeping on the entry itself, not worth echoing in
#: rendered event lines
_QUIET_ATTRS = {"uid", "original", "parent", "trigger", "node", "conn",
                "relation"}


class LineageNode:
    """One message in a derivation tree."""

    __slots__ = ("uid", "relation", "events", "children")

    def __init__(self, uid: int, relation: str = "root"):
        self.uid = uid
        #: how this message came to exist ("root", "duplicate",
        #: "inject", "retransmit", ...)
        self.relation = relation
        #: trace entries mentioning this uid, in capture order
        self.events: List[TraceEntry] = []
        self.children: List["LineageNode"] = []

    def walk(self) -> Iterable["LineageNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"LineageNode(uid={self.uid}, {self.relation}, "
                f"{len(self.events)} events, "
                f"{len(self.children)} children)")


class Lineage:
    """The parent->child uid graph of one run."""

    def __init__(self):
        self._parent: Dict[int, Tuple[int, str]] = {}
        self._children: Dict[int, List[Tuple[int, str]]] = {}
        self._events: Dict[int, List[TraceEntry]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Iterable[TraceEntry]) -> "Lineage":
        """Scan a trace (live or loaded) and build the derivation graph."""
        lineage = cls()
        for entry in trace:
            uid = entry.get("uid")
            if uid is None:
                continue
            lineage._events.setdefault(uid, []).append(entry)
            parent_attr, relation = _EDGE_ATTRS.get(entry.kind,
                                                    ("parent", None))
            parent = entry.get(parent_attr)
            if parent is None or parent == uid:
                continue
            if relation is None:
                relation = entry.get("relation") or entry.kind
            lineage._add_edge(parent, uid, relation)
        return lineage

    def _add_edge(self, parent: int, child: int, relation: str) -> None:
        self._parent.setdefault(child, (parent, relation))
        self._children.setdefault(parent, []).append((child, relation))
        self._events.setdefault(parent, [])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def uids(self) -> List[int]:
        """Every uid the trace mentioned, sorted."""
        return sorted(self._events)

    def parent_of(self, uid: int) -> Optional[Tuple[int, str]]:
        """``(parent_uid, relation)`` or None for roots/unknowns."""
        return self._parent.get(uid)

    def children_of(self, uid: int) -> List[Tuple[int, str]]:
        """Direct derived messages as ``(uid, relation)`` pairs."""
        return list(self._children.get(uid, ()))

    def events_of(self, uid: int) -> List[TraceEntry]:
        """Trace entries that mention this uid, in capture order."""
        return list(self._events.get(uid, ()))

    def root_of(self, uid: int) -> int:
        """Walk parent edges to the origin of a derivation chain."""
        seen = {uid}
        while True:
            link = self._parent.get(uid)
            if link is None:
                return uid
            uid = link[0]
            if uid in seen:  # defensive: corrupt traces must not hang us
                return uid
            seen.add(uid)

    def roots(self) -> List[int]:
        """Uids that are nobody's child but have derived descendants."""
        return sorted(uid for uid in self._children
                      if uid not in self._parent)

    def derived_count(self) -> int:
        """Total number of parent->child edges in the run."""
        return len(self._parent)

    def tree(self, uid: int) -> LineageNode:
        """The full derivation tree hanging below ``uid``."""
        relation = self._parent.get(uid, (None, "root"))[1]
        node = LineageNode(uid, relation)
        node.events = self.events_of(uid)
        for child_uid, _rel in self._children.get(uid, ()):
            node.children.append(self.tree(child_uid))
        return node

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self, uid: Optional[int] = None, *,
               max_events: int = 8) -> str:
        """ASCII derivation tree(s): one root, or every root in the run."""
        roots = [uid] if uid is not None else self.roots()
        if not roots:
            return "(no derived messages in this trace)"
        blocks = [self._render_node(self.tree(root), "", max_events)
                  for root in roots]
        return "\n".join(blocks)

    def _render_node(self, node: LineageNode, indent: str,
                     max_events: int) -> str:
        tag = "" if node.relation == "root" else f" [{node.relation}]"
        lines = [f"{indent}uid {node.uid}{tag}"]
        body = indent + ("  " if not indent else "  ")
        shown = node.events[:max_events]
        for entry in shown:
            detail = " ".join(f"{k}={v}" for k, v in sorted(
                entry.attrs.items()) if k not in _QUIET_ATTRS)
            lines.append(f"{body}@{entry.time:.3f} {entry.kind}"
                         + (f" {detail}" if detail else ""))
        if len(node.events) > len(shown):
            lines.append(f"{body}... {len(node.events) - len(shown)} "
                         f"more event(s)")
        for child in node.children:
            lines.append(self._render_node(child, indent + "  ",
                                           max_events))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Lineage({len(self._events)} uids, "
                f"{self.derived_count()} edges)")
