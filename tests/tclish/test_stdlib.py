"""Unit tests for tclish built-in commands: control flow, lists, strings."""

import pytest

from repro.core.tclish import Interp, TclError


@pytest.fixture
def interp():
    return Interp()


class TestControlFlow:
    def test_if_true_branch(self, interp):
        assert interp.eval("if {1} {set r yes} else {set r no}") == "yes"

    def test_if_false_branch(self, interp):
        assert interp.eval("if {0} {set r yes} else {set r no}") == "no"

    def test_if_without_else(self, interp):
        assert interp.eval("if {0} {set r yes}") == ""

    def test_elseif_chain(self, interp):
        interp.eval("set x 2")
        result = interp.eval(
            "if {$x == 1} {set r one} elseif {$x == 2} {set r two} "
            "else {set r other}")
        assert result == "two"

    def test_if_then_keyword(self, interp):
        assert interp.eval("if {1} then {set r ok}") == "ok"

    def test_while_loop(self, interp):
        interp.eval("set total 0; set i 0")
        interp.eval("while {$i < 5} { incr total $i; incr i }")
        assert interp.eval("set total") == "10"

    def test_while_break(self, interp):
        interp.eval("set i 0")
        interp.eval("while {1} { incr i; if {$i >= 3} { break } }")
        assert interp.eval("set i") == "3"

    def test_while_continue(self, interp):
        interp.eval("set evens 0; set i 0")
        interp.eval("""
        while {$i < 10} {
            incr i
            if {$i % 2} { continue }
            incr evens
        }""")
        assert interp.eval("set evens") == "5"

    def test_for_loop(self, interp):
        interp.eval("set s 0")
        interp.eval("for {set i 1} {$i <= 4} {incr i} { incr s $i }")
        assert interp.eval("set s") == "10"

    def test_for_break(self, interp):
        interp.eval("for {set i 0} {1} {incr i} { if {$i == 7} break }")
        assert interp.eval("set i") == "7"

    def test_foreach(self, interp):
        interp.eval("set acc {}")
        interp.eval("foreach v {c b a} { append acc $v }")
        assert interp.eval("set acc") == "cba"

    def test_foreach_break_continue(self, interp):
        interp.eval("set n 0")
        interp.eval("""
        foreach v {1 2 skip 3 stop 4} {
            if {$v eq "skip"} { continue }
            if {$v eq "stop"} { break }
            incr n
        }""")
        assert interp.eval("set n") == "3"

    def test_runaway_while_guarded(self, interp):
        with pytest.raises(TclError):
            interp.eval("while {1} {}")

    def test_catch_ok(self, interp):
        assert interp.eval("catch {set x 1} msg") == "0"
        assert interp.eval("set msg") == "1"

    def test_catch_error(self, interp):
        assert interp.eval("catch {error boom} msg") == "1"
        assert interp.eval("set msg") == "boom"

    def test_eval_command(self, interp):
        assert interp.eval('eval {set x 9}') == "9"


class TestLists:
    def test_list_builds_and_quotes(self, interp):
        assert interp.eval("list a b {c d}") == "a b {c d}"

    def test_lindex(self, interp):
        assert interp.eval("lindex {a b c} 1") == "b"
        assert interp.eval("lindex {a b c} end") == "c"
        assert interp.eval("lindex {a b c} end-1") == "b"
        assert interp.eval("lindex {a b c} 9") == ""

    def test_llength(self, interp):
        assert interp.eval("llength {a b {c d}}") == "3"
        assert interp.eval("llength {}") == "0"

    def test_lappend(self, interp):
        interp.eval("lappend mylist a")
        interp.eval("lappend mylist b {c c}")
        assert interp.eval("llength $mylist") == "3"
        assert interp.eval("lindex $mylist 2") == "c c"

    def test_lrange(self, interp):
        assert interp.eval("lrange {a b c d e} 1 3") == "b c d"
        assert interp.eval("lrange {a b c} 0 end") == "a b c"

    def test_lsearch(self, interp):
        assert interp.eval("lsearch {a b c} b") == "1"
        assert interp.eval("lsearch {a b c} z") == "-1"

    def test_concat(self, interp):
        assert interp.eval("concat {a b} {c}") == "a b c"

    def test_split_join_roundtrip(self, interp):
        assert interp.eval('join [split "a:b:c" ":"] "-"') == "a-b-c"

    def test_split_empty_chars(self, interp):
        assert interp.eval('llength [split "abc" ""]') == "3"


class TestStrings:
    def test_length(self, interp):
        assert interp.eval("string length hello") == "5"

    def test_case(self, interp):
        assert interp.eval("string toupper abc") == "ABC"
        assert interp.eval("string tolower ABC") == "abc"

    def test_index_and_range(self, interp):
        assert interp.eval("string index hello 1") == "e"
        assert interp.eval("string index hello end") == "o"
        assert interp.eval("string range hello 1 3") == "ell"

    def test_trim(self, interp):
        assert interp.eval('string trim "  x  "') == "x"

    def test_compare_equal(self, interp):
        assert interp.eval("string compare abc abc") == "0"
        assert interp.eval("string compare abc abd") == "-1"
        assert interp.eval("string equal abc abc") == "1"

    def test_match(self, interp):
        assert interp.eval('string match "AC*" ACK') == "1"
        assert interp.eval('string match "AC*" NACK') == "0"

    def test_repeat(self, interp):
        assert interp.eval("string repeat ab 3") == "ababab"

    def test_bad_option(self, interp):
        with pytest.raises(TclError):
            interp.eval("string bogus x")


class TestFormat:
    def test_string_and_int(self, interp):
        assert interp.eval('format "%s=%d" seq 42') == "seq=42"

    def test_float_precision(self, interp):
        assert interp.eval('format "%.2f" 3.14159') == "3.14"

    def test_width(self, interp):
        assert interp.eval('format "%5d" 42') == "   42"

    def test_percent_literal(self, interp):
        assert interp.eval('format "100%%"') == "100%"


class TestInfo:
    def test_info_exists(self, interp):
        interp.eval("set x 1")
        assert interp.eval("info exists x") == "1"
        assert interp.eval("info exists y") == "0"

    def test_info_procs(self, interp):
        interp.eval("proc myproc {} {}")
        assert "myproc" in interp.eval("info procs")

    def test_info_commands_includes_builtins(self, interp):
        commands = interp.eval("info commands")
        assert "set" in commands and "expr" in commands
