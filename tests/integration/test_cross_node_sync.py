"""Integration tests for cross-node script synchronization.

The paper lists "synchronizing scripts executed by PFI layers running on
different nodes" among the predefined libraries.  These tests exercise
that capability end to end: a filter on one machine observes protocol
state and flips a shared flag; filters on *other* machines change
behaviour the moment the flag flips.
"""


from repro.core import TclishFilter
from repro.experiments.gmp_common import build_gmp_cluster


def test_flag_coordinates_two_machines_python():
    """Node 1's receive filter arms node 3's send filter via sync."""
    cluster = build_gmp_cluster([1, 2, 3])

    def watcher(ctx):
        # the leader saw its first COMMIT-able moment: arm the saboteur
        if ctx.msg_type() == "JOIN":
            ctx.sync.set_flag("sabotage", True)

    def saboteur(ctx):
        if ctx.sync.get_flag("sabotage") and ctx.msg_type() == "HEARTBEAT":
            ctx.drop()

    cluster.pfis[1].set_receive_filter(watcher)
    cluster.pfis[3].set_send_filter(saboteur)
    cluster.start()
    cluster.run_until(60.0)
    assert cluster.env.sync.get_flag("sabotage")
    # the sabotage dropped node 3's heartbeats, so it was kicked at least
    # once after groups formed
    kicked = [e for e in cluster.trace.entries("gmp.view_adopted", node=1)
              if 3 not in e.get("members") and len(e.get("members")) > 1]
    assert kicked


def test_flag_coordinates_two_machines_tclish():
    """The same pattern, fully script-driven in tclish on both nodes."""
    cluster = build_gmp_cluster([1, 2, 3])
    cluster.pfis[1].set_receive_filter(TclishFilter("""
        if {[msg_type cur_msg] eq "JOIN"} { sync_set sabotage 1 }
    """))
    cluster.pfis[3].set_send_filter(TclishFilter("""
        if {[sync_get sabotage 0] == 1} {
            if {[msg_type cur_msg] eq "HEARTBEAT"} { xDrop cur_msg }
        }
    """))
    cluster.start()
    cluster.run_until(60.0)
    assert cluster.env.sync.get_flag("sabotage") == 1
    kicked = [e for e in cluster.trace.entries("gmp.view_adopted", node=1)
              if 3 not in e.get("members") and len(e.get("members")) > 1]
    assert kicked


def test_barrier_releases_coordinated_fault():
    """All three machines arrive at a barrier before any fault fires."""
    cluster = build_gmp_cluster([1, 2, 3])
    cluster.env.sync.barrier("all_saw_commit", parties=3)

    def arriving_filter(address):
        def fn(ctx):
            if ctx.msg_type() == "COMMIT" or (address == 1 and
                                              ctx.msg_type() == "ACK"):
                ctx.sync.arrive("all_saw_commit", address)
            if ctx.sync.barrier_tripped("all_saw_commit") \
                    and ctx.msg_type() == "HEARTBEAT":
                ctx.drop()
        return fn

    for address in (1, 2, 3):
        cluster.pfis[address].set_receive_filter(arriving_filter(address))
    cluster.start()
    cluster.run_until(60.0)
    assert cluster.env.sync.barrier_tripped("all_saw_commit")
    # once everyone dropped incoming heartbeats, the group dissolves and
    # reforms in a continuous churn: each node repeatedly falls back to a
    # singleton view (heartbeat loss) and rejoins (control traffic flows)
    for address in (1, 2, 3):
        assert cluster.trace.count("gmp.singleton", node=address) >= 3


def test_mailbox_passes_observations_between_nodes():
    """One node's filter records seqs; another consumes them."""
    cluster = build_gmp_cluster([1, 2])

    def producer(ctx):
        if ctx.msg_type() == "HEARTBEAT":
            ctx.sync.put("observed", (ctx.now, ctx.field("sender")))

    consumed = []

    def consumer(ctx):
        item = ctx.sync.take("observed")
        if item is not None:
            consumed.append(item)

    cluster.pfis[1].set_receive_filter(producer)
    cluster.pfis[2].set_receive_filter(consumer)
    cluster.start()
    cluster.run_until(20.0)
    assert consumed
    assert all(isinstance(t, float) for t, _sender in consumed)
