"""Coverage for the experiment harnesses and byzantine-forgery safety."""

import pytest

from repro.experiments.gmp_common import build_gmp_cluster
from repro.experiments.tcp_common import (build_tcp_testbed,
                                          open_connection,
                                          stream_from_vendor)
from repro.gmp.messages import COMMIT, MEMBERSHIP_CHANGE, GmpMessage
from repro.tcp import SUNOS_413
from repro.xkernel.message import Message


class TestTcpHarness:
    def test_stream_tolerates_connection_death(self):
        """Writes scheduled past the connection's death must not raise."""
        testbed = build_tcp_testbed(SUNOS_413)
        client, _ = open_connection(testbed)
        stream_from_vendor(testbed, client, segments=30, interval=0.5)
        testbed.pfi.set_receive_filter(lambda ctx: ctx.drop())
        testbed.env.run_until(2000.0)   # long past the timeout death
        assert client.state == "CLOSED"

    def test_handshake_failure_raises(self):
        testbed = build_tcp_testbed(SUNOS_413)
        testbed.pfi.set_receive_filter(lambda ctx: ctx.drop())
        with pytest.raises(RuntimeError, match="handshake"):
            open_connection(testbed)


class TestGmpHarness:
    def test_all_in_one_group_false_before_formation(self):
        cluster = build_gmp_cluster([1, 2])
        assert not cluster.all_in_one_group()

    def test_views_snapshot(self):
        cluster = build_gmp_cluster([1, 2])
        cluster.start()
        cluster.run_until(8.0)
        assert cluster.views() == {1: (1, 2), 2: (1, 2)}

    def test_subset_of_world_check(self):
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start(1, 2)
        cluster.run_until(8.0)
        assert cluster.all_in_one_group(1, 2)
        assert not cluster.all_in_one_group()


class TestByzantineForgery:
    """The daemon's validity checks against forged control traffic."""

    def test_forged_membership_change_from_non_leader_rejected(self):
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start()
        cluster.run_until(10.0)
        gid = cluster.daemons[3].view.group_id
        # sender 2 proposes a membership whose minimum is 1: not a valid
        # leader claim, must be rejected
        forged = Message(payload=GmpMessage(
            kind=MEMBERSHIP_CHANGE, sender=2, group_id=gid + 50,
            members=(1, 2, 3)))
        forged.meta.update(dst=3, src=2)
        cluster.pfis[3].inject(forged, "receive")
        cluster.run_until(cluster.scheduler.now + 1.0)
        assert cluster.trace.count("gmp.mc_rejected", node=3) >= 1
        assert cluster.daemons[3].status == "STABLE"

    def test_forged_change_excluding_recipient_rejected(self):
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start()
        cluster.run_until(10.0)
        gid = cluster.daemons[3].view.group_id
        forged = Message(payload=GmpMessage(
            kind=MEMBERSHIP_CHANGE, sender=1, group_id=gid + 50,
            members=(1, 2)))  # recipient 3 not in the proposal
        forged.meta.update(dst=3, src=1)
        cluster.pfis[3].inject(forged, "receive")
        cluster.run_until(cluster.scheduler.now + 1.0)
        assert cluster.daemons[3].status == "STABLE"
        assert cluster.daemons[3].view.members == (1, 2, 3)

    def test_stray_commit_ignored_when_not_in_transition(self):
        cluster = build_gmp_cluster([1, 2])
        cluster.start()
        cluster.run_until(8.0)
        view_before = cluster.daemons[2].view
        forged = Message(payload=GmpMessage(
            kind=COMMIT, sender=1, group_id=view_before.group_id + 50,
            members=(1, 2, 99)))
        forged.meta.update(dst=2, src=1)
        cluster.pfis[2].inject(forged, "receive")
        cluster.run_until(cluster.scheduler.now + 1.0)
        assert cluster.daemons[2].view == view_before

    def test_agreement_survives_forged_commit_storm(self):
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start()
        cluster.run_until(10.0)
        for i in range(20):
            forged = Message(payload=GmpMessage(
                kind=COMMIT, sender=1, group_id=100 + i,
                members=(1, 2, 3, 9)))
            forged.meta.update(dst=3, src=1)
            cluster.pfis[3].inject(forged, "receive", delay=i * 0.1)
        cluster.run_until(cluster.scheduler.now + 30.0)
        # views committed under one (leader, gid) still agree everywhere
        by_key = {}
        for daemon in cluster.daemons.values():
            for view in daemon.views_adopted:
                key = (view.leader, view.group_id)
                assert by_key.setdefault(key, view.members) == view.members


class TestNodeEdges:
    def test_halted_node_repr_and_counters(self):
        from repro.core import make_env
        env = make_env()
        node = env.network.add_node("victim", 1)
        env.network.add_node("peer", 2)
        node.transmit(b"x", 2)
        node.halt()
        assert node.is_halted
        assert "halted" in repr(node)
        assert node.transmit(b"y", 2) is False
        assert node.sent_count == 1

    def test_unattached_node_transmit_raises(self):
        from repro.netsim.node import Node
        node = Node("floating", 9)
        with pytest.raises(RuntimeError):
            node.transmit(b"x", 1)
