"""The PFI layer: probe/fault injection as a protocol stack layer.

"The PFI layer intercepts all messages coming into and leaving the target
layer.  [It] can manipulate messages to/from the target layer as they pass
through the protocol stack, and it can introduce spontaneous messages into
the system to observe the behavior of target protocol participants on
other nodes."

Data path:

- ``push`` (message travelling down, *leaving* the target layer) runs the
  **send filter**;
- ``pop`` (message travelling up, *entering* the target layer) runs the
  **receive filter**.

After a filter runs, the recorded actions are applied:

- injections first (a probe may need to precede the triggering message);
- ``drop`` discards the message;
- ``hold`` parks it in a named queue until a later ``release``;
- otherwise the message is forwarded, after ``delay`` seconds if
  requested, along with any duplicates.

Delayed/duplicated/released messages bypass the filters on re-emission, so
a delayed message is not re-filtered (and re-delayed) when its timer fires.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.context import DROP, HOLD, ScriptContext
from repro.core.distributions import DistributionSet
from repro.core.msglog import MessageLog
from repro.core.script import FilterScript, PythonFilter
from repro.core.stubs import PacketStubs
from repro.core.sync import ScriptSync
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.obs.metrics import MetricsRegistry
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.netsim import kinds as K

#: the layer's action counters, in presentation order; each becomes a
#: ``pfi_<name>`` counter labelled with the node name
_STAT_NAMES = ("send_seen", "receive_seen", "dropped", "delayed",
               "duplicated", "injected", "held", "released")


class PFILayer(Protocol):
    """A probe/fault-injection layer spliced into a protocol stack."""

    def __init__(self, name: str, scheduler: Scheduler, stubs: PacketStubs, *,
                 trace: Optional[TraceRecorder] = None,
                 sync: Optional[ScriptSync] = None,
                 dist: Optional[DistributionSet] = None,
                 node: str = "",
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(name)
        self.scheduler = scheduler
        self.stubs = stubs
        self.trace = trace
        self.sync = sync or ScriptSync()
        self.dist = dist or DistributionSet()
        self.node = node or name
        self.send_filter: Optional[FilterScript] = None
        self.receive_filter: Optional[FilterScript] = None
        self.send_state: Dict[str, Any] = {}
        self.receive_state: Dict[str, Any] = {}
        #: the layer's metrics registry; pass a shared one to aggregate
        #: several layers (or a whole node) into a single snapshot
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.msglog = MessageLog(stubs, trace, node=self.node,
                                 metrics=self.metrics)
        self._held: Dict[Tuple[str, str], List[Message]] = OrderedDict()
        self._killed = False
        # counter handles are created once here so the data path does a
        # bare attribute increment per event, never a registry lookup
        self._counters = {stat: self.metrics.counter(f"pfi_{stat}",
                                                     node=self.node)
                          for stat in _STAT_NAMES}
        self._seen_counters = {"send": self._counters["send_seen"],
                               "receive": self._counters["receive_seen"]}

    @property
    def stats(self) -> Dict[str, int]:
        """The classic counters as a plain dict.

        Kept for callers that predate the metrics registry; the values
        are read live from the registry, so ``pfi.stats["dropped"]`` and
        ``pfi.metrics.counter("pfi_dropped", node=...)`` always agree.
        """
        return {stat: counter.value
                for stat, counter in self._counters.items()}

    # ------------------------------------------------------------------
    # filter installation
    # ------------------------------------------------------------------

    def set_send_filter(self, script) -> None:
        """Install the send filter (FilterScript or plain callable)."""
        self.send_filter = _as_filter(script)

    def set_receive_filter(self, script) -> None:
        """Install the receive filter (FilterScript or plain callable)."""
        self.receive_filter = _as_filter(script)

    def clear_filters(self) -> None:
        """Remove both filters; the layer becomes transparent."""
        self.send_filter = None
        self.receive_filter = None

    def kill(self) -> None:
        """Emulate a crash at this layer: drop everything from now on.

        Used for the *process crash* and *link crash* failure models when
        the crash must be local to one stack rather than the whole node.
        """
        self._killed = True

    def revive(self) -> None:
        """Undo :meth:`kill`."""
        self._killed = False

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def push(self, msg: Message) -> None:
        self._process(msg, "send")

    def pop(self, msg: Message) -> None:
        self._process(msg, "receive")

    def _process(self, msg: Message, direction: str) -> None:
        if self._killed:
            self._counters["dropped"].inc()
            self._record(K.PFI_KILLED_DROP, direction=direction, uid=msg.uid)
            return
        self._seen_counters[direction].inc()
        script = self.send_filter if direction == "send" else self.receive_filter
        if script is None:
            self._forward(msg, direction)
            return

        state = self.send_state if direction == "send" else self.receive_state
        peer = self.receive_state if direction == "send" else self.send_state
        ctx = ScriptContext(
            msg=msg, direction=direction, now=self.scheduler.now,
            state=state, peer_state=peer, stubs=self.stubs, dist=self.dist,
            sync=self.sync, node=self.node, pfi=self)
        script.run(ctx)
        self._apply(ctx)

    def _apply(self, ctx: ScriptContext) -> None:
        direction = ctx.direction
        for injected, inj_direction, delay in ctx.injections:
            # the filtered message is the injection's causal parent --
            # the lineage edge that lets `repro report` answer "which
            # packet triggered this probe?"
            self.inject(injected, inj_direction, delay=delay,
                        parent=ctx.msg.uid)

        try:
            self._apply_verdict(ctx)
        finally:
            # released messages follow the current one, so "pass this and
            # release the held one" reorders exactly as scripts expect
            for tag, delay in ctx.releases:
                self._release(direction, tag, delay)

    def _apply_verdict(self, ctx: ScriptContext) -> None:
        direction = ctx.direction
        if ctx.verdict == DROP:
            self._counters["dropped"].inc()
            self._record(K.PFI_DROP, direction=direction, uid=ctx.msg.uid,
                         msg_type=ctx.msg_type())
            return
        if ctx.verdict == HOLD:
            self._counters["held"].inc()
            self._held.setdefault((direction, ctx.hold_tag), []).append(ctx.msg)
            self._record(K.PFI_HOLD, direction=direction, uid=ctx.msg.uid,
                         tag=ctx.hold_tag)
            return

        if ctx.delay_s > 0:
            self._counters["delayed"].inc()
            self._record(K.PFI_DELAY, direction=direction, uid=ctx.msg.uid,
                         seconds=ctx.delay_s, msg_type=ctx.msg_type())
            self.scheduler.schedule(ctx.delay_s, self._forward, ctx.msg, direction)
        else:
            self._forward(ctx.msg, direction)

        for extra_delay in ctx.duplicate_delays:
            self._counters["duplicated"].inc()
            copy = ctx.msg.copy()
            self._record(K.PFI_DUPLICATE, direction=direction, uid=copy.uid,
                         original=ctx.msg.uid)
            if extra_delay > 0:
                self.scheduler.schedule(extra_delay, self._forward, copy, direction)
            else:
                self._forward(copy, direction)

    def _forward(self, msg: Message, direction: str) -> None:
        if self._killed:
            self._counters["dropped"].inc()
            return
        if direction == "send":
            self.send_down(msg)
        else:
            self.send_up(msg)

    # ------------------------------------------------------------------
    # injection / reordering helpers
    # ------------------------------------------------------------------

    def inject(self, msg: Message, direction: str, *, delay: float = 0.0,
               parent: Optional[int] = None) -> None:
        """Introduce a spontaneous message, bypassing the filters.

        ``direction='send'`` pushes toward the wire (probing remote
        participants); ``direction='receive'`` delivers up into the target
        layer (forging traffic the target believes it received).
        ``parent`` is the uid of the message whose filtering triggered
        this injection (set automatically for script-driven injections)
        and becomes a lineage edge in the trace.
        """
        self._counters["injected"].inc()
        msg.meta["injected"] = True
        if parent is None:
            self._record(K.PFI_INJECT, direction=direction, uid=msg.uid,
                         msg_type=self.stubs.msg_type(msg))
        else:
            self._record(K.PFI_INJECT, direction=direction, uid=msg.uid,
                         msg_type=self.stubs.msg_type(msg), parent=parent)
        if delay > 0:
            self.scheduler.schedule(delay, self._forward, msg, direction)
        else:
            self._forward(msg, direction)

    def _release(self, direction: str, tag: str, delay: float) -> None:
        queue = self._held.pop((direction, tag), [])
        for position, msg in enumerate(queue):
            self._counters["released"].inc()
            self._record(K.PFI_RELEASE, direction=direction, uid=msg.uid,
                         tag=tag, position=position)
            if delay > 0:
                self.scheduler.schedule(delay, self._forward, msg, direction)
            else:
                self._forward(msg, direction)

    def held_count(self, direction: str, tag: str = "default") -> int:
        """Messages currently parked in a hold queue."""
        return len(self._held.get((direction, tag), ()))

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------

    def log_message(self, msg: Message, *, direction: str, note: str = "") -> None:
        """Record a message through the layer's :class:`MessageLog`."""
        self.msglog.log(msg, t=self.scheduler.now, direction=direction, note=note)

    def _record(self, kind: str, **attrs: Any) -> None:
        if self.trace is not None:
            self.trace.record(kind, t=self.scheduler.now, node=self.node, **attrs)


def _as_filter(script) -> FilterScript:
    if isinstance(script, FilterScript):
        return script
    if callable(script):
        return PythonFilter(script)
    raise TypeError(f"cannot use {script!r} as a filter script")
