# Reordering fault: hold every odd DATA segment and release it after
# the next one passes, swapping each consecutive pair.  Every xHold is
# matched by an xRelease on the same tag -- an unbalanced pair is what
# scriptlint's SL008 exists to catch.
if {![info exists holding]} {
    set holding 0
}
if {[msg_type cur_msg] eq "DATA"} {
    if {!$holding} {
        set holding 1
        xHold cur_msg swap
    } else {
        set holding 0
        xRelease swap
    }
}
