"""A minimal IP layer.

Just enough network layer to give the stack its paper shape
(TCP / **PFI** / IP / device): an :class:`IPHeader` carrying source and
destination addresses is pushed on the way down and popped on the way up.
Routing itself is the network simulator's job; the anchor layer reads
``meta['dst']`` which this layer maintains.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


@dataclass
class IPHeader:
    """Source/destination addressing for one packet."""

    src: int
    dst: int
    proto: str = "tcp"
    ttl: int = 64

    def clone(self) -> "IPHeader":
        """Message header ``clone()`` protocol: cheap dataclass replace."""
        return replace(self)


class IPProtocol(Protocol):
    """Wraps outbound messages with an IP header; unwraps inbound ones."""

    def __init__(self, local_address: int, name: str = "ip"):
        super().__init__(name)
        self.local_address = local_address
        self.sent_count = 0
        self.received_count = 0

    def push(self, msg: Message) -> None:
        dst = msg.meta.get("dst")
        if dst is None:
            raise ValueError("IP layer needs meta['dst'] to route")
        msg.push_header(IPHeader(src=self.local_address, dst=dst))
        self.sent_count += 1
        self.send_down(msg)

    def pop(self, msg: Message) -> None:
        header = msg.top_header
        if not isinstance(header, IPHeader):
            raise ValueError(f"IP layer popped a non-IP message: {msg!r}")
        msg.pop_header()
        if header.dst != self.local_address:
            return  # not for us; a real router would forward
        msg.meta["src"] = header.src
        msg.meta["dst"] = header.dst
        self.received_count += 1
        self.send_up(msg)
