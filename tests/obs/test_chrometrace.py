"""Chrome-trace / Perfetto export."""

import json

from repro.obs.chrometrace import chrome_trace, dump_chrome_trace


def _events(trace, ph=None, name_part=None):
    out = []
    for event in chrome_trace(trace)["traceEvents"]:
        if ph is not None and event["ph"] != ph:
            continue
        if name_part is not None and name_part not in event["name"]:
            continue
        out.append(event)
    return out


def delay_hold_run(harness):
    harness.pfi.set_send_filter(lambda ctx: ctx.delay(0.5))
    harness.send_down("DATA")
    harness.pfi.set_send_filter(lambda ctx: ctx.hold("q"))
    harness.send_down("DATA")
    harness.run(2.0)
    harness.pfi.set_send_filter(lambda ctx: ctx.release("q"))
    harness.send_down("DATA")
    harness.run(3.0)
    return harness.env.trace


class TestSchema:
    def test_output_is_valid_json_with_trace_events(self, harness):
        trace = delay_hold_run(harness)
        data = json.loads(dump_chrome_trace(trace))
        assert isinstance(data["traceEvents"], list)
        assert data["traceEvents"]
        for event in data["traceEvents"]:
            assert {"ph", "name", "pid", "tid"} <= set(event)
            if event["ph"] != "M":
                assert "ts" in event

    def test_metadata_names_processes_and_threads(self, harness):
        trace = delay_hold_run(harness)
        meta = _events(trace, ph="M")
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names.get("process_name") == "testnode"


class TestSpans:
    def test_delay_becomes_duration_span(self, harness):
        trace = delay_hold_run(harness)
        spans = _events(trace, ph="X", name_part="delay")
        assert len(spans) == 1
        assert spans[0]["dur"] == 0.5 * 1_000_000

    def test_hold_release_pair_becomes_one_span(self, harness):
        trace = delay_hold_run(harness)
        spans = _events(trace, ph="X", name_part="hold")
        assert len(spans) == 1
        hold = trace.first("pfi.hold")
        release = trace.first("pfi.release")
        assert spans[0]["ts"] == hold.time * 1_000_000
        assert spans[0]["dur"] == (release.time - hold.time) * 1_000_000

    def test_unreleased_hold_becomes_marker(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.hold("stuck"))
        harness.send_down("DATA")
        harness.run(1.0)
        markers = _events(harness.env.trace, ph="i",
                          name_part="never released")
        assert len(markers) == 1

    def test_other_kinds_become_instants(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.drop())
        harness.send_down("DATA")
        instants = _events(harness.env.trace, ph="i", name_part="pfi.drop")
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
