# Table 2 filter: delay every ACK by three seconds.
# A timing fault (§2.2): the segment still arrives, but late enough to
# interact with the sender's RTO estimator.
if {[msg_type cur_msg] eq "ACK"} {
    xDelay 3.0
}
