"""Static harvest of trace-kind emit sites and subscriptions.

The trace schema is implicit: producers call
``TraceRecorder.record(kind, ...)`` (usually through a per-class
``_record`` wrapper) and consumers -- oracle invariant packs, the
fuzzer's coverage keys, lineage reconstruction, analysis queries --
name the same dotted strings somewhere else entirely.  This module
recovers both sides from the AST so :mod:`repro.staticcheck.drift` can
diff them against each other and against the
:mod:`repro.netsim.kinds` registry.

Emit-site resolution handles the repo's actual shapes:

- direct literals: ``trace.record("net.unroutable", ...)``;
- registry constants: ``self._record(K.TCP_CWND, ...)`` under any
  import alias of :mod:`repro.netsim.kinds`;
- local conditionals: ``kind = K.NET_SEND if ok else K.NET_LINK_DROP``
  followed by ``record(kind, ...)`` (both branches are harvested);
- wrapper functions: any ``def`` with a ``kind`` parameter that passes
  it to ``.record(...)`` makes its *call sites* emit sites, and the
  pass-through inside the wrapper itself is not counted;
- genuinely dynamic kinds (e.g. trace replay feeding ``record`` from
  parsed JSON) are returned separately as :class:`DynamicEmit` -- they
  are facts about the file, not findings.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netsim import kinds as kinds_registry

#: the shape of a trace-kind string ("tcp.retransmit")
KIND_RE = re.compile(r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")

#: the shape of a kind prefix ("tcp"), as oracle ``prefixes`` use them
PREFIX_RE = re.compile(r"^[a-z][a-z0-9_]*$")

_KINDS_MODULE = "repro.netsim.kinds"


@dataclass(frozen=True)
class EmitSite:
    """One statically-resolved ``record(kind, ...)`` call."""

    kind: str
    path: str
    line: int
    #: "literal" | "constant" | "local" | "wrapper"
    via: str


@dataclass(frozen=True)
class DynamicEmit:
    """A record call whose kind cannot be resolved statically."""

    path: str
    line: int
    reason: str


@dataclass(frozen=True)
class Subscription:
    """One consumer-side reference to a trace kind."""

    kind: str
    path: str
    line: int
    #: "oracle-kind" | "oracle-prefix" | "query" | "table" | "comparison"
    role: str
    #: True when ``kind`` is a prefix ("gmp"), not an exact kind
    prefix: bool = False

    def matches(self, emitted: str) -> bool:
        if self.prefix:
            return emitted.startswith(self.kind + ".")
        return emitted == self.kind


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in sorted(os.walk(path)):
                dirs.sort()
                out.extend(os.path.join(root, f) for f in sorted(files)
                           if f.endswith(".py"))
        elif path.endswith(".py"):
            out.append(path)
    return out


class _FileHarvest(ast.NodeVisitor):
    """Harvest one module's emit sites and subscriptions."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.emits: List[EmitSite] = []
        self.dynamic: List[DynamicEmit] = []
        self.subscriptions: List[Subscription] = []
        #: aliases of the kinds module ("K", "kinds")
        self._module_aliases: Set[str] = set()
        #: from-imported constant name -> kind string
        self._constants: Dict[str, str] = {}
        #: names of local wrapper functions that forward ``kind``
        self._wrappers: Set[str] = set()
        #: stack of enclosing function defs
        self._functions: List[ast.AST] = []
        self._prescan(tree)

    def _prescan(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _KINDS_MODULE:
                        self._module_aliases.add(
                            alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module == _KINDS_MODULE:
                    for alias in node.names:
                        value = getattr(kinds_registry, alias.name, None)
                        if isinstance(value, str):
                            self._constants[alias.asname
                                            or alias.name] = value
                elif node.module == "repro.netsim":
                    for alias in node.names:
                        if alias.name == "kinds":
                            self._module_aliases.add(alias.asname
                                                     or "kinds")
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                if _forwards_kind(node):
                    self._wrappers.add(node.name)

    # -- kind-expression resolution -------------------------------------

    def _resolve(self, node: ast.expr,
                 local_scope: Optional[ast.AST]
                 ) -> Optional[List[Tuple[str, str]]]:
        """Resolve a kind expression to ``[(kind, via), ...]`` or None."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [(node.value, "literal")]
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in self._module_aliases):
            value = getattr(kinds_registry, node.attr, None)
            if isinstance(value, str):
                return [(value, "constant")]
            return None
        if isinstance(node, ast.Name):
            if node.id in self._constants:
                return [(self._constants[node.id], "constant")]
            if local_scope is not None:
                return self._resolve_local(node.id, local_scope)
        if isinstance(node, ast.IfExp):
            left = self._resolve(node.body, local_scope)
            right = self._resolve(node.orelse, local_scope)
            if left is not None and right is not None:
                return ([(kind, "local") for kind, _ in left]
                        + [(kind, "local") for kind, _ in right])
        return None

    def _resolve_local(self, name: str, scope: ast.AST
                       ) -> Optional[List[Tuple[str, str]]]:
        """Resolve ``name`` through single-assignment in ``scope``."""
        assignments = [
            node.value for node in ast.walk(scope)
            if isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == name
                    for t in node.targets)]
        if len(assignments) != 1:
            return None
        resolved = self._resolve(assignments[0], None)
        if resolved is None:
            return None
        return [(kind, "local") for kind, _ in resolved]

    def _kind_param(self) -> Optional[str]:
        """The ``kind`` parameter name of the enclosing wrapper, if any."""
        for fn in reversed(self._functions):
            args = fn.args
            names = {a.arg for a in (args.posonlyargs + args.args
                                     + args.kwonlyargs)}
            if "kind" in names:
                return "kind"
        return None

    # -- visitors --------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._functions.append(node)
        self.generic_visit(node)
        self._functions.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id in ("kinds", "prefixes")):
                role = ("oracle-kind" if stmt.targets[0].id == "kinds"
                        else "oracle-prefix")
                pattern = KIND_RE if role == "oracle-kind" else PREFIX_RE
                for kind in _tuple_of_strings(stmt.value, pattern):
                    self.subscriptions.append(Subscription(
                        kind=kind, path=self.path, line=stmt.lineno,
                        role=role, prefix=(role == "oracle-prefix")))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # module-level UPPER_CASE dict tables keyed by kind strings
        # (e.g. lineage's _EDGE_ATTRS) are subscriptions too
        if (len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.upper() == node.targets[0].id
                and isinstance(node.value, ast.Dict)
                and node.value.keys):
            keys = [k.value for k in node.value.keys
                    if isinstance(k, ast.Constant)
                    and isinstance(k.value, str)]
            if keys and all(KIND_RE.match(k) for k in keys):
                for key in keys:
                    self.subscriptions.append(Subscription(
                        kind=key, path=self.path, line=node.lineno,
                        role="table"))
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # entry.kind == "pfi.delay" -- a consumer branching on a kind
        sides = [node.left] + list(node.comparators)
        has_kind_attr = any(
            isinstance(s, ast.Attribute) and s.attr == "kind"
            for s in sides)
        if has_kind_attr and all(isinstance(op, (ast.Eq, ast.NotEq, ast.In))
                                 for op in node.ops):
            for side in sides:
                values: List[str] = []
                if (isinstance(side, ast.Constant)
                        and isinstance(side.value, str)):
                    values = [side.value]
                elif isinstance(side, (ast.Tuple, ast.Set, ast.List)):
                    values = [e.value for e in side.elts
                              if isinstance(e, ast.Constant)
                              and isinstance(e.value, str)]
                for value in values:
                    if KIND_RE.match(value):
                        self.subscriptions.append(Subscription(
                            kind=value, path=self.path, line=node.lineno,
                            role="comparison"))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if attr == "record" or attr in self._wrappers:
            self._harvest_emit(node, attr)
        elif attr in ("entries", "count") and node.args:
            first = node.args[0]
            if (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and KIND_RE.match(first.value)):
                self.subscriptions.append(Subscription(
                    kind=first.value, path=self.path, line=node.lineno,
                    role="query"))
        elif (attr == "startswith" and node.args
              and isinstance(func, ast.Attribute)
              and isinstance(func.value, ast.Attribute)
              and func.value.attr == "kind"):
            first = node.args[0]
            if (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and first.value.endswith(".")):
                self.subscriptions.append(Subscription(
                    kind=first.value.rstrip("."), path=self.path,
                    line=node.lineno, role="comparison", prefix=True))
        self.generic_visit(node)

    def _harvest_emit(self, node: ast.Call, attr: str) -> None:
        if not node.args:
            return
        first = node.args[0]
        # pass-through inside a wrapper definition: counted at call sites
        kind_param = self._kind_param()
        if (kind_param is not None and isinstance(first, ast.Name)
                and first.id == kind_param):
            return
        scope = self._functions[-1] if self._functions else None
        resolved = self._resolve(first, scope)
        if resolved is None:
            self.dynamic.append(DynamicEmit(
                path=self.path, line=node.lineno,
                reason=f"unresolvable kind expression "
                       f"{ast.dump(first)[:60]}"))
            return
        via = "wrapper" if attr != "record" else None
        for kind, how in resolved:
            if KIND_RE.match(kind):
                self.emits.append(EmitSite(
                    kind=kind, path=self.path, line=node.lineno,
                    via=via or how))


def _forwards_kind(fn: ast.AST) -> bool:
    """Does ``fn`` take a ``kind`` parameter and pass it to ``record``?"""
    args = fn.args
    names = {a.arg for a in (args.posonlyargs + args.args
                             + args.kwonlyargs)}
    if "kind" not in names:
        return False
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "record" and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "kind"):
            return True
    return False


def _tuple_of_strings(node: ast.expr,
                      pattern: "re.Pattern" = KIND_RE) -> List[str]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return [e.value for e in node.elts
                if isinstance(e, ast.Constant)
                and isinstance(e.value, str) and pattern.match(e.value)]
    return []


@dataclass
class Harvest:
    """Everything the drift checker needs, across all harvested files."""

    emits: List[EmitSite]
    dynamic: List[DynamicEmit]
    subscriptions: List[Subscription]

    def emitted_kinds(self) -> Set[str]:
        return {site.kind for site in self.emits}

    def first_emit(self, kind: str) -> Optional[EmitSite]:
        for site in self.emits:
            if site.kind == kind:
                return site
        return None


def harvest_paths(paths: Sequence[str]) -> Harvest:
    """Harvest emit sites and subscriptions from files/directories."""
    emits: List[EmitSite] = []
    dynamic: List[DynamicEmit] = []
    subscriptions: List[Subscription] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fp:
            source = fp.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # the suite reports unparseable files separately
        visitor = _FileHarvest(path, tree)
        visitor.visit(tree)
        emits.extend(visitor.emits)
        dynamic.extend(visitor.dynamic)
        subscriptions.extend(visitor.subscriptions)
    return Harvest(emits=emits, dynamic=dynamic,
                   subscriptions=subscriptions)
