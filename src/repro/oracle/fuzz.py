"""Coverage-guided fault-scenario fuzzing with the oracle as the verdict.

The loop is classic greybox fuzzing, transplanted to fault injection:

1. draw fault scripts from the grammar (:mod:`repro.oracle.grammar`),
   or mutate scripts already in the corpus;
2. run each case through the parallel :class:`~repro.core.orchestrator
   .Campaign` engine with the protocol's invariant pack installed as the
   campaign oracle;
3. keep a case in the corpus when its trace reaches coverage (trace
   kinds, TCP state transitions, GMP message kinds) no earlier case
   reached;
4. report any case whose oracle verdict is non-empty as a *finding*,
   ready for the shrinker (:mod:`repro.oracle.shrink`).

Targets: for TCP the four vendor profiles of the paper; for GMP the
single-bug daemon variants (one historical bug armed at a time, the
rest fixed).  Both are conformant at rest -- the no-false-positive
conformance suite pins that -- so a finding always names a (variant,
script, seed) triple where the injected faults made a latent bug
observable, exactly the paper's probing workflow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.distributions import derive_seed
from repro.core.orchestrator import Campaign, RunResult
from repro.oracle.grammar import (FuzzScript, generate_script, mutate_script,
                                  trial_seed)
from repro.oracle.invariants import Violation

#: virtual-time horizon of one fuzz run, per protocol
HORIZONS = {"tcp": 30.0, "gmp": 30.0}

#: GMP runs let the group form before the filter arms, so faults hit a
#: committed view instead of an empty network
GMP_INSTALL_AT = 8.0
GMP_WORLD = (1, 2, 3)
GMP_TARGET = 2

#: GMP single-bug variants the fuzzer explores.  ``reply_to_sender`` is
#: deliberately absent: that daemon already violates GMP-PROCLAIM-REPLY
#: during unfaulted group formation (the forwarding loop needs no help),
#: so as a fuzz target it would make every case a trivial finding -- the
#: known-bug detection tests cover it instead.
GMP_VARIANTS = ("self_death", "forward_param", "inverted_timer")

TCP_SEGMENTS = 10
TCP_SEGMENT_INTERVAL = 0.4


# ----------------------------------------------------------------------
# campaign bodies (module-level: the parallel path needs them picklable)
# ----------------------------------------------------------------------

def _gmp_bug_flags(variant: str):
    from repro.gmp import BugFlags, FIXED
    if variant == "fixed":
        return FIXED
    flags = {"self_death": BugFlags(self_death=True),
             "forward_param": BugFlags(proclaim_forward_param=True),
             "reply_to_sender": BugFlags(proclaim_reply_to_sender=True),
             "inverted_timer": BugFlags(inverted_timer_unregister=True)}
    return flags[variant]


def _script_filter(config):
    from repro.core.script import TclishFilter
    return TclishFilter(config["script"], init_script=config["init_script"],
                        name="fuzz")


def fuzz_body(env, config):
    """One fuzz case: build the rig, arm the script, run the workload."""
    if config["protocol"] == "tcp":
        return _tcp_fuzz_body(env, config)
    return _gmp_fuzz_body(env, config)


def _tcp_fuzz_body(env, config):
    from repro.experiments.tcp_common import (SERVER_PORT, CLIENT_PORT,
                                              XKERNEL_ADDR,
                                              build_tcp_testbed,
                                              stream_from_vendor)
    from repro.tcp import VENDORS
    testbed = build_tcp_testbed(VENDORS[config["target"]], env=env)
    script = _script_filter(config)
    if config["direction"] == "send":
        testbed.pfi.set_send_filter(script)
    else:
        testbed.pfi.set_receive_filter(script)
    testbed.xkernel_tcp.listen(SERVER_PORT)
    client = testbed.vendor_tcp.open_connection(
        local_port=CLIENT_PORT, remote_address=XKERNEL_ADDR,
        remote_port=SERVER_PORT)
    client.connect()
    env.run_until(1.0)
    stream_from_vendor(testbed, client, segments=TCP_SEGMENTS,
                       interval=TCP_SEGMENT_INTERVAL)
    env.run_until(HORIZONS["tcp"])
    return {"established": client.established, "final_state": client.state}


def _gmp_fuzz_body(env, config):
    from repro.experiments.gmp_common import build_gmp_cluster
    cluster = build_gmp_cluster(
        list(GMP_WORLD), default_bugs=_gmp_bug_flags(config["target"]),
        env=env)
    cluster.start()
    cluster.run_until(GMP_INSTALL_AT)
    script = _script_filter(config)
    if config["direction"] == "send":
        cluster.pfis[GMP_TARGET].set_send_filter(script)
    else:
        cluster.pfis[GMP_TARGET].set_receive_filter(script)
    cluster.run_until(HORIZONS["gmp"])
    return {"views": {a: list(v) for a, v in cluster.views().items()}}


def pack_for(protocol: str):
    """The (picklable) oracle factory for one protocol's fuzz runs."""
    from repro.oracle import gmp_pack, tcp_pack
    if protocol == "tcp":
        return tcp_pack
    if protocol == "gmp":
        return gmp_pack
    raise ValueError(f"unknown protocol {protocol!r}")


# ----------------------------------------------------------------------
# cases and coverage
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzCase:
    """One executable fuzz input: script + placement + seeds."""

    script: FuzzScript
    target: str                 # vendor name (tcp) / bug-variant (gmp)
    case_seed: int

    @property
    def protocol(self) -> str:
        return self.script.protocol

    def config(self) -> Dict[str, object]:
        """The campaign configuration this case runs as.

        Deliberately excludes the script's display name: the campaign
        derives each run's seed from the config repr, and a rename (the
        shrinker suffixes ``_min``) must not change the simulation.
        """
        return {"protocol": self.protocol,
                "target": self.target, "direction": self.script.direction,
                "script": self.script.source,
                "init_script": self.script.init,
                "case_seed": self.case_seed}

    def to_dict(self) -> Dict[str, object]:
        return {"script": self.script.to_dict(), "target": self.target,
                "case_seed": self.case_seed}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCase":
        return cls(script=FuzzScript.from_dict(data["script"]),
                   target=data["target"], case_seed=data["case_seed"])


def coverage_keys(trace) -> FrozenSet[Tuple]:
    """The coverage signature of one trace.

    Trace kinds give breadth (which mechanisms ran at all); TCP state
    transitions and GMP message kinds give depth within the protocol
    state machines -- the "state-transition coverage" the fuzzer steers
    by.
    """
    keys = {("kind", kind) for kind in trace.count_by_kind()}
    for entry in trace.entries("tcp.state"):
        keys.add(("tcp.state", entry.get("old"), entry.get("new")))
    for entry in trace.entries("gmp.send"):
        keys.add(("gmp.send", entry.get("msg_kind")))
    return frozenset(keys)


@dataclass
class Finding:
    """One violating case, before shrinking."""

    case: FuzzCase
    codes: List[str]
    violation_count: int
    example: Optional[Violation] = None


@dataclass
class FuzzReport:
    """What one fuzzing session did."""

    protocol: str
    seed: int
    budget: int
    executed: int = 0
    corpus: List[FuzzCase] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    coverage: FrozenSet[Tuple] = frozenset()

    def render(self) -> str:
        lines = [f"fuzz {self.protocol}: {self.executed}/{self.budget} "
                 f"cases, coverage {len(self.coverage)} keys, "
                 f"corpus {len(self.corpus)}, "
                 f"findings {len(self.findings)}"]
        for finding in self.findings:
            lines.append(
                f"  {finding.case.script.name} "
                f"[target={finding.case.target} "
                f"seed={finding.case.case_seed}] -> "
                f"{','.join(finding.codes)} "
                f"({finding.violation_count} violations)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the fuzzing loop
# ----------------------------------------------------------------------

def _targets(protocol: str) -> Tuple[str, ...]:
    if protocol == "tcp":
        from repro.tcp import VENDORS
        return tuple(VENDORS)
    return GMP_VARIANTS


def _draw_case(rng: random.Random, protocol: str, corpus: List[FuzzCase],
               index: int, campaign_seed: int) -> FuzzCase:
    if corpus and rng.random() < 0.5:
        parent = corpus[rng.randrange(len(corpus))]
        script = mutate_script(rng, parent.script, index=index)
        target = parent.target
    else:
        script = generate_script(rng, protocol, index=index)
        target = rng.choice(_targets(protocol))
    return FuzzCase(script=script, target=target,
                    case_seed=trial_seed(campaign_seed, script.name))


def run_fuzz(protocol: str = "gmp", *, seed: int = 0, budget: int = 24,
             workers: int = 1, batch: int = 0) -> FuzzReport:
    """Fuzz one protocol's rig for ``budget`` cases.

    Fully deterministic in ``seed``: case generation, per-case seeds,
    and the simulations themselves all derive from it, and the parallel
    campaign path returns results in input order, so ``workers`` does
    not perturb the outcome.
    """
    if batch <= 0:
        batch = max(4, workers * 2)
    report = FuzzReport(protocol=protocol, seed=seed, budget=budget)
    coverage: set = set()
    campaign = Campaign(fuzz_body, seed=seed, lint="error")
    batch_index = 0
    while report.executed < budget:
        count = min(batch, budget - report.executed)
        rng = random.Random(derive_seed(seed, "fuzz-batch", batch_index))
        cases = [_draw_case(rng, protocol, report.corpus,
                            report.executed + i, seed)
                 for i in range(count)]
        results = campaign.run([case.config() for case in cases],
                               workers=workers, telemetry=False,
                               oracle=pack_for(protocol))
        for case, result in zip(cases, results):
            report.executed += 1
            keys = coverage_keys(result.trace)
            if keys - coverage:
                coverage |= keys
                report.corpus.append(case)
            if result.violations:
                codes = sorted({v.code for v in result.violations})
                report.findings.append(Finding(
                    case=case, codes=codes,
                    violation_count=len(result.violations),
                    example=result.violations[0]))
        batch_index += 1
    report.coverage = frozenset(coverage)
    return report


def run_case(case: FuzzCase, *, campaign_seed: int = 0) -> RunResult:
    """Execute one case exactly as the fuzz loop would (serial)."""
    campaign = Campaign(fuzz_body, seed=campaign_seed, lint="error")
    [result] = campaign.run([case.config()], telemetry=False,
                            oracle=pack_for(case.protocol))
    return result
