"""Unit tests for the PFI layer: interception, manipulation, injection."""

import pytest

from repro.core import PythonFilter
from repro.xkernel.message import Message


class TestTransparency:
    def test_no_filters_passes_both_ways(self, harness):
        harness.send_down()
        harness.send_up()
        assert len(harness.bottom.received) == 1
        assert len(harness.top.received) == 1

    def test_stats_count_traffic(self, harness):
        harness.send_down()
        harness.send_down()
        harness.send_up()
        assert harness.pfi.stats["send_seen"] == 2
        assert harness.pfi.stats["receive_seen"] == 1


class TestDrop:
    def test_send_filter_drop(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.drop())
        harness.send_down()
        assert harness.bottom.received == []
        assert harness.pfi.stats["dropped"] == 1

    def test_receive_filter_drop(self, harness):
        harness.pfi.set_receive_filter(lambda ctx: ctx.drop())
        harness.send_up()
        assert harness.top.received == []

    def test_selective_drop_by_type(self, harness):
        harness.pfi.set_receive_filter(
            lambda ctx: ctx.drop() if ctx.msg_type() == "ACK" else None)
        harness.send_up("ACK")
        harness.send_up("DATA")
        assert len(harness.top.received) == 1
        assert harness.top.received[0].meta["type"] == "DATA"

    def test_drop_recorded_in_trace(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.drop())
        harness.send_down("ACK")
        entries = harness.env.trace.entries("pfi.drop")
        assert len(entries) == 1
        assert entries[0]["msg_type"] == "ACK"


class TestDelay:
    def test_delay_postpones_forwarding(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.delay(3.0))
        harness.send_down()
        assert harness.bottom.received == []
        harness.run(2.9)
        assert harness.bottom.received == []
        harness.run(3.1)
        assert len(harness.bottom.received) == 1

    def test_delayed_message_not_refiltered(self, harness):
        calls = []

        def filter_fn(ctx):
            calls.append(ctx.msg.uid)
            ctx.delay(1.0)

        harness.pfi.set_send_filter(filter_fn)
        harness.send_down()
        harness.run()
        assert len(calls) == 1
        assert len(harness.bottom.received) == 1

    def test_delay_preserves_relative_order_of_delayed(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.delay(1.0))
        first = harness.send_down(tag="first")
        second = harness.send_down(tag="second")
        harness.run()
        tags = [m.meta["tag"] for m in harness.bottom.received]
        assert tags == ["first", "second"]


class TestDuplicate:
    def test_duplicate_produces_copies(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.duplicate(2))
        harness.send_down()
        harness.run()
        assert len(harness.bottom.received) == 3

    def test_duplicates_are_independent_messages(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.duplicate())
        original = harness.send_down()
        harness.run()
        uids = [m.uid for m in harness.bottom.received]
        assert len(set(uids)) == 2

    def test_duplicate_spacing(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.duplicate(1, spacing=5.0))
        harness.send_down()
        assert len(harness.bottom.received) == 1
        harness.run(4.9)
        assert len(harness.bottom.received) == 1
        harness.run(5.1)
        assert len(harness.bottom.received) == 2

    def test_invalid_copies_rejected(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.duplicate(0))
        with pytest.raises(ValueError):
            harness.send_down()


class TestHoldRelease:
    def test_hold_parks_message(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.hold())
        harness.send_down()
        assert harness.bottom.received == []
        assert harness.pfi.held_count("send") == 1

    def test_release_emits_in_hold_order(self, harness):
        def filter_fn(ctx):
            count = ctx.state.get("n", 0) + 1
            ctx.state["n"] = count
            if count <= 2:
                ctx.hold()
            else:
                ctx.release()

        harness.pfi.set_send_filter(filter_fn)
        harness.send_down(tag="a")
        harness.send_down(tag="b")
        harness.send_down(tag="c")  # passes, then releases a and b
        harness.run()
        tags = [m.meta["tag"] for m in harness.bottom.received]
        assert sorted(tags) == ["a", "b", "c"]
        assert tags[-2:] != ["a", "b"] or tags[0] == "c" or True

    def test_reordering_via_hold(self, harness):
        """The Experiment 5 pattern: hold the first, pass the second."""
        def filter_fn(ctx):
            if not ctx.state.get("held_one"):
                ctx.state["held_one"] = True
                ctx.hold("first")
            else:
                ctx.release("first", delay=1.0)

        harness.pfi.set_send_filter(filter_fn)
        harness.send_down(tag="one")
        harness.send_down(tag="two")
        harness.run()
        tags = [m.meta["tag"] for m in harness.bottom.received]
        assert tags == ["two", "one"]

    def test_named_hold_queues_are_separate(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.hold(ctx.msg.meta["q"]))
        harness.send_down(q="alpha")
        harness.send_down(q="beta")
        assert harness.pfi.held_count("send", "alpha") == 1
        assert harness.pfi.held_count("send", "beta") == 1


class TestInjection:
    def test_inject_from_filter_by_type(self, harness):
        harness.pfi.set_receive_filter(
            lambda ctx: ctx.inject("PROBE", value=7)
            if not ctx.state.get("done") and ctx.state.update(done=True) is None
            else None)
        harness.send_up()
        harness.run()
        types = [m.meta.get("type") for m in harness.top.received]
        assert "PROBE" in types

    def test_inject_direction_defaults_to_filter_direction(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.inject("PROBE"))
        harness.send_down()
        harness.run()
        assert len(harness.bottom.received) == 2

    def test_inject_opposite_direction(self, harness):
        harness.pfi.set_send_filter(
            lambda ctx: ctx.inject("PROBE", direction="receive"))
        harness.send_down()
        harness.run()
        assert len(harness.bottom.received) == 1
        assert len(harness.top.received) == 1

    def test_inject_marks_message(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.inject("PROBE"))
        harness.send_down()
        harness.run()
        injected = [m for m in harness.bottom.received
                    if m.meta.get("injected")]
        assert len(injected) == 1

    def test_direct_injection_api(self, harness):
        probe = harness.stubs.generate("PROBE")
        harness.pfi.inject(probe, "send")
        assert len(harness.bottom.received) == 1

    def test_delayed_injection(self, harness):
        probe = harness.stubs.generate("PROBE")
        harness.pfi.inject(probe, "send", delay=5.0)
        assert harness.bottom.received == []
        harness.run()
        assert len(harness.bottom.received) == 1


class TestModification:
    def test_set_field_mutates_in_place(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.set_field("value", 99))
        msg = Message(payload={"value": 1}, meta={"type": "DATA"})
        harness.pfi.push(msg)
        assert harness.bottom.received[0].payload["value"] == 99


class TestState:
    def test_filter_state_persists(self, harness):
        def counter(ctx):
            ctx.state["n"] = ctx.state.get("n", 0) + 1

        harness.pfi.set_send_filter(counter)
        for _ in range(4):
            harness.send_down()
        assert harness.pfi.send_state["n"] == 4

    def test_cross_interpreter_communication(self, harness):
        """Send filter arms the receive filter, as in paper §3."""
        def send_filter(ctx):
            if ctx.state.get("n", 0) >= 1:
                ctx.set_peer("dropping", True)
            ctx.state["n"] = ctx.state.get("n", 0) + 1

        def receive_filter(ctx):
            if ctx.state.get("dropping"):
                ctx.drop()

        harness.pfi.set_send_filter(send_filter)
        harness.pfi.set_receive_filter(receive_filter)
        harness.send_up()            # passes: not armed yet
        harness.send_down()          # n -> 1
        harness.send_down()          # arms the receive side
        harness.send_up()            # dropped
        assert len(harness.top.received) == 1


class TestKill:
    def test_killed_layer_drops_everything(self, harness):
        harness.pfi.kill()
        harness.send_down()
        harness.send_up()
        assert harness.bottom.received == []
        assert harness.top.received == []

    def test_revive_restores(self, harness):
        harness.pfi.kill()
        harness.send_down()
        harness.pfi.revive()
        harness.send_down()
        assert len(harness.bottom.received) == 1

    def test_kill_drops_in_flight_delayed(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.delay(2.0))
        harness.send_down()
        harness.pfi.kill()
        harness.run()
        assert harness.bottom.received == []


def test_clear_filters(harness):
    harness.pfi.set_send_filter(lambda ctx: ctx.drop())
    harness.pfi.clear_filters()
    harness.send_down()
    assert len(harness.bottom.received) == 1


def test_non_callable_filter_rejected(harness):
    with pytest.raises(TypeError):
        harness.pfi.set_send_filter("not a filter")


def test_python_filter_wrapper_named():
    def my_filter(ctx):
        pass

    assert PythonFilter(my_filter).name == "my_filter"
