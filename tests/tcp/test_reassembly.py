"""Unit tests for the out-of-order reassembly queue."""

import pytest

from repro.tcp.reassembly import ReassemblyQueue
from repro.tcp.segment import SEQ_MOD


@pytest.fixture
def queue():
    return ReassemblyQueue()


def test_empty_extract(queue):
    data, nxt = queue.extract(100)
    assert data == b""
    assert nxt == 100


def test_buffered_until_gap_fills(queue):
    queue.add(612, b"second")
    data, nxt = queue.extract(100)
    assert data == b""
    assert nxt == 100
    assert queue.segment_count == 1


def test_contiguous_delivery(queue):
    queue.add(100, b"abc")
    data, nxt = queue.extract(100)
    assert data == b"abc"
    assert nxt == 103


def test_chain_of_ranges(queue):
    queue.add(103, b"def")
    queue.add(100, b"abc")
    queue.add(106, b"ghi")
    data, nxt = queue.extract(100)
    assert data == b"abcdefghi"
    assert nxt == 109


def test_gap_stops_chain(queue):
    queue.add(100, b"abc")
    queue.add(110, b"later")
    data, nxt = queue.extract(100)
    assert data == b"abc"
    assert nxt == 103
    assert queue.segment_count == 1


def test_overlap_trimmed(queue):
    queue.add(100, b"abcdef")
    queue.add(103, b"defXYZ")
    data, nxt = queue.extract(100)
    assert data == b"abcdefXYZ"
    assert nxt == 109


def test_stale_range_discarded(queue):
    queue.add(90, b"old")
    data, nxt = queue.extract(100)
    assert data == b""
    assert nxt == 100
    assert queue.segment_count == 0


def test_partially_stale_range_trimmed(queue):
    queue.add(95, b"0123456789")  # bytes 95..104, cursor at 100
    data, nxt = queue.extract(100)
    assert data == b"56789"
    assert nxt == 105


def test_duplicate_add_keeps_longest(queue):
    queue.add(100, b"ab")
    queue.add(100, b"abcd")
    data, nxt = queue.extract(100)
    assert data == b"abcd"


def test_capacity_limit():
    queue = ReassemblyQueue(max_bytes=10)
    assert queue.add(100, b"12345")
    assert not queue.add(200, b"123456789")
    assert queue.buffered_bytes == 5


def test_empty_data_accepted_noop(queue):
    assert queue.add(100, b"")
    assert queue.segment_count == 0


def test_wraparound_sequence(queue):
    start = SEQ_MOD - 2
    queue.add(start, b"abcd")  # wraps: seq 4294967294..1
    data, nxt = queue.extract(start)
    assert data == b"abcd"
    assert nxt == 2


def test_clear(queue):
    queue.add(100, b"x")
    queue.clear()
    assert len(queue) == 0
