"""repro.obs: the unified observability layer.

The paper derives every result from monitoring -- "each packet was logged
with a timestamp by the receive filter script" is the entire evidence
pipeline -- and this package is that pipeline grown up.  It threads four
capabilities through every layer of the toolchain:

- :mod:`~repro.obs.metrics` -- a labelled counter/gauge/histogram
  registry that supersedes the bare ``stats`` dicts on ``PFILayer``,
  ``Interp`` and ``Scheduler``; snapshotable per run and mergeable
  across campaign workers;
- :mod:`~repro.obs.lineage` -- causal parent->child message derivation
  reconstructed from a trace (duplicates, injections, retransmits), so
  "where did this packet come from?" has an answer;
- :mod:`~repro.obs.profiler` -- an opt-in tclish script profiler
  reporting per-command and per-script wall time, hooked into the
  compiled execution path;
- :mod:`~repro.obs.telemetry` -- per-configuration campaign timing
  (wall/virtual-time ratio, event counts) rendered as a scorecard;
- :mod:`~repro.obs.journal` -- the campaign flight recorder: a
  crash-safe, append-only JSONL event journal every long-running engine
  can attach (``journal=``), with torn-tail-tolerant replay and a
  ``repro tail`` follower;
- :mod:`~repro.obs.progress` -- the one shared live-progress renderer
  behind ``--progress`` everywhere;
- :mod:`~repro.obs.campaign_report` -- folds a journal into a summary,
  partial scorecard, JSON and self-contained HTML ranking fault
  scenarios by bug yield;
- :mod:`~repro.obs.history` -- content-addressed cross-run history with
  per-sweep deltas (``repro history``);
- :mod:`~repro.obs.chrometrace` / :mod:`~repro.obs.report` -- exporters:
  Chrome-trace/Perfetto JSON (simulator traces and campaign journals)
  and the ``repro report`` text rendering.

Everything here is read-side or explicitly opt-in: with no trace bound,
no journal attached and no profiler attached the instrumented hot paths
stay guard-only (one ``is not None`` test, no allocation).
"""

from repro.obs.campaign_report import (CampaignSummary, rank_scenarios,
                                       render_html, render_text,
                                       summarize_journal, summary_to_json)
from repro.obs.chrometrace import (chrome_trace, dump_chrome_trace,
                                   journal_chrome_trace)
from repro.obs.history import HistoryRow, HistoryStore
from repro.obs.journal import (JOURNAL_KINDS, SCHEMA_VERSION, Journal,
                               JournalEvent, JournalReplay, follow_journal,
                               replay_journal)
from repro.obs.lineage import Lineage, LineageNode
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import ScriptProfiler
from repro.obs.progress import ProgressRenderer, format_eta, rate_of
from repro.obs.report import render_report
from repro.obs.telemetry import (RunTelemetry, render_scorecard,
                                 render_scorecard_rows)

__all__ = [
    "JOURNAL_KINDS",
    "SCHEMA_VERSION",
    "CampaignSummary",
    "Counter",
    "Gauge",
    "Histogram",
    "HistoryRow",
    "HistoryStore",
    "Journal",
    "JournalEvent",
    "JournalReplay",
    "Lineage",
    "LineageNode",
    "MetricsRegistry",
    "ProgressRenderer",
    "RunTelemetry",
    "ScriptProfiler",
    "chrome_trace",
    "dump_chrome_trace",
    "follow_journal",
    "format_eta",
    "journal_chrome_trace",
    "rank_scenarios",
    "rate_of",
    "render_html",
    "render_report",
    "render_scorecard",
    "render_scorecard_rows",
    "render_text",
    "replay_journal",
    "summarize_journal",
    "summary_to_json",
]
