"""Timestamped experiment traces.

Every experiment in the repository produces its results by querying a trace:
the retransmission-interval tables come from filtering retransmit events,
the GMP tables from membership-change events, and so on.  A trace entry is a
(virtual time, kind, attributes) triple; kinds use dotted names
("tcp.retransmit", "gmp.commit", "pfi.drop") so queries can match by prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One recorded event."""

    time: float
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attrs.items()))
        return f"[{self.time:10.3f}] {self.kind}({attrs})"


class TraceRecorder:
    """Append-only store of :class:`TraceEntry` objects.

    The recorder is deliberately permissive about attribute payloads; shape
    checking belongs to the analysis layer, not the capture path.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._entries: List[TraceEntry] = []
        self._clock = clock

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source used when ``record`` is called without t."""
        self._clock = clock

    def __getstate__(self) -> dict:
        # the bound clock usually closes over a live scheduler and is not
        # picklable; recorded entries are what travels between campaign
        # worker processes -- rebind a clock after unpickling if needed
        state = self.__dict__.copy()
        state["_clock"] = None
        return state

    def record(self, kind: str, *, t: Optional[float] = None, **attrs: Any) -> TraceEntry:
        """Append an entry.  Time defaults to the bound clock."""
        if t is None:
            if self._clock is None:
                raise RuntimeError("TraceRecorder has no clock bound; pass t=")
            t = self._clock()
        entry = TraceEntry(t, kind, attrs)
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def entries(self, kind: Optional[str] = None, **attr_filter: Any) -> List[TraceEntry]:
        """Entries matching an exact kind and attribute equality filters."""
        result = []
        for entry in self._entries:
            if kind is not None and entry.kind != kind:
                continue
            if all(entry.get(k) == v for k, v in attr_filter.items()):
                result.append(entry)
        return result

    def entries_with_prefix(self, prefix: str, **attr_filter: Any) -> List[TraceEntry]:
        """Entries whose kind starts with ``prefix`` ("tcp." etc.)."""
        result = []
        for entry in self._entries:
            if not entry.kind.startswith(prefix):
                continue
            if all(entry.get(k) == v for k, v in attr_filter.items()):
                result.append(entry)
        return result

    def times(self, kind: str, **attr_filter: Any) -> List[float]:
        """Timestamps of matching entries, in capture order."""
        return [entry.time for entry in self.entries(kind, **attr_filter)]

    def intervals(self, kind: str, **attr_filter: Any) -> List[float]:
        """Successive differences between matching entries' timestamps.

        This is how retransmission-interval series (Figure 4) are derived
        from raw retransmit events.
        """
        times = self.times(kind, **attr_filter)
        return [b - a for a, b in zip(times, times[1:])]

    def count(self, kind: str, **attr_filter: Any) -> int:
        """Number of matching entries."""
        return len(self.entries(kind, **attr_filter))

    def first(self, kind: str, **attr_filter: Any) -> Optional[TraceEntry]:
        """Earliest matching entry, or None."""
        matches = self.entries(kind, **attr_filter)
        return matches[0] if matches else None

    def last(self, kind: str, **attr_filter: Any) -> Optional[TraceEntry]:
        """Latest matching entry, or None."""
        matches = self.entries(kind, **attr_filter)
        return matches[-1] if matches else None

    def count_by_kind(self, prefix: str = "") -> Dict[str, int]:
        """``{kind: count}`` over the captured entries.

        The cheap aggregate behind ``repro report`` summaries and
        :func:`repro.obs.report.trace_metrics`.
        """
        counts: Dict[str, int] = {}
        for entry in self._entries:
            if prefix and not entry.kind.startswith(prefix):
                continue
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    def span(self) -> Optional[tuple]:
        """``(first_time, last_time)`` over all entries, or None if empty.

        Entries arrive clock-ordered from a live run, but loaded or
        merged traces may not be sorted, so both ends are scanned.
        """
        if not self._entries:
            return None
        times = [e.time for e in self._entries]
        return (min(times), max(times))

    def fill_metrics(self, registry, **labels: Any) -> None:
        """Absorb this trace's aggregates into a metrics registry.

        Writes one ``trace_entries`` gauge per kind (plus the total), so
        a campaign worker's capture volume shows up next to the
        scheduler/interp series in one snapshot.
        """
        registry.gauge("trace_entries_total", **labels).set(
            len(self._entries))
        for kind, count in self.count_by_kind().items():
            registry.gauge("trace_entries", kind=kind, **labels).set(count)

    def clear(self) -> None:
        """Drop all captured entries."""
        self._entries.clear()

    def dump(self, kind_prefix: str = "") -> str:
        """Human-readable rendering, optionally restricted by kind prefix."""
        lines = [repr(e) for e in self._entries if e.kind.startswith(kind_prefix)]
        return "\n".join(lines)
