"""Observability overhead: the hooks must be free when nobody watches.

The PR that added ``repro.obs`` threads instrumentation through every
layer -- metrics counter handles in the PFI data path, a profiler test in
the tclish compiled executor, telemetry capture around ``Campaign.run``.
The design contract is *zero cost when disabled*: hooks are pre-bound
handles and ``is not None`` tests, never per-event allocation.

This bench holds the contract numerically.  It runs the same campaign
workload as ``bench_perf_campaign`` three ways:

- **baseline**: ``telemetry=False`` -- the pre-observability execution
  path;
- **disabled**: defaults -- every hook present, no profiler or scorecard
  attached (what normal runs pay);
- **enabled**: filters installed with PFI tracing active plus an attached
  script profiler (what debugging runs pay).

Each mode is measured best-of-``repeats`` interleaved, so CPU drift hits
every mode equally.  The headline number is ``disabled_overhead_pct``,
asserted under ``MAX_DISABLED_OVERHEAD_PCT`` (3%, with slack for timer
noise on tiny quick runs).  Results land in ``BENCH_OBS.json``.

The campaign flight recorder (``repro.obs.journal``) added a fourth
mode -- **journal**: the default path plus an attached JSONL journal,
one appended event per run.  Its overhead over the default path is the
``journal_overhead_pct`` section, gated at
``MAX_JOURNAL_OVERHEAD_PCT`` (3%): journaling must stay cheap enough
to leave on for every long sweep.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import perf_common

from repro.core.orchestrator import Campaign

#: acceptance bound: default-path (hooks present, nothing attached)
#: overhead over the telemetry=False baseline
MAX_DISABLED_OVERHEAD_PCT = 3.0

#: acceptance bound: journal-enabled sweep over the default path
MAX_JOURNAL_OVERHEAD_PCT = 3.0

BENCH_OBS_JSON = perf_common.ROOT / "BENCH_OBS.json"


class _Ticker:
    """Callable timer chain (a closure would trip the SC101 preflight)."""

    def __init__(self, env, dist, target):
        self.env = env
        self.dist = dist
        self.target = target
        self.fired = 0
        self.acc = 0.0

    def __call__(self):
        self.fired += 1
        self.acc += self.dist.dst_uniform(0.0, 1.0)
        if self.fired < self.target:
            self.env.scheduler.schedule(
                self.dist.dst_exponential(50.0), self)


def campaign_body(env, config):
    """The bench_perf_campaign timer-chain workload, PFI-free."""
    dist = env.dist("load", config["profile"])
    ticker = _Ticker(env, dist, config["events"])
    env.scheduler.schedule(0.0, ticker)
    final_time = env.run_until_quiet()
    return {"fired": ticker.fired, "acc": round(ticker.acc, 9),
            "final_time": round(final_time, 9)}


def _make_pfi_env(env):
    from repro.core.pfi import PFILayer
    from repro.core.stubs import PacketStubs
    from repro.xkernel.protocol import Protocol
    from repro.xkernel.stack import ProtocolStack

    stubs = PacketStubs()
    stubs.register_recognizer(lambda m: m.meta.get("type", "DATA"))

    class Sink(Protocol):
        def __init__(self, name):
            super().__init__(name)

        def push(self, msg):
            pass

        def pop(self, msg):
            pass

    pfi = PFILayer("pfi", env.scheduler, stubs, trace=env.trace,
                   node="bench")
    ProtocolStack().build(Sink("top"), pfi, Sink("bottom"))
    return pfi


class _ObservedTicker:
    """Timer chain that also pushes each event through a PFI layer."""

    def __init__(self, env, dist, target, pfi):
        self.env = env
        self.dist = dist
        self.target = target
        self.pfi = pfi
        self.fired = 0
        self.acc = 0.0

    def __call__(self):
        from repro.xkernel.message import Message
        self.fired += 1
        self.acc += self.dist.dst_uniform(0.0, 1.0)
        self.pfi.push(Message(b"x", meta={"type": "DATA"}))
        if self.fired < self.target:
            self.env.scheduler.schedule(
                self.dist.dst_exponential(50.0), self)


def observed_body(env, config):
    """Timer chain where every event also pushes a message through a
    PFI layer running a profiled tclish filter: the all-hooks-on path."""
    from repro.core.script import TclishFilter

    dist = env.dist("load", config["profile"])
    pfi = _make_pfi_env(env)
    script = TclishFilter("set n [expr $n + 1]", init_script="set n 0",
                          name="bench-filter")
    script.enable_profiler()
    pfi.set_send_filter(script)
    ticker = _ObservedTicker(env, dist, config["events"], pfi)
    env.scheduler.schedule(0.0, ticker)
    final_time = env.run_until_quiet()
    return {"fired": ticker.fired, "final_time": round(final_time, 9)}


def _configs(count: int, events: int):
    return [{"profile": f"vendor{i}", "events": events}
            for i in range(count)]


def _measure(campaign, sweep, repeats: int, **run_kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        campaign.run(sweep, **run_kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def _measure_journaled(campaign, sweep) -> float:
    """One sweep with a fresh journal attached, journal discarded."""
    with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
        path = os.path.join(tmp, "sweep.jsonl")
        start = time.perf_counter()
        campaign.run(sweep, journal=path)
        return time.perf_counter() - start


def run_bench(configs: int = 4, events: int = 20_000, repeats: int = 3,
              verbose: bool = True) -> dict:
    """Measure the three observability modes; returns the JSON payload."""
    sweep = _configs(configs, events)
    bare = Campaign(campaign_body, seed=42)
    observed = Campaign(observed_body, seed=42)

    # interleave so thermal/scheduler drift hits every mode equally
    baseline_s = disabled_s = journal_s = float("inf")
    for _ in range(repeats):
        baseline_s = min(baseline_s,
                         _measure(bare, sweep, 1, telemetry=False))
        disabled_s = min(disabled_s, _measure(bare, sweep, 1))
        journal_s = min(journal_s, _measure_journaled(bare, sweep))
    enabled_s = _measure(observed, sweep, repeats)

    total_events = configs * events
    overhead_pct = (disabled_s - baseline_s) / baseline_s * 100.0
    journal_pct = (journal_s - disabled_s) / disabled_s * 100.0
    payload = {
        "configs": configs,
        "events_per_config": events,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "baseline_seconds": round(baseline_s, 4),
        "disabled_seconds": round(disabled_s, 4),
        "enabled_seconds": round(enabled_s, 4),
        "baseline_events_per_s": round(total_events / baseline_s),
        "disabled_events_per_s": round(total_events / disabled_s),
        "disabled_overhead_pct": round(overhead_pct, 2),
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
        "journal_seconds": round(journal_s, 4),
        "journal_events_per_s": round(total_events / journal_s),
        "journal_overhead_pct": round(journal_pct, 2),
        "max_journal_overhead_pct": MAX_JOURNAL_OVERHEAD_PCT,
    }
    if verbose:
        print(f"obs overhead: {configs} configs x {events} events, "
              f"best of {repeats}")
        print(f"  baseline (telemetry off) : {baseline_s:8.3f}s")
        print(f"  hooks disabled (default) : {disabled_s:8.3f}s "
              f"({overhead_pct:+.2f}%)")
        print(f"  journal attached         : {journal_s:8.3f}s "
              f"({journal_pct:+.2f}% over default)")
        print(f"  fully enabled (pfi+prof) : {enabled_s:8.3f}s")
    return payload


def check(payload: dict) -> None:
    """The acceptance gates: disabled hooks and the attached journal
    must both stay under their bounds."""
    assert payload["disabled_overhead_pct"] < MAX_DISABLED_OVERHEAD_PCT, (
        f"observability hooks cost "
        f"{payload['disabled_overhead_pct']:.2f}% with nothing attached "
        f"(bound: {MAX_DISABLED_OVERHEAD_PCT}%)\n{payload}")
    assert payload["journal_overhead_pct"] < MAX_JOURNAL_OVERHEAD_PCT, (
        f"flight-recorder journal cost "
        f"{payload['journal_overhead_pct']:.2f}% over the default path "
        f"(bound: {MAX_JOURNAL_OVERHEAD_PCT}%)\n{payload}")


def test_obs_overhead_quick():
    """CI smoke: tiny run; noise-prone, so only sanity-check the shape."""
    payload = run_bench(configs=2, events=2_000, repeats=2)
    assert payload["baseline_seconds"] > 0
    assert payload["enabled_seconds"] > 0
    assert payload["journal_seconds"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep, no JSON update, no gate")
    parser.add_argument("--configs", type=int, default=4)
    parser.add_argument("--events", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    if args.quick:
        run_bench(configs=2, events=2_000, repeats=2)
    else:
        result = run_bench(configs=args.configs, events=args.events,
                           repeats=args.repeats)
        check(result)
        BENCH_OBS_JSON.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"updated {BENCH_OBS_JSON}")
