"""Regenerates paper Table 3: TCP keep-alive results.

Paper rows:

- SunOS: first keep-alive at ~7200 s (SND.NXT-1 + 1 garbage byte);
  dropped probes retransmitted 8 times at 75 s intervals, then reset.
- AIX / NeXT: same schedule, probe carries no data.
- Solaris: first keep-alive at 6752 s (< 7200 s: a specification
  violation), exponential-backoff retransmissions, 7 of them, then the
  connection is dropped without a reset.  Answered probes repeat at the
  idle threshold indefinitely.
"""

from repro.analysis.tables import render_table
from repro.experiments.tcp_keepalive import run_all, table_rows
from repro.tcp import BSD_DERIVED

from conftest import emit


def test_table3_keepalive(once_benchmark):
    results = once_benchmark(run_all)
    emit("Table 3: TCP Keep-alive Results",
         render_table("(idle connection, keep-alive enabled)",
                      ["Implementation", "Results", "Comments"],
                      table_rows(results)))

    for name in BSD_DERIVED:
        row = results[name]
        assert abs(row.first_probe_at - 7200.0) < 5.0
        assert row.probe_retransmissions == 8
        assert row.reset_sent
        assert all(abs(i - 75.0) < 1.0 for i in row.retransmit_intervals)
    solaris = results["Solaris 2.3"]
    assert abs(solaris.first_probe_at - 6752.0) < 5.0
    assert solaris.first_probe_at < 7200.0, "the spec violation"
    assert solaris.probe_retransmissions == 7
    assert not solaris.reset_sent
    # probe formats
    assert results["SunOS 4.1.3"].garbage_byte
    assert not results["AIX 3.2.3"].garbage_byte
    # answered probes repeat forever at the idle interval
    for row in results.values():
        assert row.answered_still_open
