"""The paper's contribution: script-driven probing and fault injection.

Public surface:

- :class:`~repro.core.pfi.PFILayer` -- the probe/fault-injection layer,
  spliced between two adjacent layers of an
  :class:`~repro.xkernel.stack.ProtocolStack`;
- :class:`~repro.core.script.PythonFilter` /
  :class:`~repro.core.script.TclishFilter` -- the two filter-script
  backends;
- :class:`~repro.core.context.ScriptContext` -- what a filter sees
  (``cur_msg``, drop/delay/duplicate/hold/inject, persistent state, the
  peer interpreter, distributions, cross-node sync);
- :class:`~repro.core.stubs.PacketStubs` -- packet
  recognition/generation stubs;
- :mod:`~repro.core.faults` -- failure-model fault factories
  (crash/omission/timing/byzantine) and the severity lattice;
- :class:`~repro.core.driver.Driver` -- the traffic-generating layer
  above the target protocol;
- :func:`~repro.core.orchestrator.make_env` /
  :class:`~repro.core.orchestrator.Campaign` -- experiment plumbing.
"""

from repro.core import faults, genscripts, randomtest
from repro.core.context import ScriptContext
from repro.core.distributions import DistributionSet, derive_seed
from repro.core.driver import Driver
from repro.core.msglog import MessageLog
from repro.core.orchestrator import Campaign, ExperimentEnv, RunResult, make_env
from repro.core.pfi import PFILayer
from repro.core.schedule import FaultSchedule
from repro.core.script import FilterScript, PythonFilter, TclishFilter
from repro.core.stubs import PacketStubs, StubError, UNKNOWN_TYPE
from repro.core.sync import ScriptSync

__all__ = [
    "Campaign",
    "DistributionSet",
    "Driver",
    "ExperimentEnv",
    "FaultSchedule",
    "FilterScript",
    "MessageLog",
    "PFILayer",
    "PacketStubs",
    "PythonFilter",
    "RunResult",
    "ScriptContext",
    "ScriptSync",
    "StubError",
    "TclishFilter",
    "UNKNOWN_TYPE",
    "derive_seed",
    "faults",
    "genscripts",
    "make_env",
    "randomtest",
]
