"""Regenerates paper Table 6: GMP network partitions.

Two sub-experiments: an oscillating partition of five machines into
{1,2,3} / {4,5} (disjoint groups form, then re-merge on heal, repeatedly)
and the leader/crown-prince separation, where two different event
orderings reach the same end state: the crown prince alone, everyone else
with the leader.
"""

from repro.analysis.tables import render_table
from repro.experiments.gmp_partition import run_all

from conftest import emit


def test_table6_gmp_partitions(once_benchmark):
    results = once_benchmark(run_all)
    osc = results["oscillating"]
    lead = results["leader_detects_first"]
    prince = results["prince_detects_first"]
    rows = [
        ["Partition into two groups",
         f"two separate but disjoint groups formed "
         f"{osc.groups_during_partition[0]} and "
         f"{osc.groups_during_partition[1]}; a single group re-formed "
         f"after healing; {osc.cycles_observed} full cycles observed",
         "behaved as specified"],
        ["Leader/CrownP separation (leader detects first)",
         f"first MEMBERSHIP_CHANGE from node {lead.first_mover}; end "
         f"state: crown prince singleton, leader group "
         f"{lead.leader_group}",
         "behaved as specified"],
        ["Leader/CrownP separation (crown prince detects first)",
         f"first MEMBERSHIP_CHANGE from node {prince.first_mover}; end "
         f"state: crown prince singleton, leader group "
         f"{prince.leader_group}",
         "two possible paths, same end state"],
    ]
    emit("Table 6: Network Partition Experiment",
         render_table("(five machines; send filters drop by destination)",
                      ["Experiment", "Results", "Comments"], rows))

    assert osc.disjoint_groups_formed
    assert osc.merged_after_heal
    assert osc.cycles_observed >= 2
    assert lead.first_mover == 1 and prince.first_mover == 2
    for path in (lead, prince):
        assert path.crown_prince_singleton
        assert path.end_state_matches_paper
    assert lead.leader_group == prince.leader_group
