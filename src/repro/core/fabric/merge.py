"""Fold a fabric campaign directory's journals into one summary.

A fabric sweep's record is spread over one coordinator journal (sweep
lifecycle, cached rows, lease losses) and one journal per shard lease
(``shard-NNNN-tryA-WORKER.jsonl``: run starts/ends, prefix captures).
:func:`merge_campaign_dir` folds them into a single
:class:`~repro.obs.campaign_report.CampaignSummary` the existing
renderers -- scorecard text, JSON, HTML, and the merged per-group
capture-hits table -- consume unchanged.

Deduplication is by configuration index: a shard that was stolen but
whose original holder finished anyway yields two rows for the same
index, and a resumed attempt re-journals completed rows as cached hits.
Determinism makes every duplicate byte-identical on
:meth:`~repro.obs.campaign_report.RunRow.stable_key`, so the merge keeps
the first row per index in deterministic file order and the result is
the serial sweep's scorecard exactly -- which is the fabric's acceptance
oracle, not a convenience.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.obs.campaign_report import (CampaignSummary, RunRow,
                                       summarize_journal)


def campaign_journals(path: Union[str, Path]) -> List[Path]:
    """The journal files of a campaign directory, coordinator first.

    Accepts the fabric directory itself (looks in its ``journals/``
    subdirectory) or a bare directory of journal files.  Shard journals
    sort by name, which orders them (shard id, attempt, worker) --
    deterministic regardless of which worker raced ahead.
    """
    root = Path(path)
    journals = root / "journals"
    if not journals.is_dir():
        journals = root
    files = sorted(p for p in journals.glob("*.jsonl") if p.is_file())
    coordinator = [p for p in files if p.name == "coordinator.jsonl"]
    shards = [p for p in files if p.name != "coordinator.jsonl"]
    return coordinator + shards


def merge_campaign_dir(path: Union[str, Path]) -> CampaignSummary:
    """One :class:`CampaignSummary` for a directory of shard journals.

    The coordinator journal's last segment provides the sweep lifecycle
    (``campaign.start`` payload, phases, end status, worker-loss
    events); every journal contributes run rows, captures and errors,
    deduplicated by config index.  Works on partial directories too --
    a killed sweep merges into an INTERRUPTED summary listing exactly
    the rows that were durably recorded, the same contract a
    single-file journal has under ``repro report --campaign``.
    """
    root = Path(path)
    files = campaign_journals(root)
    if not files:
        raise FileNotFoundError(
            f"no campaign journals (*.jsonl) under {root}")
    merged = CampaignSummary(path=root)
    if files[0].name == "coordinator.jsonl":
        base = summarize_journal(files[0])
        merged.engine = base.engine
        merged.schema = base.schema
        merged.start = base.start
        merged.end = base.end
        merged.phases = base.phases
        merged.duration_s = base.duration_s
        merged.torn_tail_bytes = base.torn_tail_bytes
    rows: Dict[int, RunRow] = {}
    for file in files:
        # a shard journal has no campaign.start of its own; the same
        # fold still decodes its rows, so merged rows and single-journal
        # rows can never drift apart on stable keys
        summary = summarize_journal(file)
        for row in summary.runs:
            rows.setdefault(row.index, row)
        if file.name != "coordinator.jsonl":
            merged.checkpoints.extend(summary.checkpoints)
            merged.worker_errors.extend(summary.worker_errors)
            merged.torn_tail_bytes += summary.torn_tail_bytes
        else:
            merged.worker_errors.extend(summary.worker_errors)
    merged.runs = [rows[index] for index in sorted(rows)]
    return merged
