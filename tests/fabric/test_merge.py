"""Journal merging: shard records fold into the serial scorecard."""

import pytest

from repro.core.fabric import campaign_journals, merge_campaign_dir
from repro.core.orchestrator import (Campaign, _execute_config,
                                     _run_end_payload)
from repro.netsim import kinds as K
from repro.obs.campaign_report import summarize_journal
from repro.obs.journal import Journal
from tests.fabric.rig import chaos_body, make_configs


def _serial_rows(tmp_path, count):
    journal = tmp_path / "serial.jsonl"
    Campaign(chaos_body, seed=1995, lint="off").run(
        make_configs(count), journal=journal)
    return [row.stable_key() for row in summarize_journal(journal).runs]


def _write_shard(path, indices, configs):
    journal = Journal(path)
    for index in indices:
        result = _execute_config(chaos_body, 1995, configs[index])
        journal.record(K.CAMPAIGN_RUN_START, index=index,
                       label=f"item={configs[index]['item']}")
        journal.record(K.CAMPAIGN_RUN_END,
                       **_run_end_payload(index, result))
    journal.close()


def _write_coordinator(path, configs):
    journal = Journal(path)
    journal.start("campaign", backend="sockets", seed=1995,
                  configs=len(configs), workers=2)
    journal.record(K.CAMPAIGN_END, status="ok",
                   executed=len(configs), cached=0)
    journal.close()


def test_merge_matches_serial_scorecard(tmp_path):
    configs = make_configs(4)
    fabric = tmp_path / "fabric"
    (fabric / "journals").mkdir(parents=True)
    _write_coordinator(fabric / "journals" / "coordinator.jsonl", configs)
    _write_shard(fabric / "journals" / "shard-0000-try1-w1.jsonl",
                 [0, 1], configs)
    _write_shard(fabric / "journals" / "shard-0001-try1-w2.jsonl",
                 [2, 3], configs)
    merged = merge_campaign_dir(fabric)
    assert [row.stable_key() for row in merged.runs] \
        == _serial_rows(tmp_path, 4)
    assert merged.engine == "campaign"


def test_merge_dedupes_stolen_shard_duplicates(tmp_path):
    # shard 0 was stolen but its original holder finished anyway: both
    # attempts journaled the same rows; the merge keeps one per index
    configs = make_configs(3)
    fabric = tmp_path / "fabric"
    (fabric / "journals").mkdir(parents=True)
    _write_coordinator(fabric / "journals" / "coordinator.jsonl", configs)
    _write_shard(fabric / "journals" / "shard-0000-try1-w1.jsonl",
                 [0, 1, 2], configs)
    _write_shard(fabric / "journals" / "shard-0000-try2-w2.jsonl",
                 [0, 1, 2], configs)
    merged = merge_campaign_dir(fabric)
    assert [row.index for row in merged.runs] == [0, 1, 2]
    assert [row.stable_key() for row in merged.runs] \
        == _serial_rows(tmp_path, 3)


def test_merge_accepts_bare_journal_directory(tmp_path):
    # `repro report --campaign DIR` on a directory of journal files
    # (no journals/ subdirectory) works too
    configs = make_configs(2)
    bare = tmp_path / "bare"
    bare.mkdir()
    _write_shard(bare / "shard-0000-try1-w1.jsonl", [0, 1], configs)
    merged = merge_campaign_dir(bare)
    assert [row.index for row in merged.runs] == [0, 1]


def test_merge_partial_directory_lists_only_durable_rows(tmp_path):
    # a killed sweep: one shard journaled, the other never started
    configs = make_configs(4)
    fabric = tmp_path / "fabric"
    (fabric / "journals").mkdir(parents=True)
    _write_shard(fabric / "journals" / "shard-0000-try1-w1.jsonl",
                 [0, 1], configs)
    merged = merge_campaign_dir(fabric)
    assert [row.index for row in merged.runs] == [0, 1]


def test_merge_empty_directory_raises(tmp_path):
    empty = tmp_path / "nothing"
    empty.mkdir()
    with pytest.raises(FileNotFoundError):
        merge_campaign_dir(empty)


def test_campaign_journals_orders_coordinator_first(tmp_path):
    journals = tmp_path / "fabric" / "journals"
    journals.mkdir(parents=True)
    for name in ("shard-0001-try1-w2.jsonl", "coordinator.jsonl",
                 "shard-0000-try1-w1.jsonl", "notes.txt"):
        (journals / name).write_text("")
    names = [p.name for p in campaign_journals(tmp_path / "fabric")]
    assert names == ["coordinator.jsonl", "shard-0000-try1-w1.jsonl",
                     "shard-0001-try1-w2.jsonl"]
