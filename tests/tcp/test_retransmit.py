"""Unit tests for the retransmission manager."""


from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.tcp.retransmit import RetransmissionManager
from repro.tcp.rtt import make_estimator
from repro.tcp.segment import ACK, PSH, Segment
from repro.tcp.vendors import SOLARIS_23, SUNOS_413


def make_manager(profile=SUNOS_413):
    sched = Scheduler()
    trace = TraceRecorder(clock=lambda: sched.now)
    sent = []
    gave_up = []
    manager = RetransmissionManager(
        sched, make_estimator(profile), profile,
        retransmit=sent.append, give_up=gave_up.append,
        trace=trace, name="test")
    return sched, manager, sent, gave_up, trace


def seg(seq, length=512):
    return Segment(src_port=1, dst_port=2, seq=seq, ack=0,
                   flags=ACK | PSH, window=4096, payload=b"x" * length)


class TestTracking:
    def test_track_arms_timer(self):
        sched, mgr, sent, _, _ = make_manager()
        mgr.track(seg(100))
        assert mgr.outstanding == 1
        sched.run_until(mgr.current_rto() + 0.1)
        assert len(sent) == 1

    def test_ack_removes_and_stops_timer(self):
        sched, mgr, sent, _, _ = make_manager()
        mgr.track(seg(100))
        assert mgr.on_ack(100 + 512)
        sched.run_until(500.0)
        assert sent == []
        assert mgr.outstanding == 0

    def test_cumulative_ack_removes_multiple(self):
        sched, mgr, _, _, _ = make_manager()
        mgr.track(seg(100))
        mgr.track(seg(612))
        mgr.track(seg(1124))
        mgr.on_ack(1124)  # covers first two
        assert mgr.outstanding == 1

    def test_partial_ack_keeps_timer_running(self):
        sched, mgr, sent, _, _ = make_manager()
        mgr.track(seg(100))
        mgr.track(seg(612))
        mgr.on_ack(612)
        sched.run_until(200.0)
        assert any(s.seq == 612 for s in sent)

    def test_stale_ack_ignored(self):
        sched, mgr, _, _, _ = make_manager()
        mgr.track(seg(100))
        assert mgr.on_ack(100) is False
        assert mgr.outstanding == 1


class TestBackoff:
    def test_exponential_backoff_to_cap(self):
        sched, mgr, sent, _, trace = make_manager()
        mgr.track(seg(100))
        sched.run_until(700.0)
        times = trace.times("tcp.retransmit")
        intervals = [b - a for a, b in zip(times, times[1:])]
        for prev, cur in zip(intervals, intervals[1:]):
            assert cur >= prev * 0.99  # non-decreasing
        assert max(intervals) <= SUNOS_413.max_rto + 1e-6

    def test_backoff_reset_by_unambiguous_ack(self):
        sched, mgr, _, _, _ = make_manager()
        mgr.track(seg(100))
        sched.run_until(20.0)  # several timeouts: shift grows
        assert mgr.backoff_shift >= 2
        mgr.track(seg(612))
        mgr.on_ack(612)        # acked the retransmitted one... ambiguous
        assert mgr.backoff_shift >= 2
        mgr.track(seg(1124))
        sched.run_until(sched.now + 0.01)
        mgr.on_ack(1636)       # never-retransmitted segment: unambiguous
        assert mgr.backoff_shift == 0


class TestGiveUp:
    def test_bsd_gives_up_after_max_retransmits(self):
        sched, mgr, sent, gave_up, _ = make_manager(SUNOS_413)
        mgr.track(seg(100))
        sched.run_until(2000.0)
        assert len(sent) == SUNOS_413.max_retransmits
        assert len(gave_up) == 1
        # no further retransmissions after giving up
        sched.run_until(3000.0)
        assert len(sent) == SUNOS_413.max_retransmits

    def test_solaris_global_counter_gives_up(self):
        sched, mgr, sent, gave_up, _ = make_manager(SOLARIS_23)
        mgr.track(seg(100))
        sched.run_until(2000.0)
        assert len(sent) == SOLARIS_23.global_fault_threshold
        assert len(gave_up) == 1

    def test_global_counter_spans_segments(self):
        """The Experiment 2 discovery: the counter is per connection."""
        sched, mgr, sent, gave_up, _ = make_manager(SOLARIS_23)
        mgr.track(seg(100))
        # let it retransmit a few times
        sched.run_until(3.0)
        m1_retx = len(sent)
        assert m1_retx >= 3
        # an *ambiguous* ACK arrives for m1 (it was retransmitted)
        mgr.on_ack(612)
        assert mgr.global_faults == m1_retx  # not reset
        # m2 only gets the remaining budget
        mgr.track(seg(612))
        sched.run_until(2000.0)
        assert len(gave_up) == 1
        total = len(sent)
        assert total == SOLARIS_23.global_fault_threshold

    def test_global_counter_reset_by_unambiguous_ack(self):
        sched, mgr, sent, _, _ = make_manager(SOLARIS_23)
        mgr.track(seg(100))
        sched.run_until(3.0)
        assert mgr.global_faults > 0
        mgr.track(seg(612))
        mgr.on_ack(100 + 512)  # still ambiguous (covers retransmitted m1)
        assert mgr.global_faults > 0
        mgr.on_ack(612 + 512)  # m2 was never retransmitted: unambiguous
        assert mgr.global_faults == 0

    def test_stop_halts_everything(self):
        sched, mgr, sent, gave_up, _ = make_manager()
        mgr.track(seg(100))
        mgr.stop()
        sched.run_until(1000.0)
        assert sent == []
        assert gave_up == []


class TestKarnSampling:
    def test_valid_sample_taken(self):
        sched, mgr, _, _, _ = make_manager()
        mgr.track(seg(100))
        sched.run_until(0.05)
        mgr.on_ack(612)
        assert mgr.estimator.sample_count == 1

    def test_retransmitted_segment_not_sampled_under_karn(self):
        sched, mgr, sent, _, _ = make_manager(SUNOS_413)
        mgr.track(seg(100))
        sched.run_until(5.0)   # at least one retransmission
        assert len(sent) >= 1
        mgr.on_ack(612)
        assert mgr.estimator.sample_count == 0

    def test_pre_karn_estimator_samples_ambiguous(self):
        sched, mgr, sent, _, _ = make_manager(SOLARIS_23)
        mgr.track(seg(100))
        sched.run_until(2.0)
        assert len(sent) >= 1
        mgr.on_ack(612)
        assert mgr.estimator.sample_count == 1
