"""Property-based tests for the scheduler: ordering and clock invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.scheduler import Scheduler

delays = st.lists(st.floats(min_value=0.0, max_value=1000.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=50)


@given(delays)
def test_events_always_dispatch_in_nondecreasing_time(delay_list):
    sched = Scheduler()
    fire_times = []
    for delay in delay_list:
        sched.schedule(delay, lambda: fire_times.append(sched.now))
    sched.run()
    assert fire_times == sorted(fire_times)
    assert len(fire_times) == len(delay_list)


@given(delays)
def test_clock_never_goes_backwards(delay_list):
    sched = Scheduler()
    observations = []
    for delay in delay_list:
        sched.schedule(delay, lambda: observations.append(sched.now))
    last = -1.0
    while sched.step():
        assert sched.now >= last
        last = sched.now


@given(delays, st.integers(min_value=0, max_value=49))
def test_cancellation_removes_exactly_that_event(delay_list, cancel_index):
    sched = Scheduler()
    fired = []
    events = []
    for i, delay in enumerate(delay_list):
        events.append(sched.schedule(delay, fired.append, i))
    victim = cancel_index % len(events)
    events[victim].cancel()
    sched.run()
    assert victim not in fired
    assert sorted(fired) == [i for i in range(len(delay_list)) if i != victim]


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.integers(min_value=0, max_value=5)),
                min_size=1, max_size=30))
def test_same_time_events_preserve_scheduling_order(pairs):
    sched = Scheduler()
    fired = []
    for i, (delay, bucket) in enumerate(pairs):
        sched.schedule(float(bucket), fired.append, (bucket, i))
    sched.run()
    # within each time bucket, sequence numbers must be increasing
    for bucket in {b for _, b in pairs}:
        in_bucket = [i for b, i in fired if b == bucket]
        assert in_bucket == sorted(in_bucket)


@given(delays)
@settings(max_examples=25)
def test_run_until_partitions_cleanly(delay_list):
    """Running to t then to the end fires every event exactly once."""
    boundary = 500.0
    sched = Scheduler()
    fired = []
    for delay in delay_list:
        sched.schedule(delay, fired.append, delay)
    sched.run_until(boundary)
    early = list(fired)
    assert all(d <= boundary for d in early)
    sched.run()
    assert sorted(fired) == sorted(delay_list)
