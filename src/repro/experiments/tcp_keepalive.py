"""Experiment TCP-3 (paper Table 3): keep-alive probing.

Variant A ("dropped"): "the receive filter of the PFI layer was configured
to drop all incoming packets" (after the handshake) while the vendor
machine has keep-alive enabled on an otherwise idle connection.  Expected:

- SunOS: first probe ~7200 s after the connection opened (probe format
  SND.NXT-1 with one garbage byte), retransmitted 8 times at 75 s
  intervals, then a reset and the connection drops;
- AIX/NeXT: same schedule, probe carries no garbage byte;
- Solaris: first probe at 6752 s (violating the >= 7200 s requirement),
  retransmitted with exponential backoff 7 times, then the connection is
  dropped without a reset.

Variant B ("answered"): probes are ACKed; they repeat at the idle
threshold indefinitely (the paper ran Solaris for 112 hours / 60 probes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.shape import intervals_of
from repro.core import ScriptContext
from repro.experiments.tcp_common import (build_tcp_testbed,
                                          open_connection)
from repro.tcp import VENDORS, VendorProfile


@dataclass
class KeepAliveResult:
    """One Table 3 row (both variants)."""

    vendor: str
    # variant A: probes dropped
    first_probe_at: Optional[float]
    probe_retransmissions: int
    retransmit_intervals: List[float] = field(default_factory=list)
    reset_sent: bool = False
    close_reason: Optional[str] = None
    garbage_byte: bool = False
    probe_seq_is_nxt_minus_1: bool = False
    # variant B: probes answered
    answered_probe_intervals: List[float] = field(default_factory=list)
    answered_still_open: bool = False


def drop_all_incoming():
    """Receive filter: log and drop every incoming packet.

    Installed after the handshake completes, matching the paper's setup
    (the connection is opened first, then the filter starts dropping).
    """
    def receive_filter(ctx: ScriptContext) -> None:
        ctx.log("dropped by keep-alive experiment")
        ctx.drop()
    return receive_filter


def execute_dropped(vendor: VendorProfile, *, seed: int = 0,
                    max_time: float = 40_000.0):
    """Drive variant A; returns ``(testbed, client, opened_at)``."""
    testbed = build_tcp_testbed(vendor, seed=seed)
    client, _server = open_connection(testbed)
    opened_at = testbed.scheduler.now
    client.enable_keepalive()
    testbed.pfi.set_receive_filter(drop_all_incoming())
    testbed.env.run_until(max_time)
    return testbed, client, opened_at


def run_keepalive_dropped(vendor: VendorProfile, *, seed: int = 0,
                          max_time: float = 40_000.0) -> KeepAliveResult:
    """Variant A: keep-alive probes never answered."""
    testbed, client, opened_at = execute_dropped(vendor, seed=seed,
                                                 max_time=max_time)
    conn = "vendor:5000"
    trace = testbed.trace
    probes = trace.entries("tcp.transmit", conn=conn, purpose="keepalive_probe")
    probe_times = [p.time for p in probes]
    resets = trace.entries("tcp.transmit", conn=conn, msg_type="RST")
    dropped = trace.first("tcp.conn_dropped", conn=conn)
    garbage = bool(probes) and probes[0].get("length", 0) == 1
    seq_ok = False
    if probes:
        # SEG.SEQ must be SND.NXT - 1 (one below the next sequence number)
        snd_nxt = client.iss + 1  # handshake consumed one sequence number
        seq_ok = probes[0].get("seq") == (snd_nxt - 1) % (1 << 32)
    return KeepAliveResult(
        vendor=vendor.name,
        first_probe_at=(probe_times[0] - opened_at) if probe_times else None,
        probe_retransmissions=max(0, len(probe_times) - 1),
        retransmit_intervals=intervals_of(probe_times),
        reset_sent=bool(resets),
        close_reason=dropped.get("reason") if dropped else None,
        garbage_byte=garbage,
        probe_seq_is_nxt_minus_1=seq_ok,
    )


def execute_answered(vendor: VendorProfile, *, seed: int = 0,
                     probes_to_observe: int = 5):
    """Drive variant B; returns ``(testbed, client)``."""
    testbed = build_tcp_testbed(vendor, seed=seed)
    client, _server = open_connection(testbed)
    client.enable_keepalive()
    # no filters: the x-kernel TCP answers each probe with a duplicate ACK
    horizon = vendor.ka_idle * (probes_to_observe + 1.5)
    testbed.env.run_until(horizon)
    return testbed, client


def run_keepalive_answered(vendor: VendorProfile, *, seed: int = 0,
                           probes_to_observe: int = 5) -> KeepAliveResult:
    """Variant B: probes are ACKed; measure the inter-probe interval."""
    testbed, client = execute_answered(vendor, seed=seed,
                                       probes_to_observe=probes_to_observe)
    conn = "vendor:5000"
    probes = testbed.trace.entries("tcp.transmit", conn=conn,
                                   purpose="keepalive_probe")
    probe_times = [p.time for p in probes]
    return KeepAliveResult(
        vendor=vendor.name,
        first_probe_at=probe_times[0] if probe_times else None,
        probe_retransmissions=0,
        answered_probe_intervals=intervals_of(probe_times),
        answered_still_open=client.state != "CLOSED",
    )


def run_all(seed: int = 0) -> Dict[str, KeepAliveResult]:
    """Table 3: dropped variant (merged with answered-variant intervals)."""
    results = {}
    for name, profile in VENDORS.items():
        dropped = run_keepalive_dropped(profile, seed=seed)
        answered = run_keepalive_answered(profile, seed=seed)
        dropped.answered_probe_intervals = answered.answered_probe_intervals
        dropped.answered_still_open = answered.answered_still_open
        results[name] = dropped
    return results


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import tcp_pack
    return tcp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite."""
    for name, profile in VENDORS.items():
        yield (f"keepalive/dropped/{name}",
               execute_dropped(profile, seed=seed)[0].trace)
        yield (f"keepalive/answered/{name}",
               execute_answered(profile, seed=seed)[0].trace)


def table_rows(results: Dict[str, KeepAliveResult]) -> List[List[object]]:
    rows = []
    for name, r in results.items():
        fmt = "SND.NXT-1 " + ("with 1 garbage byte" if r.garbage_byte
                              else "with 0 bytes of data")
        if r.answered_probe_intervals:
            steady = (f"answered probes repeat every "
                      f"~{r.answered_probe_intervals[0]:.0f} s")
        else:
            steady = "no steady-state probes observed"
        close = ("reset sent" if r.reset_sent else "no reset")
        rows.append([
            name,
            f"first keep-alive at {r.first_probe_at:.0f} s; "
            f"{r.probe_retransmissions} retransmissions; {close}",
            f"probe format {fmt}; {steady}",
        ])
    return rows
