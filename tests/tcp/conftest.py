"""Fixtures for TCP connection tests: a directly-wired connection pair."""

import pytest

from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.tcp.connection import TCPConnection
from repro.tcp.vendors import SUNOS_413, XKERNEL


class Pipe:
    """Duplex in-memory wire between two connections with latency and a
    programmable per-direction drop hook."""

    def __init__(self, scheduler, latency=0.002):
        self.scheduler = scheduler
        self.latency = latency
        self.a_to_b = None
        self.b_to_a = None
        self.drop_a_to_b = lambda seg: False
        self.drop_b_to_a = lambda seg: False
        self.log = []

    def send_from_a(self, seg):
        self.log.append(("a->b", self.scheduler.now, seg))
        if self.drop_a_to_b(seg):
            return
        self.scheduler.schedule(self.latency, self.b_to_a_conn.on_segment, seg)

    def send_from_b(self, seg):
        self.log.append(("b->a", self.scheduler.now, seg))
        if self.drop_b_to_a(seg):
            return
        self.scheduler.schedule(self.latency, self.a_to_b_conn.on_segment, seg)


class ConnPair:
    def __init__(self, profile_a=SUNOS_413, profile_b=XKERNEL, seed=0):
        self.scheduler = Scheduler()
        self.trace = TraceRecorder(clock=lambda: self.scheduler.now)
        self.pipe = Pipe(self.scheduler)
        self.a = TCPConnection(self.scheduler, profile_a, local_port=5000,
                               remote_port=80,
                               transmit=self.pipe.send_from_a,
                               trace=self.trace, name="a", iss=1000)
        self.b = TCPConnection(self.scheduler, profile_b, local_port=80,
                               remote_port=5000,
                               transmit=self.pipe.send_from_b,
                               trace=self.trace, name="b", iss=9000)
        self.pipe.a_to_b_conn = self.a
        self.pipe.b_to_a_conn = self.b

    def establish(self):
        self.b.listen()
        self.a.connect()
        self.scheduler.run_until(1.0)
        assert self.a.established and self.b.established
        return self

    def run(self, until):
        self.scheduler.run_until(until)


@pytest.fixture
def pair():
    return ConnPair().establish()


@pytest.fixture
def raw_pair():
    return ConnPair()
