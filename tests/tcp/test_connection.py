"""Unit tests for the TCP connection state machine."""

import pytest

from repro.tcp.connection import CLOSED, ESTABLISHED
from repro.tcp.segment import ACK, Segment
from repro.tcp.vendors import SOLARIS_23
from tests.tcp.conftest import ConnPair


class TestHandshake:
    def test_three_way_handshake(self, raw_pair):
        raw_pair.b.listen()
        raw_pair.a.connect()
        raw_pair.run(1.0)
        assert raw_pair.a.state == ESTABLISHED
        assert raw_pair.b.state == ESTABLISHED

    def test_handshake_consumes_one_seq(self, pair):
        assert pair.a.snd_nxt == pair.a.iss + 1
        assert pair.b.rcv_nxt == pair.a.iss + 1

    def test_on_established_callback(self, raw_pair):
        fired = []
        raw_pair.a.on_established = lambda: fired.append("a")
        raw_pair.b.listen()
        raw_pair.a.connect()
        raw_pair.run(1.0)
        assert fired == ["a"]

    def test_syn_retransmitted_if_lost(self, raw_pair):
        dropped = [0]

        def drop_first_syn(seg):
            if seg.is_syn and dropped[0] == 0:
                dropped[0] = 1
                return True
            return False

        raw_pair.pipe.drop_a_to_b = drop_first_syn
        raw_pair.b.listen()
        raw_pair.a.connect()
        raw_pair.run(10.0)
        assert raw_pair.a.established

    def test_connect_twice_raises(self, pair):
        with pytest.raises(RuntimeError):
            pair.a.connect()

    def test_listen_from_nonclosed_raises(self, pair):
        with pytest.raises(RuntimeError):
            pair.b.listen()


class TestDataTransfer:
    def test_simple_transfer(self, pair):
        pair.a.send(b"hello world")
        pair.run(2.0)
        assert bytes(pair.b.delivered) == b"hello world"

    def test_large_transfer_segmented(self, pair):
        data = bytes(range(256)) * 8  # 2048 bytes = 4 segments
        pair.a.send(data)
        pair.run(5.0)
        assert bytes(pair.b.delivered) == data

    def test_bidirectional_transfer(self, pair):
        pair.a.send(b"ping")
        pair.b.send(b"pong")
        pair.run(2.0)
        assert bytes(pair.b.delivered) == b"ping"
        assert bytes(pair.a.delivered) == b"pong"

    def test_on_data_callback(self, pair):
        got = []
        pair.b.on_data = got.append
        pair.a.send(b"chunk")
        pair.run(2.0)
        assert got == [b"chunk"]

    def test_lost_segment_retransmitted(self, pair):
        state = {"dropped": False}

        def drop_first_data(seg):
            if seg.payload and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        pair.pipe.drop_a_to_b = drop_first_data
        pair.a.send(b"eventually arrives")
        pair.run(10.0)
        assert bytes(pair.b.delivered) == b"eventually arrives"

    def test_duplicate_segment_delivered_once(self, pair):
        pair.a.send(b"once")
        pair.run(2.0)
        # replay the data segment verbatim
        data_segs = [s for d, t, s in pair.pipe.log if d == "a->b" and s.payload]
        pair.b.on_segment(data_segs[0].copy())
        pair.run(3.0)
        assert bytes(pair.b.delivered) == b"once"

    def test_send_before_establish_queues(self, raw_pair):
        raw_pair.b.listen()
        raw_pair.a.connect()
        raw_pair.a.send(b"early")
        raw_pair.run(2.0)
        assert bytes(raw_pair.b.delivered) == b"early"

    def test_out_of_order_queued_and_acked_together(self, pair):
        """Receiver-side behaviour behind paper Experiment 5."""
        held = []

        def hold_first(seg):
            if seg.payload and not held:
                held.append(seg)
                return True
            return False

        pair.pipe.drop_a_to_b = hold_first
        mss = pair.a.profile.mss
        pair.a.send(b"A" * mss)
        pair.a.send(b"B" * mss)
        pair.run(pair.scheduler.now + 0.05)
        assert pair.b.reassembly.segment_count == 1
        # now deliver the held first segment
        pair.b.on_segment(held[0])
        pair.run(pair.scheduler.now + 1.0)
        assert bytes(pair.b.delivered) == b"A" * mss + b"B" * mss


class TestFlowControl:
    def test_window_respected(self, pair):
        pair.b.set_consuming(False)
        buf = pair.b.profile.recv_buffer
        pair.a.send(b"x" * (buf + 2048))
        pair.run(10.0)
        assert pair.b.advertised_window() == 0
        assert pair.a.unsent_bytes() >= 2048 - pair.a.profile.mss

    def test_zero_window_starts_persist(self, pair):
        pair.b.set_consuming(False)
        pair.a.send(b"x" * (pair.b.profile.recv_buffer + 1024))
        pair.run(60.0)
        assert pair.a.persist.active
        assert pair.a.persist.probes_sent > 0

    def test_window_reopen_resumes_transfer(self, pair):
        pair.b.set_consuming(False)
        total = pair.b.profile.recv_buffer + 1024
        pair.a.send(b"y" * total)
        pair.run(30.0)
        pair.b.set_consuming(True)
        pair.run(120.0)
        assert len(pair.b.delivered) == total
        assert not pair.a.persist.active

    def test_window_update_sent_on_reopen(self, pair):
        pair.b.set_consuming(False)
        pair.a.send(b"z" * pair.b.profile.recv_buffer)
        pair.run(10.0)
        before = pair.trace.count("tcp.transmit", conn="b",
                                  purpose="window_update")
        pair.b.set_consuming(True)
        after = pair.trace.count("tcp.transmit", conn="b",
                                 purpose="window_update")
        assert after == before + 1


class TestTeardown:
    def test_graceful_close(self, pair):
        pair.a.close()
        pair.run(30.0)
        assert pair.b.state in ("CLOSE_WAIT", CLOSED)
        pair.b.close()
        pair.run(60.0)
        assert pair.a.state == CLOSED
        assert pair.b.state == CLOSED

    def test_rst_tears_down_peer(self, pair):
        pair.a.abort(send_reset=True)
        pair.run(2.0)
        assert pair.b.state == CLOSED
        assert pair.b.close_reason == "reset_received"

    def test_on_close_callback(self, pair):
        reasons = []
        pair.b.on_close = reasons.append
        pair.a.abort()
        pair.run(2.0)
        assert reasons == ["reset_received"]

    def test_retransmission_timeout_kills_connection(self, pair):
        pair.pipe.drop_a_to_b = lambda seg: True
        pair.a.send(b"into the void")
        pair.run(2000.0)
        assert pair.a.state == CLOSED
        assert pair.a.close_reason == "retransmission_timeout"

    def test_bsd_sends_reset_on_timeout(self, pair):
        sent = []
        pair.pipe.drop_a_to_b = lambda seg: sent.append(seg) or True
        pair.a.send(b"doomed")
        pair.run(2000.0)
        assert any(s.is_rst for s in sent)

    def test_solaris_closes_silently(self):
        pair = ConnPair(profile_a=SOLARIS_23).establish()
        sent = []
        pair.pipe.drop_a_to_b = lambda seg: sent.append(seg) or True
        pair.a.send(b"doomed")
        pair.run(2000.0)
        assert pair.a.state == CLOSED
        assert not any(s.is_rst for s in sent)

    def test_segment_to_closed_connection_gets_rst(self, raw_pair):
        seg = Segment(src_port=80, dst_port=5000, seq=1, ack=0,
                      flags=ACK, window=100)
        raw_pair.a.on_segment(seg)
        rsts = [s for d, t, s in raw_pair.pipe.log if s.is_rst]
        assert len(rsts) == 1


class TestCounters:
    def test_segment_counters(self, pair):
        pair.a.send(b"counted")
        pair.run(2.0)
        assert pair.a.segments_sent >= 2   # SYN + data (+ handshake ack)
        assert pair.b.segments_received >= 2

    def test_bytes_in_flight(self, pair):
        pair.pipe.drop_b_to_a = lambda seg: True  # no ACKs return
        pair.a.send(b"q" * 512)
        assert pair.a.bytes_in_flight() == 512
