"""Tests for scriptlint: each check against a seeded-buggy fixture.

Every fixture asserts the diagnostic code AND its 1-based line/column,
because a lint message pointing at the wrong place is nearly as useless
as no message at all.
"""

from repro.core.tclish.lint import (
    CODES,
    CommandRegistry,
    CommandSignature,
    Diagnostic,
    LintReport,
    builtin_registry,
    default_registry,
    lint_pair,
    lint_source,
    render_json,
    render_text,
)


def codes(report):
    return [d.code for d in report.sorted()]


def only(report, code):
    found = [d for d in report.sorted() if d.code == code]
    assert len(found) == 1, f"expected one {code}, got {codes(report)}"
    return found[0]


class TestSyntax:
    def test_unbalanced_brace_is_sl000(self):
        report = lint_source("if {$x > 1 { xDrop cur_msg }")
        assert "SL000" in codes(report)
        assert not report.ok()

    def test_clean_script_is_clean(self):
        report = lint_source(
            'if {[msg_type cur_msg] eq "ACK"} { xDelay 3.0 }')
        assert report.ok()
        assert codes(report) == []


class TestUnknownCommand:
    def test_misspelled_pfi_command(self):
        report = lint_source("set x 1\nxDropp cur_msg")
        d = only(report, "SL001")
        assert (d.line, d.col) == (2, 1)
        assert "xDropp" in d.message
        assert "xDrop" in d.hint          # did-you-mean

    def test_proc_defined_names_are_known(self):
        report = lint_source(
            "proc double {x} { return $x }\ndouble 4")
        assert "SL001" not in codes(report)

    def test_python_registered_name_needs_declaration(self):
        # a command registered from Python is unknown by default ...
        assert not lint_source("my_helper 1").ok()
        # ... and accepted once declared in the registry
        registry = default_registry()
        registry.add(CommandSignature("my_helper", 1, 1))
        assert lint_source("my_helper 1", registry=registry).ok()


class TestArity:
    def test_too_few_args(self):
        report = lint_source("peer_set onlyonearg")
        d = only(report, "SL002")
        assert (d.line, d.col) == (1, 1)
        assert "peer_set" in d.message

    def test_runtime_and_lint_agree(self):
        # the same signature drives both the static check and the
        # runtime usage error (see script.PFI_COMMANDS)
        from repro.core.script import PFI_COMMANDS
        sig = PFI_COMMANDS["peer_set"]
        assert not sig.accepts(1)
        assert sig.accepts(2)


class TestUseBeforeSet:
    def test_plain_read_before_set(self):
        report = lint_source("puts $counter")
        d = only(report, "SL003")
        assert d.line == 1
        assert "counter" in d.message

    def test_init_script_defines(self):
        report = lint_source(
            "incr seen\nif {$seen > 30} { xDrop cur_msg }",
            init_script="set seen 0")
        assert report.ok()

    def test_branch_join_both_arms_define(self):
        report = lint_source(
            "if {[chance 0.5]} { set y 1 } else { set y 2 }\nputs $y")
        assert "SL003" not in codes(report)

    def test_one_arm_is_maybe_not_error(self):
        # conservatively silent: set on only one path
        report = lint_source(
            "if {[chance 0.5]} { set y 1 }\nputs $y")
        assert "SL003" not in codes(report)

    def test_info_exists_guard_recognized(self):
        report = lint_source(
            "if {![info exists n]} { set n 0 }\nincr n\nputs $n")
        assert report.ok()

    def test_predefined_names_accepted(self):
        assert not lint_source("puts $vendor").ok()
        assert lint_source("puts $vendor", predefined=("vendor",)).ok()


class TestDeadAndConflicting:
    def test_code_after_return_is_sl004(self):
        report = lint_source("return ok\nset x 1")
        d = only(report, "SL004")
        assert (d.line, d.col) == (2, 1)
        assert d.severity == "warning"

    def test_action_after_unconditional_drop_is_sl005(self):
        report = lint_source("xDrop cur_msg\nxDelay 2.0")
        d = only(report, "SL005")
        assert (d.line, d.col) == (2, 1)
        assert "xDelay" in d.message

    def test_conditional_drop_does_not_poison(self):
        report = lint_source(
            "if {[chance 0.5]} { xDrop cur_msg }\nxDelay 2.0")
        assert "SL005" not in codes(report)


class TestConstantRanges:
    def test_chance_above_one(self):
        report = lint_source("chance 1.5")
        d = only(report, "SL006")
        assert (d.line, d.col) == (1, 8)

    def test_chance_negative(self):
        assert "SL006" in codes(lint_source("chance -0.2"))

    def test_negative_delay(self):
        d = only(lint_source("xDelay -1"), "SL007")
        assert (d.line, d.col) == (1, 8)

    def test_negative_duplicate_count(self):
        d = only(lint_source("xDuplicate cur_msg -3"), "SL007")
        assert (d.line, d.col) == (1, 20)

    def test_reversed_uniform_bounds_warn_only(self):
        report = lint_source("dst_uniform 5 2")
        d = only(report, "SL006")
        assert d.severity == "warning"
        assert report.ok()                 # warnings don't fail the report

    def test_valid_constants_clean(self):
        assert lint_source(
            "chance 0.5\nxDelay 3.0\ndst_uniform 1 2").ok()


class TestHoldRelease:
    def test_hold_without_release(self):
        d = only(lint_source("xHold cur_msg tagA"), "SL008")
        assert (d.line, d.col) == (1, 1)
        assert "tagA" in d.message

    def test_release_without_hold(self):
        d = only(lint_source("xRelease tagB"), "SL008")
        assert "tagB" in d.message

    def test_balanced_pair_clean(self):
        report = lint_source(
            "if {[chance 0.5]} { xHold cur_msg swap } "
            "else { xRelease swap }")
        assert "SL008" not in codes(report)


class TestPairChecks:
    def test_peer_key_typo_both_directions(self):
        report = lint_pair("peer_set count 5",
                           "set c [peer_get cuont 0]")
        found = [d for d in report.sorted() if d.code == "SL009"]
        assert len(found) == 2
        scripts = {d.script for d in found}
        assert scripts == {"send", "receive"}
        assert any("count" in d.hint for d in found)   # did-you-mean

    def test_sync_key_mismatch_is_warning(self):
        report = lint_pair("sync_set go", "sync_get halt")
        assert "SL010" in codes(report)
        assert report.ok()                 # warnings only

    def test_matched_keys_clean(self):
        report = lint_pair("peer_set n 1\nsync_set go",
                           "set x [peer_get n 0]\nmsg_log $x\nsync_get go")
        assert codes(report) == []


class TestReporting:
    def test_text_rendering_shape(self):
        report = lint_source("xDropp cur_msg", source_name="bad.tcl")
        text = render_text(report)
        assert "bad.tcl:1:1: error SL001" in text
        assert "1 error(s), 0 warning(s)" in text

    def test_clean_rendering(self):
        report = lint_source("set x 1\nmsg_log $x", source_name="ok.tcl")
        assert render_text(report) == "ok.tcl: clean"

    def test_json_rendering(self):
        import json
        report = lint_source("chance 2.0", source_name="j.tcl")
        payload = json.loads(render_json(report))
        assert payload["source"] == "j.tcl"
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["code"] == "SL006"
        assert payload["diagnostics"][0]["line"] == 1

    def test_every_code_documented(self):
        # the code table drives docs/scriptlint.md and docs/staticcheck.md:
        # keep them in sync (SL0xx scriptlint, SC1xx determinism, SC2xx
        # trace-schema drift)
        expected = {f"SL{i:03d}" for i in range(14)}
        expected |= {f"SC10{i}" for i in range(1, 7)}
        expected |= {f"SC20{i}" for i in range(1, 5)}
        assert set(CODES) == expected

    def test_diagnostics_sort_by_position(self):
        report = LintReport(source_name="s")
        report.extend([
            Diagnostic("SL001", "error", 5, 1, "b"),
            Diagnostic("SL001", "error", 1, 2, "a"),
        ])
        assert [d.line for d in report.sorted()] == [1, 5]


class TestRegistry:
    def test_builtin_registry_has_stdlib(self):
        registry = builtin_registry()
        for name in ("set", "if", "while", "proc", "expr", "puts"):
            assert name in registry

    def test_default_registry_adds_pfi_table(self):
        registry = default_registry()
        for name in ("xDrop", "xDelay", "chance", "peer_set", "msg_type"):
            assert name in registry

    def test_signature_accepts(self):
        sig = CommandSignature("f", min_args=1, max_args=2)
        assert not sig.accepts(0)
        assert sig.accepts(1) and sig.accepts(2)
        assert not sig.accepts(3)
        unbounded = CommandSignature("g", min_args=0, max_args=None)
        assert unbounded.accepts(99)

    def test_copy_isolates(self):
        base = builtin_registry()
        copy = base.copy()
        copy.add(CommandSignature("only_in_copy"))
        assert "only_in_copy" in copy
        assert "only_in_copy" not in base


class TestMultiDiagnostic:
    def test_all_problems_reported_at_once(self):
        report = lint_source(
            "xDropp cur_msg\nchance 1.5\npeer_set onlyone\nputs $ghost")
        got = set(codes(report))
        assert {"SL001", "SL006", "SL002", "SL003"} <= got
