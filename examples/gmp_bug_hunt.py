#!/usr/bin/env python3
"""Hunt the four historical GMP bugs with script-driven fault injection.

The paper's §4.2 story, replayed: a group membership implementation that
passed its authors' own tests harbours four bugs, each reachable only by
coercing the system into a hard-to-reach state.  This script drives the
buggy build into each state, shows the failure, then repeats the run on
the fixed build.

Run it::

    python examples/gmp_bug_hunt.py
"""

from repro.analysis.timeline import gmp_sequence
from repro.experiments.gmp_common import build_gmp_cluster
from repro.experiments.gmp_packet_interruption import (run_kick_rejoin_cycle,
                                                       run_self_death)
from repro.experiments.gmp_proclaim import (drop_proclaims_to_leader,
                                            run_proclaim_forwarding)
from repro.experiments.gmp_timer import run_timer_test
from repro.gmp import BugFlags


def hunt_self_death_bug():
    print("\n--- bug 1+2: the daemon that reported its own death ---------")
    print("fault: drop every outgoing heartbeat, including the loopback")
    buggy = run_self_death(bugs_on=True)
    print(f"  buggy build: self-death event fired: "
          f"{buggy.self_death_bug_fired}")
    print(f"               stayed in the old group, marked 'down': "
          f"{buggy.stayed_in_old_group}")
    print(f"               forwarded PROCLAIM silently lost "
          f"(wrong-parameter bug): {buggy.forward_param_bug_fired}")
    fixed = run_self_death(bugs_on=False)
    print(f"  fixed build: fell back to a singleton group: "
          f"{fixed.formed_singleton}; rejoined once healed: "
          f"{fixed.rejoined}")

    print("\n  the same state via SIGTSTP-style suspension:")
    suspended = run_self_death(bugs_on=True, via_suspend=True)
    print(f"  buggy build under suspend/resume: identical failure: "
          f"{suspended.self_death_bug_fired and suspended.stayed_in_old_group}")


def hunt_proclaim_loop():
    print("\n--- bug 3: the proclaim forwarding loop ----------------------")
    print("fault: drop the newcomer's PROCLAIM to the leader only, so it "
          "reaches the leader via the crown prince")
    buggy = run_proclaim_forwarding(bugs_on=True)
    print(f"  buggy build: leader<->prince proclaim loop: "
          f"{buggy.leader_prince_proclaims} messages in 5 virtual seconds; "
          f"newcomer admitted: {buggy.newcomer_admitted}")
    fixed = run_proclaim_forwarding(bugs_on=False)
    print(f"  fixed build: leader answered the originator; newcomer "
          f"admitted: {fixed.newcomer_admitted}")

    # the loop, drawn as the paper draws its exchanges
    cluster = build_gmp_cluster(
        [1, 2, 3], default_bugs=BugFlags(proclaim_reply_to_sender=True))
    cluster.start(1, 2)
    cluster.run_until(8.0)
    cluster.pfis[3].set_send_filter(drop_proclaims_to_leader)
    start = cluster.scheduler.now
    cluster.start(3)
    cluster.run_until(start + 0.2)
    print("\n  the first moments of the vicious cycle:")
    ladder = gmp_sequence(cluster.trace, [1, 2, 3], kinds={"PROCLAIM"},
                          start=start, lane_width=22)
    for line in ladder.render(max_events=10).splitlines():
        print("   " + line)


def hunt_timer_bug():
    print("\n--- bug 4: the inverted timer unregister ---------------------")
    print("fault: after a second MEMBERSHIP_CHANGE, drop incoming COMMITs "
          "and heartbeats, stranding the daemon IN_TRANSITION")
    buggy = run_timer_test(bugs_on=True)
    print(f"  buggy build: timers still armed in transition: "
          f"{buggy.timers_armed_in_transition}")
    print(f"               spurious heartbeat timeout fired: "
          f"{buggy.spurious_heartbeat_timeout}")
    fixed = run_timer_test(bugs_on=False)
    print(f"  fixed build: timers armed in transition: "
          f"{fixed.timers_armed_in_transition} (membership-change timer "
          f"only)")


def show_specified_behaviour():
    print("\n--- and behaviour that was correct all along ----------------")
    cycle = run_kick_rejoin_cycle()
    print(f"  drop-most-heartbeats: kicked out {cycle.times_kicked_out} "
          f"times, re-admitted {cycle.times_rejoined} times -- exactly as "
          f"specified")


def main():
    print("hunting the four bugs the PFI tool found in the GMP prototype")
    print("(each bug ships switchable in repro.gmp.bugs.BugFlags)")
    hunt_self_death_bug()
    hunt_proclaim_loop()
    hunt_timer_bug()
    show_specified_behaviour()
    print("\nall four bugs demonstrated and shown fixed.")


if __name__ == "__main__":
    main()
