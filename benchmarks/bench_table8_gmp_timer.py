"""Regenerates paper Table 8: the GMP timer test.

A daemon that joins one group and then receives a second
MEMBERSHIP_CHANGE must unset every timer except the membership-change
timer.  The historical unregister procedure "worked the opposite of how it
should have", leaving a heartbeat-expect timer armed: the daemon "timed
out waiting for a heartbeat message from the leader" while IN_TRANSITION.
"""

from repro.analysis.tables import render_table
from repro.experiments.gmp_timer import run_all

from conftest import emit


def test_table8_timer_test(once_benchmark):
    results = once_benchmark(run_all)
    buggy, fixed = results["buggy"], results["fixed"]
    rows = [
        ["As delivered (inverted unregister)",
         f"timers still armed while IN_TRANSITION: "
         f"{', '.join(buggy.timers_armed_in_transition)}; a spurious "
         f"heartbeat timeout fired for the leader",
         "logic error in the unregister-timeouts procedure"],
        ["After the fix",
         f"timers armed while IN_TRANSITION: "
         f"{', '.join(fixed.timers_armed_in_transition)} "
         f"(the membership-change timer only)",
         "behaved as specified"],
    ]
    emit("Table 8: GMP Timer Test",
         render_table("(second MEMBERSHIP_CHANGE; incoming COMMITs and "
                      "heartbeats dropped)",
                      ["Implementation", "Results", "Comments"], rows))

    assert buggy.second_change_received
    assert buggy.spurious_heartbeat_timeout
    assert "heartbeat_expect/1" in buggy.timers_armed_in_transition
    assert not fixed.spurious_heartbeat_timeout
    assert all(s.startswith("mc_timeout")
               for s in fixed.timers_armed_in_transition)
