"""tclish: a small Tcl-like interpreter for PFI filter scripts.

The paper argues that "inventing a new scripting language is not the
solution.  Instead, modifying and supporting a popular interpreted language
with a collection of predefined libraries gives the user a very effective
tool", and chose Tcl.  This package is a from-scratch implementation of the
Tcl subset those filter scripts need:

- command/word syntax with ``{}`` (no substitution), ``""`` (substitution),
  ``[]`` (command substitution), ``$var``/``${var}``, ``\\`` escapes, ``;``
  and newline command separators, ``#`` comments;
- control flow: ``if``/``elseif``/``else``, ``while``, ``for``,
  ``foreach``, ``break``, ``continue``, ``proc``/``return``/``global``,
  ``catch``, ``eval``;
- data: ``set``/``unset``/``append``/``incr``, lists (``list``,
  ``lindex``, ``llength``, ``lappend``, ``lrange``, ``concat``,
  ``split``, ``join``), ``string`` operations, ``format``;
- arithmetic via ``expr`` with its own substitution pass, so the idiomatic
  ``expr {$x + 1}`` works.

State (variables and procs) persists inside an :class:`Interp` across
evaluations, exactly like the paper's per-filter Tcl interpreter objects:
"since state of variables is stored in the interpreter object, the value of
this count is persistent across messages."

Protocol-facing commands (``msg_type``, ``xDrop``, ``msg_log``, ...) are not
defined here; the PFI layer registers them through
:meth:`Interp.register_command` (see :mod:`repro.core.script`).
"""

from repro.core.tclish.compiler import (
    CompiledScript,
    clear_cache,
    compile_script,
)
from repro.core.tclish.errors import (
    TclBreak,
    TclContinue,
    TclError,
    TclReturn,
)
from repro.core.tclish.interp import Interp

__all__ = [
    "CompiledScript",
    "Interp",
    "TclBreak",
    "TclContinue",
    "TclError",
    "TclReturn",
    "clear_cache",
    "compile_script",
]
