"""Tests for the bounded delivery-order explorer (repro.oracle.explore)."""

import pytest

from repro.netsim.link import Link
from repro.netsim.scheduler import Scheduler
from repro.netsim.timer import Timer
from repro.oracle.explore import (classify_event, describe_event, explore,
                                  _plans)


# ----------------------------------------------------------------------
# event classification
# ----------------------------------------------------------------------

def _pending(scheduler):
    return scheduler.pending_events()


def test_classify_link_delivery():
    sched = Scheduler()
    link = Link(sched, lambda payload: None, name="a->b")
    link.send(b"hello")
    (event,) = _pending(sched)
    assert classify_event(event) == "delivery"
    assert describe_event(event).startswith("deliver[a->b] bytes")


def test_classify_timer():
    sched = Scheduler()
    timer = Timer(sched, sched.run, name="retransmit/5")
    timer.start(2.0)
    (event,) = _pending(sched)
    assert classify_event(event) == "timer"
    assert describe_event(event) == "timer[retransmit/5] @2.000"


def test_classify_other():
    sched = Scheduler()

    def plain():
        pass

    sched.schedule(1.0, plain)
    (event,) = _pending(sched)
    assert classify_event(event) == "other"
    assert "plain" in describe_event(event)


# ----------------------------------------------------------------------
# plan enumeration
# ----------------------------------------------------------------------

STEPS = [("delivery", "d0"), ("other", "x"), ("timer", "t0")]


def test_plans_baseline_first_then_singles():
    plans = _plans(STEPS, max_perturbations=1, max_schedules=64)
    assert plans[0] == {}
    # two perturbable steps x two actions each; "other" untouched
    assert plans[1:] == [{0: "drop"}, {0: "defer"},
                         {2: "drop"}, {2: "defer"}]


def test_plans_pairs_when_allowed():
    plans = _plans(STEPS, max_perturbations=2, max_schedules=64)
    assert {0: "drop", 2: "drop"} in plans
    assert all(len(plan) <= 2 for plan in plans)
    # never two actions on the same step
    assert all(len(set(plan)) == len(plan) for plan in plans)


def test_plans_respect_schedule_budget():
    plans = _plans(STEPS * 10, max_perturbations=2, max_schedules=7)
    assert len(plans) == 7


# ----------------------------------------------------------------------
# end-to-end exploration
# ----------------------------------------------------------------------

def test_explore_rediscovers_gmp_self_death():
    report = explore("gmp", "self_death", max_schedules=32)
    assert report.baseline_codes == []  # undisturbed order is clean
    found = {code for finding in report.findings for code in finding.codes}
    assert "GMP-SELF-DEATH" in found
    # the culprit schedule suppressed something, it did not inject
    culprit = next(f for f in report.findings
                   if "GMP-SELF-DEATH" in f.codes)
    assert all(p.action in ("drop", "defer")
               for p in culprit.perturbations)


def test_explore_fixed_build_stays_clean():
    report = explore("gmp", "fixed", max_schedules=16)
    assert report.findings == []
    assert report.baseline_codes == []
    assert report.schedules == 16


def test_explore_is_deterministic():
    def run():
        report = explore("gmp", "self_death", max_schedules=12)
        return [(o.perturbations, o.codes, o.outcome_hash)
                for o in report.outcomes]
    assert run() == run()


def test_explore_collapses_equivalent_schedules():
    report = explore("gmp", "self_death", max_schedules=24)
    assert 1 <= report.distinct_outcomes <= report.schedules
    novel = [o for o in report.outcomes if o.novel]
    assert len(novel) == report.distinct_outcomes


def test_explore_tcp_smoke():
    report = explore("tcp", "SunOS 4.1.3", depth=5.0, window=0.5,
                     max_schedules=6)
    assert report.schedules >= 1
    assert report.depth == 5.0


def test_explore_rejects_unknown_target():
    with pytest.raises(ValueError, match="unknown gmp target"):
        explore("gmp", "no_such_variant")


def test_explore_progress_lines():
    lines = []
    explore("gmp", "self_death", max_schedules=20,
            progress=lines.append)
    assert any("GMP-SELF-DEATH" in line for line in lines)
    assert any("schedules" in line for line in lines)


# ----------------------------------------------------------------------
# checkpoint-tree re-forking
# ----------------------------------------------------------------------

def test_explore_counts_simulated_events():
    report = explore("gmp", "self_death", max_schedules=8)
    assert report.simulated_events > 0
    assert report.recheckpoint_every == 8  # the default interval
    assert "simulated" in report.render()
    assert "nested checkpoints" in report.render()


def test_explore_flat_mode_disables_the_tree():
    report = explore("gmp", "self_death", max_schedules=8,
                     recheckpoint_every=0)
    assert report.recheckpoint_every == 0
    assert report.nested_captures == 0
    assert report.ancestor_forks == 0
    assert "nested checkpoints" not in report.render()


def test_explore_nested_is_deterministic():
    def run():
        report = explore("gmp", "self_death", seed=2, max_schedules=16,
                         max_perturbations=2)
        return ([(o.perturbations, o.codes, o.outcome_hash)
                 for o in report.outcomes],
                report.simulated_events, report.nested_captures,
                report.ancestor_forks)
    assert run() == run()
