"""The fault-script grammar: lint-cleanliness, determinism, round-trips."""

import random

import pytest

from repro.core.script import PFI_COMMANDS
from repro.core.tclish.lint import lint_source
from repro.oracle.grammar import (GRAMMAR_COMMANDS, MAX_CLAUSES, Clause,
                                  FuzzScript, generate_script,
                                  mutate_script, seeded_sample, trial_seed)


def test_grammar_commands_are_all_registered():
    assert set(GRAMMAR_COMMANDS) <= set(PFI_COMMANDS)


@pytest.mark.parametrize("protocol", ["tcp", "gmp"])
def test_generated_scripts_lint_clean(protocol):
    rng = random.Random(42)
    for index in range(30):
        script = generate_script(rng, protocol, index=index)
        assert 1 <= len(script.clauses) <= MAX_CLAUSES
        assert script.direction in ("send", "receive")
        report = lint_source(script.source, init_script=script.init,
                             source_name=script.name)
        assert report.ok(), report


def test_generation_is_deterministic_in_the_rng():
    a = generate_script(random.Random(7), "gmp", index=3)
    b = generate_script(random.Random(7), "gmp", index=3)
    assert a == b


def test_mutation_yields_lint_clean_neighbours():
    rng = random.Random(1)
    script = generate_script(rng, "gmp", index=0)
    for index in range(20):
        script = mutate_script(rng, script, index=index)
        assert 1 <= len(script.clauses) <= MAX_CLAUSES
        report = lint_source(script.source, init_script=script.init)
        assert report.ok(), report


def test_script_round_trips_through_dicts():
    script = generate_script(random.Random(11), "tcp", index=5)
    assert FuzzScript.from_dict(script.to_dict()) == script
    clause = Clause(text="xDrop cur_msg", init="set n 0")
    assert Clause.from_dict(clause.to_dict()) == clause


def test_init_lines_are_deduplicated():
    clause = Clause(text="incr n", init="set n 0")
    script = FuzzScript(name="s", protocol="gmp", direction="send",
                        clauses=(clause, clause, Clause(text="xDelay 1.0")))
    assert script.init == "set n 0"


def test_unknown_protocol_is_rejected():
    with pytest.raises(ValueError, match="unknown protocol"):
        generate_script(random.Random(0), "udp")


def test_seeded_sample_matches_stdlib_semantics():
    items = list(range(20))
    assert seeded_sample(items, 5, seed=9) == \
        random.Random(9).sample(items, 5)
    # asking for everything (or more) returns the list unchanged
    assert seeded_sample(items, 20, seed=9) == items
    assert seeded_sample(items, 99, seed=9) == items


def test_trial_seed_is_order_insensitive_and_name_keyed():
    assert trial_seed(0, "a") == trial_seed(0, "a")
    assert trial_seed(0, "a") != trial_seed(0, "b")
    assert trial_seed(0, "a", 0) != trial_seed(0, "a", 1)
