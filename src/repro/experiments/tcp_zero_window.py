"""Experiment TCP-4 (paper Table 4): zero-window probing.

"The machine running the x-Kernel was configured such that when the driver
layer received data, it did not reset the receive buffer space inside the
TCP layer.  The result was a full window after several segments were
received."  Here that is ``TCPConnection.set_consuming(False)`` on the
x-Kernel endpoint.

Variant A ("acked"): zero-window probes are answered (window still 0);
the probe interval backs off exponentially to a 60 s cap (56 s Solaris)
and probing continues as long as the run lasts.

Variant B ("unacked"): "as soon as x-injector advertised a zero window,
the receive filter started dropping incoming packets" -- probes go
unanswered, yet all four implementations keep probing at the capped
interval "indefinitely".  The unplug/replug coda: the ethernet is pulled
for two (virtual) days and the senders are still probing when it returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.shape import (intervals_of, is_exponential_backoff,
                                  plateau_value)
from repro.core import ScriptContext
from repro.experiments.tcp_common import (VENDOR_ADDR, XKERNEL_ADDR,
                                          build_tcp_testbed, open_connection)
from repro.tcp import VENDORS, VendorProfile

DAY = 86_400.0


@dataclass
class ZeroWindowResult:
    """One Table 4 row."""

    vendor: str
    variant: str                      # "acked" / "unacked" / "unplugged"
    probes_sent: int
    intervals: List[float] = field(default_factory=list)
    plateau: Optional[float] = None
    backoff_exponential: bool = False
    still_probing_at_end: bool = False
    still_open: bool = False
    probes_after_replug: int = 0


def _fill_receiver_window(testbed, client, server) -> None:
    """Send enough data to exhaust the non-consuming receiver's buffer."""
    server.set_consuming(False)
    # recv_buffer bytes fill the window exactly; a little extra stays
    # queued at the sender and motivates the window probes
    total = server.profile.recv_buffer + 3 * client.profile.mss
    client.send(b"Z" * total)


def execute(vendor: VendorProfile, *, variant: str = "acked",
            seed: int = 0, run_for: float = 1800.0):
    """Drive one Table 4 cell; returns ``(testbed, client,
    probes_after_replug)``."""
    if variant not in ("acked", "unacked", "unplugged"):
        raise ValueError(f"unknown variant {variant!r}")
    testbed = build_tcp_testbed(vendor, seed=seed)
    client, server = open_connection(testbed)
    _fill_receiver_window(testbed, client, server)

    if variant != "acked":
        def drop_after_zero_window(ctx: ScriptContext) -> None:
            # arm once our side has advertised a zero window
            if not ctx.state.get("armed"):
                return
            ctx.log("dropped (zero-window phase)")
            ctx.drop()

        def watch_for_zero_window(ctx: ScriptContext) -> None:
            if ctx.msg_type() in ("ACK", "DATA") and ctx.field("window") == 0:
                ctx.set_peer("armed", True)

        testbed.pfi.set_receive_filter(drop_after_zero_window)
        testbed.pfi.set_send_filter(watch_for_zero_window)
        # note: watch_for_zero_window's set_peer writes into the receive
        # filter's state, which is exactly what drop_after_zero_window reads

    testbed.env.run_until(run_for)

    probes_after_replug = 0
    if variant == "unplugged":
        testbed.env.network.set_link_down(VENDOR_ADDR, XKERNEL_ADDR)
        testbed.env.run_until(run_for + 2 * DAY)
        testbed.env.network.set_link_up(VENDOR_ADDR, XKERNEL_ADDR)
        mark = len(_probe_times(testbed))
        testbed.env.run_until(run_for + 2 * DAY + 600.0)
        probes_after_replug = len(_probe_times(testbed)) - mark
    return testbed, client, probes_after_replug


def run_zero_window(vendor: VendorProfile, *, variant: str = "acked",
                    seed: int = 0, run_for: float = 1800.0) -> ZeroWindowResult:
    """Run one Table 4 cell."""
    testbed, client, probes_after_replug = execute(
        vendor, variant=variant, seed=seed, run_for=run_for)
    probe_times = _probe_times(testbed)
    intervals = intervals_of(probe_times)
    recent = [t for t in probe_times
              if t > testbed.scheduler.now - 2.5 * vendor.persist_max]
    return ZeroWindowResult(
        vendor=vendor.name,
        variant=variant,
        probes_sent=len(probe_times),
        intervals=intervals,
        plateau=plateau_value(intervals[:12], min_run=3),
        backoff_exponential=is_exponential_backoff(
            intervals[:8], cap=vendor.persist_max),
        still_probing_at_end=bool(recent),
        still_open=client.state != "CLOSED",
        probes_after_replug=probes_after_replug,
    )


def _probe_times(testbed) -> List[float]:
    probes = testbed.trace.entries("tcp.transmit", conn="vendor:5000",
                                   purpose="zwp_probe")
    return [p.time for p in probes]


def run_all(variant: str = "acked", seed: int = 0) -> Dict[str, ZeroWindowResult]:
    """One Table 4 column across vendors."""
    return {name: run_zero_window(profile, variant=variant, seed=seed)
            for name, profile in VENDORS.items()}


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import tcp_pack
    return tcp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite.

    Both answered and unanswered probing are covered; the two-day
    unplug coda exercises no additional probe mechanics, so it stays in
    the (slower) experiment tests.
    """
    for name, profile in VENDORS.items():
        for variant in ("acked", "unacked"):
            yield (f"zero_window/{variant}/{name}",
                   execute(profile, variant=variant, seed=seed)[0].trace)


def table_rows(results: Dict[str, ZeroWindowResult]) -> List[List[object]]:
    rows = []
    for name, r in results.items():
        plateau = (f"levels off at {r.plateau:.0f} s"
                   if r.plateau else "no plateau observed")
        persistence = ("probing continued indefinitely"
                       if r.still_probing_at_end else "probing stopped")
        rows.append([
            name,
            f"{r.probes_sent} probes; exponential backoff "
            f"{'yes' if r.backoff_exponential else 'NO'}; {plateau}",
            f"{persistence}; connection "
            f"{'open' if r.still_open else 'closed'} ({r.variant})",
        ])
    return rows
