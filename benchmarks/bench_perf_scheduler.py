"""Events-dispatched-per-second: tuple-heap scheduler vs the legacy one.

Every experiment in the repository is a pile of scheduler dispatches --
protocol timers, link latencies, injected delays -- so the dispatch loop
is the floor under all simulation throughput.  This bench times the
*run phase* (dispatching self-rescheduling timer chains, the shape real
experiments produce) of the current tuple-heap scheduler against an
embedded copy of the pre-overhaul scheduler, which stored orderable
:class:`Event` objects on the heap and went through ``step()``'s
method-call/peek machinery per event.

Scheduling and cancellation happen outside the timed window: the overhaul
targeted dispatch (tuple comparisons during sift, inline pop loop), while
schedule cost is dominated by Event-handle allocation in both versions.
"""

from __future__ import annotations

import argparse
import heapq
import time
from typing import Any, Callable, List, Optional

import perf_common

from repro.netsim.scheduler import Scheduler


# ----------------------------------------------------------------------
# the pre-overhaul scheduler, embedded verbatim in miniature so the bench
# keeps an honest baseline after the original is gone
# ----------------------------------------------------------------------

class _LegacyEvent:
    __slots__ = ("time", "seq", "callback", "args", "cancelled", "dispatched")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.dispatched = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_LegacyEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class LegacyScheduler:
    """Pre-overhaul dispatch loop: Event objects on the heap, per-event
    ``step()`` with peek/pop and attribute traffic."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: List[_LegacyEvent] = []
        self._seq = 0
        self.dispatched_count = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> _LegacyEvent:
        event = _LegacyEvent(self._now + delay, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def _pop_next(self) -> Optional[_LegacyEvent]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        event = self._pop_next()
        if event is None:
            return False
        event.dispatched = True
        self._now = event.time
        self.dispatched_count += 1
        event.callback(*event.args)
        return True

    def run(self, max_events: int = 10_000_000) -> int:
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise RuntimeError("event cascade")
        return fired


# ----------------------------------------------------------------------
# workload: self-rescheduling timer chains over a background event pile,
# with a cancellation stream -- the shape protocol experiments produce
# ----------------------------------------------------------------------

def _prepare(scheduler, chains: int, events_per_chain: int,
             background: int) -> None:
    """Outside the timed window: background events and chain kick-offs."""
    # background one-shot events interleaved through the chains' window,
    # so heap sifts work at realistic depth
    for i in range(background):
        scheduler.schedule(0.1 + (i % 97) * 0.01, _noop)
    # a cancellation stream: scheduled then cancelled, to be skipped lazily
    for i in range(background // 4):
        scheduler.schedule(0.05 + (i % 89) * 0.01, _noop).cancel()
    for c in range(chains):
        _chain_tick(scheduler, 0.001 * (c + 1), events_per_chain)


def _noop() -> None:
    pass


def _chain_tick(scheduler, period: float, remaining: int) -> None:
    if remaining > 0:
        scheduler.schedule(period, _chain_tick, scheduler, period,
                           remaining - 1)


def _time_run(scheduler) -> float:
    start = time.perf_counter()
    scheduler.run()
    return time.perf_counter() - start


def run_bench(chains: int = 20, events_per_chain: int = 1_000,
              background: int = 150_000, verbose: bool = True) -> dict:
    """Measure both schedulers on the same workload; returns the payload."""
    total = chains * events_per_chain + background
    # warm-up pass per engine, then the measured pass
    for _ in range(2):
        legacy = LegacyScheduler()
        _prepare(legacy, chains, events_per_chain, background)
        legacy_s = _time_run(legacy)
    for _ in range(2):
        current = Scheduler()
        _prepare(current, chains, events_per_chain, background)
        current_s = _time_run(current)
    assert current.dispatched_count == legacy.dispatched_count, (
        current.dispatched_count, legacy.dispatched_count)
    payload = {
        "events": total,
        "events_per_sec": round(total / current_s, 1),
        "legacy_events_per_sec": round(total / legacy_s, 1),
        "speedup": round(legacy_s / current_s, 2),
    }
    if verbose:
        print(f"scheduler dispatch throughput over {total} events:")
        print(f"  legacy     : {payload['legacy_events_per_sec']:>12,.1f} events/sec")
        print(f"  tuple-heap : {payload['events_per_sec']:>12,.1f} events/sec")
        print(f"  speedup    : {payload['speedup']:.2f}x")
    return payload


def test_perf_scheduler_quick():
    """CI smoke: the tuple-heap loop must stay well ahead of the legacy one."""
    payload = run_bench(chains=20, events_per_chain=500, background=5_000)
    assert payload["speedup"] >= 1.5, payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload, no JSON update")
    args = parser.parse_args()
    if args.quick:
        result = run_bench(chains=20, events_per_chain=500, background=5_000)
        assert result["speedup"] >= 1.5, result
    else:
        result = run_bench()
        assert result["speedup"] >= 2.0, result
        perf_common.update_bench_json("scheduler", result)
