"""The TCP connection state machine.

A :class:`TCPConnection` is one endpoint of a connection: handshake, data
transfer with flow control, retransmission, keep-alive, zero-window
probing, out-of-order reassembly, and teardown.  All vendor-specific
behaviour comes from the :class:`~repro.tcp.vendors.VendorProfile`; the
machine itself is shared.

The connection is transport-agnostic: it emits segments through a
``transmit(segment)`` callable supplied by whoever owns it (usually
:class:`repro.tcp.protocol.TCPProtocol`, which routes through the
protocol stack and hence through any spliced PFI layer) and ingests
segments via :meth:`on_segment`.

Simplifications relative to a production stack, none of which the paper's
experiments depend on: no congestion control (the experiments are
flow-control and timer driven), no urgent data, no TCP options/MSS
negotiation (both ends use the profile MSS), and an abbreviated TIME_WAIT.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.tcp.keepalive import KeepAliveEngine
from repro.tcp.reassembly import ReassemblyQueue
from repro.tcp.retransmit import RetransmissionManager, TrackedSegment
from repro.tcp.rtt import make_estimator
from repro.tcp.segment import (ACK, FIN, PSH, RST, SYN, Segment, classify,
                               seq_add, seq_leq, seq_lt, seq_sub)
from repro.tcp.vendors import VendorProfile
from repro.netsim import kinds as K

# connection states (RFC-793 names)
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"

_DATA_STATES = (ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2, CLOSE_WAIT)


class TCPConnection:
    """One endpoint of a TCP connection."""

    def __init__(self, scheduler: Scheduler, profile: VendorProfile, *,
                 local_port: int, remote_port: int,
                 transmit: Callable[[Segment], None],
                 trace: Optional[TraceRecorder] = None,
                 name: str = "", iss: int = 1000):
        self.scheduler = scheduler
        self.profile = profile
        self.local_port = local_port
        self.remote_port = remote_port
        self._transmit = transmit
        self.trace = trace
        self.name = name or f"{profile.name}:{local_port}"

        self.state = CLOSED
        self.close_reason: Optional[str] = None

        # send side
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        self.snd_wnd = 0
        self._send_buffer = bytearray()

        # receive side
        self.irs: Optional[int] = None
        self.rcv_nxt = 0
        self._rcv_pending = bytearray()  # accepted, not yet consumed by app
        self._consuming = True
        self.reassembly = ReassemblyQueue()

        # engines
        self.estimator = make_estimator(profile)
        self.retx = RetransmissionManager(
            scheduler, self.estimator, profile,
            retransmit=self._retransmit_segment,
            give_up=self._on_retx_give_up,
            trace=trace, name=self.name)
        self.keepalive = KeepAliveEngine(
            scheduler, profile,
            send_probe=self._send_keepalive_probe,
            on_dead=self._on_keepalive_dead,
            trace=trace, name=self.name)
        self.persist = PersistHook(self)
        from repro.netsim.timer import Timer as _Timer
        self._delack_timer = _Timer(scheduler, self._delack_fire,
                                    name=f"delack/{self.name}")
        self.congestion = None
        if profile.congestion_control:
            from repro.tcp.congestion import TahoeController
            from repro.netsim.scheduler import SchedulerClock
            self.congestion = TahoeController(
                profile, trace=trace, clock=SchedulerClock(scheduler),
                name=self.name)
            self.retx.on_timeout_event = self._on_congestion_timeout

        # app callbacks
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[str], None]] = None
        self.on_established: Optional[Callable[[], None]] = None

        # counters for experiments
        self.segments_sent = 0
        self.segments_received = 0
        self.resets_sent = 0
        self.delivered = bytearray()

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self._set_state(SYN_SENT)
        syn = self._emit(SYN, seq=self.snd_nxt, purpose="syn")
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self.retx.track(syn)

    def listen(self) -> None:
        """Passive open: wait for a SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"listen() in state {self.state}")
        self._set_state(LISTEN)

    def send(self, data: bytes) -> None:
        """Queue application data for transmission."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT, SYN_SENT, SYN_RCVD):
            raise RuntimeError(f"send() in state {self.state}")
        self._send_buffer.extend(data)
        self._try_send()

    def close(self) -> None:
        """Graceful close: FIN after pending data."""
        if self.state in (CLOSED, LISTEN):
            self._teardown("closed")
            return
        if self.state == ESTABLISHED:
            self._set_state(FIN_WAIT_1)
        elif self.state == CLOSE_WAIT:
            self._set_state(LAST_ACK)
        else:
            return
        fin = self._emit(FIN | ACK, seq=self.snd_nxt, purpose="fin")
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self.retx.track(fin)

    def abort(self, *, send_reset: bool = True, reason: str = "aborted") -> None:
        """Hard close, optionally emitting a RST."""
        if send_reset and self.state not in (CLOSED, LISTEN):
            self._send_reset()
        self._teardown(reason)

    def enable_keepalive(self) -> None:
        """Turn on keep-alive probing for this connection."""
        self.keepalive.enable()

    def set_consuming(self, consuming: bool) -> None:
        """Control whether the app drains the receive buffer.

        ``set_consuming(False)`` is the zero-window experiment's driver
        trick: received data accumulates, the advertised window shrinks to
        zero, and the peer must start window probing.  Re-enabling
        consumption drains the buffer and announces the reopened window.
        """
        was_zero = self.advertised_window() == 0
        self._consuming = consuming
        if consuming:
            self._drain_pending()
            if was_zero and self.advertised_window() > 0 and \
                    self.state in _DATA_STATES:
                self._emit(ACK, seq=self.snd_nxt, purpose="window_update")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        """True while the connection has not been torn down."""
        return self.state not in (CLOSED,) or self.close_reason is None

    @property
    def established(self) -> bool:
        return self.state == ESTABLISHED

    def advertised_window(self) -> int:
        """Receive window we offer the peer."""
        return max(0, self.profile.recv_buffer - len(self._rcv_pending))

    def bytes_in_flight(self) -> int:
        return seq_sub(self.snd_nxt, self.snd_una)

    def unsent_bytes(self) -> int:
        return len(self._send_buffer)

    # ------------------------------------------------------------------
    # segment ingestion
    # ------------------------------------------------------------------

    def on_segment(self, seg: Segment) -> None:
        """Process one inbound segment."""
        if self.state == CLOSED:
            if not seg.is_rst:
                self._send_reset(ack_of=seg)
            return
        self.segments_received += 1
        self.keepalive.on_segment_received()
        self._record(K.TCP_RECEIVE, msg_type=classify(seg), seq=seg.seq,
                     ack=seg.ack, win=seg.window, length=len(seg.payload))

        if seg.is_rst:
            self._teardown("reset_received")
            return

        handler = {
            LISTEN: self._in_listen,
            SYN_SENT: self._in_syn_sent,
            SYN_RCVD: self._in_syn_rcvd,
        }.get(self.state, self._in_synchronized)
        handler(seg)

    # -- handshake states ------------------------------------------------

    def _in_listen(self, seg: Segment) -> None:
        if not seg.is_syn:
            return
        self.irs = seg.seq
        self.rcv_nxt = seq_add(seg.seq, 1)
        self.snd_wnd = seg.window
        self._set_state(SYN_RCVD)
        synack = self._emit(SYN | ACK, seq=self.snd_nxt, purpose="synack")
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self.retx.track(synack)

    def _in_syn_sent(self, seg: Segment) -> None:
        if seg.is_syn and seg.is_ack and seg.ack == seq_add(self.iss, 1):
            self.irs = seg.seq
            self.rcv_nxt = seq_add(seg.seq, 1)
            self.snd_una = seg.ack
            self.snd_wnd = seg.window
            self.retx.on_ack(seg.ack)
            self._set_state(ESTABLISHED)
            self._emit(ACK, seq=self.snd_nxt, purpose="handshake_ack")
            if self.on_established:
                self.on_established()
            self._try_send()
            return
        if seg.is_syn and not seg.is_ack:
            # simultaneous open (RFC-793 figure 8): both ends sent SYNs;
            # acknowledge theirs and wait for the ACK of ours
            self.irs = seg.seq
            self.rcv_nxt = seq_add(seg.seq, 1)
            self.snd_wnd = seg.window
            self._set_state(SYN_RCVD)
            self._emit(SYN | ACK, seq=self.iss, purpose="simultaneous_synack")

    def _in_syn_rcvd(self, seg: Segment) -> None:
        if seg.is_ack and seg.ack == seq_add(self.iss, 1):
            self.snd_una = seg.ack
            self.snd_wnd = seg.window
            self.retx.on_ack(seg.ack)
            self._set_state(ESTABLISHED)
            if self.on_established:
                self.on_established()
            self._try_send()
            if len(seg.payload) or seg.is_fin:
                self._in_synchronized(seg)

    # -- synchronized states ----------------------------------------------

    def _in_synchronized(self, seg: Segment) -> None:
        if seg.is_ack:
            self._process_ack(seg)
        if len(seg.payload) > 0:
            self._process_data(seg)
        elif seg.seg_len == 0 and seq_lt(seg.seq, self.rcv_nxt):
            # zero-length segment below the window: a keep-alive probe of
            # the AIX/NeXT form; elicit the ACK it is designed to elicit
            self._emit(ACK, seq=self.snd_nxt, purpose="dup_ack")
        if seg.is_fin:
            self._process_fin(seg)

    def _process_ack(self, seg: Segment) -> None:
        acceptable = seq_lt(self.snd_una, seg.ack) and \
            seq_leq(seg.ack, self.snd_nxt)
        if self.congestion is not None and not acceptable \
                and seg.ack == self.snd_una and not seg.payload \
                and not seg.is_syn and not seg.is_fin \
                and self.retx.outstanding > 0:
            # a duplicate ACK: the receiver is missing our oldest segment
            if self.congestion.on_duplicate_ack(self.bytes_in_flight()):
                self.retx.force_retransmit()
        if acceptable:
            self.snd_una = seg.ack
            if self.congestion is not None:
                self.congestion.on_new_ack(self.bytes_in_flight())
            self.retx.on_ack(seg.ack)
            if self.state == FIN_WAIT_1 and self.snd_una == self.snd_nxt:
                self._set_state(FIN_WAIT_2)
            elif self.state == CLOSING and self.snd_una == self.snd_nxt:
                self._enter_time_wait()
            elif self.state == LAST_ACK and self.snd_una == self.snd_nxt:
                self._teardown("closed")
                return
        # window update from any segment acking current data
        if seq_leq(seg.ack, self.snd_nxt):
            self.snd_wnd = seg.window
        if self.snd_wnd > 0:
            self.persist.window_opened()
            self._try_send()
        else:
            self._maybe_start_persist()

    def _process_data(self, seg: Segment) -> None:
        data_seq = seq_add(seg.seq, 1) if seg.is_syn else seg.seq
        payload = seg.payload
        if data_seq == self.rcv_nxt:
            capacity = self.advertised_window()
            accepted = payload[:capacity]
            if accepted:
                self.rcv_nxt = seq_add(self.rcv_nxt, len(accepted))
                self._rcv_pending.extend(accepted)
                extra, self.rcv_nxt = self.reassembly.extract(self.rcv_nxt)
                if extra:
                    self._rcv_pending.extend(extra)
                self._drain_pending()
            self._ack_in_order_data()
        elif seq_lt(self.rcv_nxt, data_seq):
            if self.profile.queue_out_of_order:
                self.reassembly.add(data_seq, payload)
                self._record(K.TCP_OOO_QUEUED, seq=data_seq,
                             length=len(payload))
            else:
                self._record(K.TCP_OOO_DROPPED, seq=data_seq,
                             length=len(payload))
            self._emit(ACK, seq=self.snd_nxt, purpose="dup_ack")
        else:
            # wholly or partly old data (retransmission, keep-alive with
            # garbage byte, zero-window probe): acknowledge current state
            end = seq_add(data_seq, len(payload))
            if seq_lt(self.rcv_nxt, end):
                fresh = payload[seq_sub(self.rcv_nxt, data_seq):]
                capacity = self.advertised_window()
                accepted = fresh[:capacity]
                if accepted:
                    self.rcv_nxt = seq_add(self.rcv_nxt, len(accepted))
                    self._rcv_pending.extend(accepted)
                    self._drain_pending()
            self._emit(ACK, seq=self.snd_nxt, purpose="dup_ack")

    def _process_fin(self, seg: Segment) -> None:
        fin_seq = seq_add(seg.seq, len(seg.payload))
        if fin_seq != self.rcv_nxt:
            return  # FIN not yet in order
        self.rcv_nxt = seq_add(self.rcv_nxt, 1)
        self._emit(ACK, seq=self.snd_nxt, purpose="fin_ack")
        if self.state in (ESTABLISHED,):
            self._set_state(CLOSE_WAIT)
        elif self.state == FIN_WAIT_1:
            self._set_state(CLOSING)
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()

    def _enter_time_wait(self) -> None:
        self._set_state(TIME_WAIT)
        # abbreviated 2*MSL
        self.scheduler.schedule(2.0, self._teardown, "closed")

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1):
            return
        while self._send_buffer:
            allowance = self.snd_wnd
            if self.congestion is not None:
                allowance = self.congestion.send_allowance(self.snd_wnd)
            window_room = allowance - self.bytes_in_flight()
            if window_room <= 0:
                self._maybe_start_persist()
                return
            chunk_len = min(self.profile.mss, window_room,
                            len(self._send_buffer))
            chunk = bytes(self._send_buffer[:chunk_len])
            del self._send_buffer[:chunk_len]
            self._delack_timer.stop()  # the data segment carries the ACK
            seg = self._emit(ACK | PSH, seq=self.snd_nxt, payload=chunk,
                             purpose="data")
            self.snd_nxt = seq_add(self.snd_nxt, chunk_len)
            self.retx.track(seg)

    def _maybe_start_persist(self) -> None:
        if (self.snd_wnd == 0 and self._send_buffer
                and self.retx.outstanding == 0
                and self.state in _DATA_STATES):
            self.persist.start()

    def _retransmit_segment(self, original: Segment) -> None:
        # rebuild with the current ack/window (cumulative ACK may have moved)
        self._emit(original.flags, seq=original.seq, payload=original.payload,
                   purpose="retransmission", retransmission=True)

    def _send_keepalive_probe(self) -> None:
        payload = b"\x00" if self.profile.ka_garbage_byte else b""
        self._emit(ACK, seq=seq_sub(self.snd_nxt, 1) if payload else
                   seq_sub(self.snd_nxt, 1), payload=payload,
                   purpose="keepalive_probe", probe=True)

    def _send_zero_window_probe(self) -> None:
        if not self._send_buffer:
            return
        probe_byte = bytes(self._send_buffer[:1])
        self._emit(ACK, seq=self.snd_nxt, payload=probe_byte,
                   purpose="zwp_probe", probe=True)

    def _ack_in_order_data(self) -> None:
        """Acknowledge in-order data, honouring RFC-1122 delayed ACKs.

        Without delayed ACKs (the default, and the paper's setting), every
        in-order segment is ACKed immediately.  With them, the first ACK
        is held up to ``delayed_ack_timeout``; a second in-order segment
        flushes it at once, so at most every other segment goes unACKed
        transiently.
        """
        if not self.profile.delayed_ack:
            self._emit(ACK, seq=self.snd_nxt, purpose="ack")
            return
        if self._delack_timer.armed:
            self._delack_timer.stop()
            self._emit(ACK, seq=self.snd_nxt, purpose="ack")
        else:
            self._delack_timer.start(self.profile.delayed_ack_timeout)

    def _delack_fire(self) -> None:
        if self.state in _DATA_STATES:
            self._emit(ACK, seq=self.snd_nxt, purpose="delayed_ack")

    def _send_reset(self, ack_of: Optional[Segment] = None) -> None:
        self.resets_sent += 1
        seq = self.snd_nxt
        self._emit(RST | ACK, seq=seq, purpose="reset")

    # ------------------------------------------------------------------
    # teardown paths
    # ------------------------------------------------------------------

    def _on_congestion_timeout(self) -> None:
        if self.congestion is not None:
            self.congestion.on_timeout(self.bytes_in_flight())

    def _on_retx_give_up(self, oldest: TrackedSegment) -> None:
        if self.profile.reset_on_timeout:
            self._send_reset()
        self._teardown("retransmission_timeout")

    def _on_keepalive_dead(self) -> None:
        if self.profile.ka_reset_on_fail:
            self._send_reset()
        self._teardown("keepalive_timeout")

    def _teardown(self, reason: str) -> None:
        if self.state == CLOSED and self.close_reason is not None:
            return
        self._set_state(CLOSED)
        self.close_reason = reason
        self.retx.stop()
        self.keepalive.stop()
        self.persist.stop()
        self._delack_timer.stop()
        self._record(K.TCP_CONN_DROPPED, reason=reason)
        if self.on_close:
            self.on_close(reason)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _emit(self, flags: int, *, seq: int, payload: bytes = b"",
              purpose: str = "", retransmission: bool = False,
              probe: bool = False) -> Segment:
        seg = Segment(src_port=self.local_port, dst_port=self.remote_port,
                      seq=seq, ack=self.rcv_nxt if flags & ACK else 0,
                      flags=flags, window=self.advertised_window(),
                      payload=payload)
        self.segments_sent += 1
        self._record(K.TCP_TRANSMIT, msg_type=classify(seg), seq=seg.seq,
                     ack=seg.ack, win=seg.window, length=len(payload),
                     purpose=purpose, retransmission=retransmission, probe=probe)
        self._transmit(seg)
        return seg

    def _drain_pending(self) -> None:
        if not self._consuming or not self._rcv_pending:
            return
        data = bytes(self._rcv_pending)
        self._rcv_pending.clear()
        self.delivered.extend(data)
        if self.on_data:
            self.on_data(data)

    def _set_state(self, state: str) -> None:
        old = self.state
        self.state = state
        self._record(K.TCP_STATE, old=old, new=state)

    def _record(self, kind: str, **attrs) -> None:
        if self.trace is not None:
            self.trace.record(kind, t=self.scheduler.now, conn=self.name,
                              **attrs)

    def __repr__(self) -> str:
        return (f"TCPConnection({self.name}, {self.state}, "
                f"snd_una={self.snd_una}, snd_nxt={self.snd_nxt}, "
                f"rcv_nxt={self.rcv_nxt})")


class PersistHook:
    """Thin adapter wiring :class:`PersistProber` to a connection."""

    def __init__(self, conn: TCPConnection):
        from repro.tcp.window import PersistProber
        self._prober = PersistProber(
            conn.scheduler, conn.profile,
            send_probe=conn._send_zero_window_probe,
            trace=conn.trace, name=conn.name)

    @property
    def active(self) -> bool:
        return self._prober.active

    @property
    def probes_sent(self) -> int:
        return self._prober.probes_sent

    def start(self) -> None:
        self._prober.start()

    def stop(self) -> None:
        self._prober.stop()

    def window_opened(self) -> None:
        self._prober.stop()
