"""Restartable timers built on the scheduler.

Protocol implementations (TCP retransmission, GMP heartbeats) want the
classic start/stop/restart timer idiom rather than raw event scheduling.
:class:`Timer` provides it; :class:`TimerTable` manages a keyed collection of
timers, which is the shape the GMP daemon uses ("timers set for sending and
receiving heartbeats, sending proclaim messages, joining groups ...").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.netsim.scheduler import Event, Scheduler


class Timer:
    """A one-shot timer that may be started, stopped, and restarted.

    The callback fires once per start; restarting an armed timer cancels the
    previous deadline.  ``expiry_count`` tracks how many times the timer has
    actually fired, which experiments use to count retransmissions.

    ``args`` are passed to the callback on every expiry.  Prefer a bound
    method plus ``args`` over a closure: closures are atomic under
    ``copy.deepcopy``, so a timer holding one would fire into the original
    world after a checkpoint fork.
    """

    def __init__(self, scheduler: Scheduler, callback: Callable[..., Any],
                 name: str = "timer", *, args: Tuple = ()):
        self._scheduler = scheduler
        self._callback = callback
        self._args = tuple(args)
        self.name = name
        self._event: Optional[Event] = None
        self.expiry_count = 0

    @property
    def armed(self) -> bool:
        """True if the timer is currently counting down."""
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self) -> Optional[float]:
        """Virtual time at which the timer will fire, or None if idle."""
        if self.armed:
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.stop()
        self._event = self._scheduler.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer.  A stopped timer never fires."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.expiry_count += 1
        self._callback(*self._args)

    def __repr__(self) -> str:
        state = f"fires@{self._event.time:.3f}" if self.armed else "idle"
        return f"Timer({self.name}, {state}, expiries={self.expiry_count})"


class TimerTable:
    """A registry of timers keyed by ``(kind, key)``.

    ``kind`` is a timer category ("heartbeat_expect", "commit_wait", ...);
    ``key`` distinguishes instances within a category (e.g. the peer the
    heartbeat is expected from).  This mirrors the timer bookkeeping in the
    paper's GMP implementation, including the unregister-by-kind operation
    whose inverted logic was one of the bugs the PFI tool uncovered (the
    buggy variant itself lives in :mod:`repro.gmp.timers`).
    """

    def __init__(self, scheduler: Scheduler):
        self._scheduler = scheduler
        self._timers: Dict[Tuple[str, Hashable], Timer] = {}

    def register(self, kind: str, key: Hashable, delay: float,
                 callback: Callable[[], Any]) -> Timer:
        """Create (or replace) and start the timer for ``(kind, key)``."""
        self.unregister(kind, key)
        timer = Timer(self._scheduler, callback, name=f"{kind}/{key}")
        self._timers[(kind, key)] = timer
        timer.start(delay)
        return timer

    def unregister(self, kind: str, key: Optional[Hashable] = None) -> int:
        """Stop and remove timers.

        With ``key=None`` every timer of the given ``kind`` is removed; with
        a key only that single timer is removed.  Returns the number of
        timers removed.
        """
        if key is not None:
            timer = self._timers.pop((kind, key), None)
            if timer is None:
                return 0
            timer.stop()
            return 1
        victims = [entry for entry in self._timers if entry[0] == kind]
        for entry in victims:
            self._timers.pop(entry).stop()
        return len(victims)

    def restart(self, kind: str, key: Hashable, delay: float) -> bool:
        """Re-arm an existing timer.  Returns False if it does not exist."""
        timer = self._timers.get((kind, key))
        if timer is None:
            return False
        timer.start(delay)
        return True

    def get(self, kind: str, key: Hashable) -> Optional[Timer]:
        """Look up the timer for ``(kind, key)``, or None."""
        return self._timers.get((kind, key))

    def armed(self, kind: str, key: Optional[Hashable] = None) -> bool:
        """True if any matching timer is armed (any key when key=None)."""
        if key is not None:
            timer = self._timers.get((kind, key))
            return timer is not None and timer.armed
        return any(
            timer.armed for (k, _), timer in self._timers.items() if k == kind
        )

    def armed_kinds(self) -> List[str]:
        """Sorted list of distinct kinds that currently have an armed timer."""
        kinds = {k for (k, _), timer in self._timers.items() if timer.armed}
        return sorted(kinds)

    def stop_all(self) -> None:
        """Disarm and drop every timer in the table."""
        for timer in self._timers.values():
            timer.stop()
        self._timers.clear()

    def __len__(self) -> int:
        return len(self._timers)

    def __repr__(self) -> str:
        return f"TimerTable({len(self._timers)} timers, armed={self.armed_kinds()})"
