"""Rendering lint reports for terminals, JSON consumers, and exceptions.

The text form is the conventional compiler shape --
``file:line:col: severity CODE: message (hint)`` -- one line per
diagnostic plus a summary line.  The JSON form is stable enough to feed
CI annotations.  :class:`TclishLintError` is how the rest of the stack
(filters, campaigns, the generator) refuses to run a broken script: it
carries the full report so callers see *every* problem, not just the
first.
"""

from __future__ import annotations

import json
from typing import List

from repro.core.tclish.errors import TclError
from repro.core.tclish.lint.diagnostics import LintReport


class TclishLintError(TclError):
    """A script failed static analysis; carries the full report."""

    def __init__(self, report: LintReport):
        self.report = report
        super().__init__(render_text(report))


def render_text(report: LintReport) -> str:
    """One line per diagnostic, in source order, plus a summary."""
    lines: List[str] = [d.format(report.source_name)
                        for d in report.sorted()]
    errors = len(report.errors())
    warnings = len(report.warnings())
    if lines:
        lines.append(f"{report.source_name}: {errors} error(s), "
                     f"{warnings} warning(s)")
    else:
        lines.append(f"{report.source_name}: clean")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """A machine-readable report (the CLI's ``--json`` output)."""
    payload = {
        "source": report.source_name,
        "ok": report.ok(),
        "errors": len(report.errors()),
        "warnings": len(report.warnings()),
        "diagnostics": [d.to_dict() for d in report.sorted()],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
