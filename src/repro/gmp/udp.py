"""A minimal UDP layer.

The paper's GMP "was written as a user-level server which ran on SUN
machines on top of UDP".  This layer provides unreliable datagram
delivery: a :class:`UDPHeader` with ports is pushed going down and popped
coming up; addressing rides in message metadata like the IP layer.
Datagram loss/delay/duplication is the network's and the PFI layer's
business, not UDP's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


@dataclass
class UDPHeader:
    """Ports for one datagram."""

    src_port: int
    dst_port: int

    def clone(self) -> "UDPHeader":
        """Message header ``clone()`` protocol: cheap dataclass replace."""
        return replace(self)


class UDPProtocol(Protocol):
    """Datagram layer of a GMP host's stack."""

    def __init__(self, local_address: int, port: int = 7777,
                 name: str = "udp"):
        super().__init__(name)
        self.local_address = local_address
        self.port = port
        self.sent_count = 0
        self.received_count = 0

    def push(self, msg: Message) -> None:
        dst = msg.meta.get("dst")
        if dst is None:
            raise ValueError("UDP layer needs meta['dst'] to route")
        msg.push_header(UDPHeader(src_port=self.port, dst_port=self.port))
        msg.meta.setdefault("src", self.local_address)
        self.sent_count += 1
        self.send_down(msg)

    def pop(self, msg: Message) -> None:
        header = msg.top_header
        if not isinstance(header, UDPHeader):
            return
        if header.dst_port != self.port:
            return  # not our port; a real stack would ICMP
        msg.pop_header()
        self.received_count += 1
        self.send_up(msg)
