"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's §4: it
runs the experiment through ``pytest-benchmark`` (so regeneration cost is
tracked), prints the paper-shaped rows, and asserts the qualitative shape
so a regression in the protocol machinery fails the bench.

Run them with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def emit(title: str, text: str) -> None:
    """Print a regenerated table under a clear banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


@pytest.fixture
def once_benchmark(benchmark):
    """A benchmark runner pinned to a single round.

    Experiment runs are deterministic and take O(seconds); a single
    measured round keeps ``--benchmark-only`` wall time sane while still
    recording the regeneration cost.
    """
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return run
