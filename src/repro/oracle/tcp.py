"""RFC-793-style conformance invariants for the TCP traces.

Each invariant folds per-connection state over the kinds the connection
machinery records (:mod:`repro.tcp.connection`, ``retransmit``,
``window``).  They are written against what a *conforming* endpoint may
emit, not against what this implementation happens to do -- the
no-false-positive conformance suite pins the former, the fuzzer hunts for
scripts that break the latter.

Sequence arithmetic is 32-bit modular throughout
(:func:`repro.tcp.segment.seq_lt` and friends): "monotone" always means
monotone in sequence space, not in Python integers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.oracle.invariants import EPS, Invariant, Violation
from repro.tcp.segment import seq_add, seq_leq, seq_lt

#: the RFC-793 connection-state transition diagram, as (old -> allowed
#: new) -- teardown to CLOSED is legal from every state (RST received,
#: retransmission give-up, keep-alive death, abort) and is handled
#: separately
ALLOWED_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "CLOSED": ("SYN_SENT", "LISTEN"),
    "LISTEN": ("SYN_RCVD",),
    "SYN_SENT": ("ESTABLISHED", "SYN_RCVD"),
    "SYN_RCVD": ("ESTABLISHED", "FIN_WAIT_1"),
    "ESTABLISHED": ("FIN_WAIT_1", "CLOSE_WAIT"),
    "FIN_WAIT_1": ("FIN_WAIT_2", "CLOSING", "TIME_WAIT"),
    "FIN_WAIT_2": ("TIME_WAIT",),
    "CLOSING": ("TIME_WAIT",),
    "CLOSE_WAIT": ("LAST_ACK",),
    "LAST_ACK": (),
    "TIME_WAIT": (),
}

#: sequence space consumed by each segment type beyond its payload
_FLAG_CONSUMPTION = {"SYN": 1, "SYNACK": 1, "FIN": 1}


def _seg_end(seq: int, msg_type: str, length: int) -> int:
    """First sequence number *after* the segment (RFC-793 SEG.SEQ+SEG.LEN)."""
    return seq_add(seq, length + _FLAG_CONSUMPTION.get(msg_type, 0))


class TcpStateTransitions(Invariant):
    """``tcp.state`` transitions follow the RFC-793 state diagram.

    Also checks continuity: a connection cannot teleport -- each
    recorded transition must start from the state the previous one
    ended in.
    """

    code = "TCP-STATE"
    description = ("connection state transitions stay on the RFC-793 "
                   "diagram and are continuous per connection")
    kinds = ("tcp.state",)

    def __init__(self) -> None:
        self._current: Dict[str, str] = {}

    def on_entry(self, entry):
        conn, old, new = entry["conn"], entry["old"], entry["new"]
        out: List[Violation] = []
        known = self._current.get(conn)
        if known is not None and known != old:
            out.append(self.violation(
                entry, f"discontinuous transition: connection was in "
                       f"{known} but transition starts from {old}"))
        self._current[conn] = new
        if new != "CLOSED" and new not in ALLOWED_TRANSITIONS.get(old, ()):
            out.append(self.violation(
                entry, f"illegal transition {old} -> {new}"))
        return out


class TcpSndNxtMonotone(Invariant):
    """SND.NXT never moves backwards.

    Every sequence-consuming first transmission must start exactly at
    the current SND.NXT and pure ACKs must sit on it; a first
    transmission below SND.NXT is a regression, one above it is a send
    gap.  Retransmissions, probes (keep-alive and zero-window re-send
    old or provisional sequence space by design) and the simultaneous-
    open SYN-ACK re-emission are exempt.
    """

    code = "TCP-SND-NXT"
    description = "first transmissions consume sequence space monotonically"
    kinds = ("tcp.transmit",)

    _EXEMPT_PURPOSES = ("retransmission", "keepalive_probe", "zwp_probe",
                        "simultaneous_synack")

    def __init__(self) -> None:
        self._nxt: Dict[str, int] = {}

    def on_entry(self, entry):
        if entry.get("retransmission") or entry.get("probe"):
            return None
        if entry.get("purpose") in self._EXEMPT_PURPOSES:
            return None
        conn, seq = entry["conn"], entry["seq"]
        msg_type, length = entry["msg_type"], entry["length"]
        nxt = self._nxt.get(conn)
        if nxt is None:
            self._nxt[conn] = _seg_end(seq, msg_type, length)
            return None
        out: List[Violation] = []
        if seq_lt(seq, nxt):
            out.append(self.violation(
                entry, f"{msg_type} transmitted at seq={seq} below "
                       f"SND.NXT={nxt} (sequence-space regression)"))
        elif seq_lt(nxt, seq):
            out.append(self.violation(
                entry, f"{msg_type} transmitted at seq={seq} beyond "
                       f"SND.NXT={nxt} (sequence-space gap)"))
        end = _seg_end(seq, msg_type, length)
        if not seq_lt(end, nxt):
            self._nxt[conn] = end
        return out


class TcpRtoBackoff(Invariant):
    """Timeout retransmissions back off exponentially, bounded by 2x.

    Between two retransmissions of a connection with **no intervening
    inbound segment**, the retransmission timeout must not shrink (the
    backoff shift only grows without an ACK) and must at most double
    (shift increments by one per timeout; the RTO cap can keep it
    flat).  An inbound segment may legitimately reset the backoff or
    re-estimate the RTT, so it restarts the chain.
    """

    code = "TCP-RTO-BACKOFF"
    description = ("retransmission timeouts stay within [prev, 2*prev] "
                   "absent an inbound segment, and are positive")
    kinds = ("tcp.retransmit", "tcp.receive")

    def __init__(self) -> None:
        # conn -> (last rto, receive count when it was recorded)
        self._chain: Dict[str, Tuple[float, int]] = {}
        self._receives: Dict[str, int] = {}

    def on_entry(self, entry):
        conn = entry["conn"]
        if entry.kind == "tcp.receive":
            self._receives[conn] = self._receives.get(conn, 0) + 1
            return None
        rto = entry["rto"]
        out: List[Violation] = []
        if not rto > 0:
            out.append(self.violation(
                entry, f"non-positive retransmission timeout rto={rto!r}"))
        seen = self._receives.get(conn, 0)
        chain = self._chain.get(conn)
        if chain is not None and chain[1] == seen:
            prev = chain[0]
            if rto < prev - EPS:
                out.append(self.violation(
                    entry, f"rto shrank {prev:.6f} -> {rto:.6f} with no "
                           f"inbound segment to justify a backoff reset"))
            elif rto > 2 * prev + EPS:
                out.append(self.violation(
                    entry, f"rto grew {prev:.6f} -> {rto:.6f}, more than "
                           f"the exponential-backoff doubling bound"))
        self._chain[conn] = (rto, seen)
        return out


class TcpAckUnsent(Invariant):
    """An endpoint never acknowledges data it has not received.

    Folds the highest in-sequence-space received segment end per
    connection from ``tcp.receive`` (post-fault-injection, so corrupted
    segments count as what actually arrived) and requires every
    transmitted ACK value to stay at or below it.
    """

    code = "TCP-ACK-UNSENT"
    description = "transmitted ACK values never exceed received data"
    kinds = ("tcp.transmit", "tcp.receive")

    def __init__(self) -> None:
        self._max_end: Dict[str, int] = {}

    def on_entry(self, entry):
        conn = entry["conn"]
        if entry.kind == "tcp.receive":
            end = _seg_end(entry["seq"], entry["msg_type"], entry["length"])
            known = self._max_end.get(conn)
            if known is None or seq_lt(known, end):
                self._max_end[conn] = end
            return None
        ack = entry["ack"]
        if ack == 0:  # no ACK flag (initial SYN)
            return None
        known = self._max_end.get(conn)
        if known is None:
            return None  # nothing received yet, nothing to bound against
        if not seq_leq(ack, known):
            return [self.violation(
                entry, f"{entry['msg_type']} acknowledges seq={ack} but "
                       f"highest received segment end is {known}")]
        return None


class TcpZwpCadence(Invariant):
    """Zero-window probes follow the persist-timer discipline.

    Probes may only appear inside an open persist window
    (``tcp.persist_start`` .. ``tcp.persist_stop``), their intervals
    must grow monotonically but at most double (exponential backoff
    with a vendor cap), and the per-connection probe numbering must be
    consecutive.
    """

    code = "TCP-ZWP"
    description = ("zero-window probes stay inside persist windows with "
                   "doubling-bounded intervals and consecutive numbering")
    kinds = ("tcp.zwp_probe", "tcp.persist_start", "tcp.persist_stop")

    def __init__(self) -> None:
        self._active: Dict[str, bool] = {}
        self._interval: Dict[str, Optional[float]] = {}
        self._number: Dict[str, int] = {}

    def on_entry(self, entry):
        conn = entry["conn"]
        if entry.kind == "tcp.persist_start":
            self._active[conn] = True
            self._interval[conn] = None  # backoff restarts per window
            return None
        if entry.kind == "tcp.persist_stop":
            self._active[conn] = False
            return None
        out: List[Violation] = []
        if not self._active.get(conn, False):
            out.append(self.violation(
                entry, "zero-window probe outside an open persist window"))
        interval = entry["interval"]
        prev = self._interval.get(conn)
        if prev is not None:
            if interval < prev - EPS:
                out.append(self.violation(
                    entry, f"probe interval shrank {prev:.6f} -> "
                           f"{interval:.6f} within one persist window"))
            elif interval > 2 * prev + EPS:
                out.append(self.violation(
                    entry, f"probe interval grew {prev:.6f} -> "
                           f"{interval:.6f}, more than doubling"))
        self._interval[conn] = interval
        number = entry["number"]
        expected = self._number.get(conn, 0) + 1
        if number != expected:
            out.append(self.violation(
                entry, f"probe number {number} is not consecutive "
                       f"(expected {expected})"))
        self._number[conn] = number
        return out


def tcp_pack() -> List[Invariant]:
    """Fresh instances of the full TCP conformance pack."""
    return [TcpStateTransitions(), TcpSndNxtMonotone(), TcpRtoBackoff(),
            TcpAckUnsent(), TcpZwpCadence()]
