"""The strong group membership protocol (GMP) substrate.

The application-level target protocol of the paper's §4.2: a user-level
group membership daemon over UDP with a reliable messaging layer, a
heartbeat failure detector, leader-driven two-phase membership changes,
and proclaim-based joining -- including, behind
:class:`~repro.gmp.bugs.BugFlags`, the four implementation bugs the PFI
tool uncovered in the original student implementation.

Public surface::

    from repro.gmp import (
        Daemon, GmpTiming, GroupView, GmpMessage, BugFlags,
        AS_DELIVERED, FIXED, ReliableChannel, UDPProtocol, gmp_stubs,
    )
"""

from repro.gmp.bugs import AS_DELIVERED, FIXED, BugFlags
from repro.gmp.daemon import (COLLECTING, IN_TRANSITION, STABLE, Daemon,
                              GmpTiming, gmp_stubs)
from repro.gmp.messages import (ACK, ALL_KINDS, COMMIT, DEAD_REPORT,
                                HEARTBEAT, JOIN, MEMBERSHIP_CHANGE, NACK,
                                PROCLAIM, GmpMessage)
from repro.gmp.reliable import RelHeader, ReliableChannel
from repro.gmp.timers import GmpTimerTable
from repro.gmp.udp import UDPHeader, UDPProtocol
from repro.gmp.views import GroupView, singleton_view
from repro.gmp.wire import WireError, decode as decode_wire, encode as encode_wire

__all__ = [
    "ACK", "ALL_KINDS", "AS_DELIVERED", "COLLECTING", "COMMIT",
    "DEAD_REPORT", "Daemon", "FIXED", "BugFlags", "GmpMessage",
    "GmpTimerTable", "GmpTiming", "GroupView", "HEARTBEAT",
    "IN_TRANSITION", "JOIN", "MEMBERSHIP_CHANGE", "NACK", "PROCLAIM",
    "RelHeader", "ReliableChannel", "STABLE", "UDPHeader", "UDPProtocol",
    "WireError", "decode_wire", "encode_wire", "gmp_stubs",
    "singleton_view",
]
