"""Experiment TCP-2 (paper Table 2): RTO adaptation under delayed ACKs.

Part one: "The send script of the fault injection layer was set up to
delay each outgoing ACK for 30 ACKs in a row.  After doing this, the
receive filter started dropping all incoming packets."  The send filter
flips the receive filter's state through cross-interpreter communication
("the send filter might set a variable in the receive interpreter which
tells the receive filter to start dropping messages") -- here via
``ctx.set_peer``.

Expected shapes: the BSD-derived stacks adapt their RTO above the injected
delay (paper: first retransmission at ~6.5 s SunOS / ~8 s AIX / ~5 s NeXT
for a 3 s delay); Solaris barely adapts and retransmits *below* the delay
(~2.4 s), timing connections out early.

Part two, the global-fault-counter probe: pass 30 packets, then ACK the
next segment (m1) with a 35-second delay while dropping everything else.
Solaris retransmits m1 ~6 times before the delayed ACK lands; because the
ACK is ambiguous (m1 was retransmitted), the fault counter is NOT reset,
and the following segment m2 gets only the remaining ~3 attempts before
the connection dies -- the behaviour that revealed the global counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.series import (most_retransmitted_seq,
                                   retransmission_series,
                                   retransmit_counts_by_seq)
from repro.core import ScriptContext
from repro.experiments.tcp_common import (build_tcp_testbed,
                                          open_connection,
                                          stream_from_vendor)
from repro.tcp import VENDORS, VendorProfile

ACKS_TO_DELAY = 30


@dataclass
class DelayedAckResult:
    """One Table 2 row."""

    vendor: str
    ack_delay: float
    first_retransmit_interval: Optional[float]
    adapted_above_delay: Optional[bool]
    retransmissions: int
    intervals: List[float] = field(default_factory=list)
    close_reason: Optional[str] = None


@dataclass
class GlobalCounterResult:
    """The m1/m2 probe of the global fault counter."""

    vendor: str
    m1_retransmissions: int
    m2_retransmissions: int
    total: int
    close_reason: Optional[str]


def delay_acks_send_filter(delay: float, count: int = ACKS_TO_DELAY):
    """Send filter: delay the first ``count`` pure ACKs, then arm the peer."""
    def send_filter(ctx: ScriptContext) -> None:
        if ctx.msg_type() != "ACK":
            return
        delayed = ctx.state.get("delayed", 0)
        if delayed < count:
            ctx.state["delayed"] = delayed + 1
            ctx.delay(delay)
            if delayed + 1 == count:
                # cross-interpreter communication: tell the receive filter
                # to start dropping everything
                ctx.set_peer("dropping", True)
    return send_filter


def drop_when_armed_receive_filter():
    """Receive filter: log and drop once the send filter arms us."""
    def receive_filter(ctx: ScriptContext) -> None:
        if ctx.state.get("dropping"):
            ctx.log("dropped (post-delay phase)")
            ctx.drop()
    return receive_filter


def execute(vendor: VendorProfile, ack_delay: float, *, seed: int = 0,
            max_time: float = 3000.0):
    """Drive one (vendor, delay) cell; returns the run testbed."""
    testbed = build_tcp_testbed(vendor, seed=seed)
    client, _server = open_connection(testbed)
    # the vendor app writes briskly; ACK delays will throttle the window
    stream_from_vendor(testbed, client, segments=60, interval=0.4)
    testbed.pfi.set_send_filter(delay_acks_send_filter(ack_delay))
    testbed.pfi.set_receive_filter(drop_when_armed_receive_filter())
    testbed.env.run_until(max_time)
    return testbed


def run_delayed_ack_experiment(vendor: VendorProfile, ack_delay: float, *,
                               seed: int = 0,
                               max_time: float = 3000.0) -> DelayedAckResult:
    """Run one (vendor, delay) cell of Table 2."""
    testbed = execute(vendor, ack_delay, seed=seed, max_time=max_time)
    conn = "vendor:5000"
    trace = testbed.trace
    seq = most_retransmitted_seq(trace, conn)
    intervals = retransmission_series(trace, conn, seq)
    first = intervals[0] if intervals else None
    dropped = trace.first("tcp.conn_dropped", conn=conn)
    return DelayedAckResult(
        vendor=vendor.name,
        ack_delay=ack_delay,
        first_retransmit_interval=first,
        adapted_above_delay=None if first is None else first > ack_delay,
        retransmissions=trace.count("tcp.retransmit", conn=conn, seq=seq),
        intervals=intervals,
        close_reason=dropped.get("reason") if dropped else None,
    )


def execute_global_counter_probe(vendor: VendorProfile, *, seed: int = 0,
                                 ack_delay: float = 35.0,
                                 pass_count: int = 30,
                                 max_time: float = 3000.0):
    """Drive the m1/m2 global-fault-counter probe; returns the testbed."""
    testbed = build_tcp_testbed(vendor, seed=seed)
    client, _server = open_connection(testbed)
    stream_from_vendor(testbed, client, segments=60, interval=0.4)

    def receive_filter(ctx: ScriptContext) -> None:
        if ctx.msg_type() != "DATA":
            return
        seen = ctx.state.get("seen", 0) + 1
        ctx.state["seen"] = seen
        if seen <= pass_count:
            return
        if seen == pass_count + 1:
            # m1: let it through so the x-kernel TCP generates its ACK,
            # but tell the send filter to delay that ACK 35 seconds
            ctx.set_peer("delay_next_ack", True)
            return
        ctx.log("dropped after m1")
        ctx.drop()

    def send_filter(ctx: ScriptContext) -> None:
        if ctx.msg_type() != "ACK":
            return
        # the receive filter armed this flag in OUR interpreter state
        if ctx.state.get("delay_next_ack"):
            ctx.state["delay_next_ack"] = False
            ctx.delay(ack_delay)

    testbed.pfi.set_receive_filter(receive_filter)
    testbed.pfi.set_send_filter(send_filter)
    testbed.env.run_until(max_time)
    return testbed


def run_global_counter_probe(vendor: VendorProfile, *, seed: int = 0,
                             ack_delay: float = 35.0,
                             pass_count: int = 30,
                             max_time: float = 3000.0) -> GlobalCounterResult:
    """The 35-second-delayed-ACK experiment that exposed Solaris's counter."""
    testbed = execute_global_counter_probe(
        vendor, seed=seed, ack_delay=ack_delay, pass_count=pass_count,
        max_time=max_time)
    conn = "vendor:5000"
    counts = retransmit_counts_by_seq(testbed.trace, conn)
    ordered = sorted(counts.items(), key=lambda kv: kv[0])
    m1_count = ordered[0][1] if ordered else 0
    m2_count = ordered[1][1] if len(ordered) > 1 else 0
    dropped = testbed.trace.first("tcp.conn_dropped", conn=conn)
    return GlobalCounterResult(
        vendor=vendor.name,
        m1_retransmissions=m1_count,
        m2_retransmissions=m2_count,
        total=sum(counts.values()),
        close_reason=dropped.get("reason") if dropped else None,
    )


def run_all(ack_delay: float, seed: int = 0) -> Dict[str, DelayedAckResult]:
    """One Table 2 column (3 s or 8 s)."""
    return {name: run_delayed_ack_experiment(profile, ack_delay, seed=seed)
            for name, profile in VENDORS.items()}


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import tcp_pack
    return tcp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite."""
    for name, profile in VENDORS.items():
        yield (f"delayed_ack/{name}",
               execute(profile, 3.0, seed=seed).trace)
    yield ("delayed_ack/global_counter/Solaris 2.3",
           execute_global_counter_probe(VENDORS["Solaris 2.3"],
                                        seed=seed).trace)


def table_rows(results: Dict[str, DelayedAckResult]) -> List[List[object]]:
    rows = []
    for name, r in results.items():
        if r.first_retransmit_interval is None:
            rows.append([name, "no retransmissions observed", ""])
            continue
        verdict = ("adapted above the injected delay"
                   if r.adapted_above_delay
                   else "did NOT adapt to the injected delay")
        rows.append([
            name,
            f"started retransmitting at "
            f"{r.first_retransmit_interval:.1f} s "
            f"(ACK delay {r.ack_delay:.0f} s)",
            f"{verdict}; {r.retransmissions} retransmissions before close",
        ])
    return rows
