"""Parallel campaign sweeps are byte-identical to serial ones.

``Campaign.run(configs, workers=N)`` fans configurations out to worker
processes, but per-config seed derivation means each run is independent
of scheduling: results, traces, and ordering must be exactly what the
serial path produces.
"""

import pytest

from repro.core.orchestrator import Campaign


class _Ticker:
    """Self-rescheduling callback as a callable class, not a closure,
    so the Campaign body passes the SC1xx determinism precheck."""

    def __init__(self, env, dist, events):
        self.env = env
        self.dist = dist
        self.events = events
        self.fired = 0
        self.acc = 0.0

    def __call__(self):
        self.fired += 1
        self.acc += self.dist.dst_uniform(0.0, 1.0)
        if self.fired < self.events:
            self.env.scheduler.schedule(
                self.dist.dst_exponential(10.0), self)


def sweep_body(env, config):
    """Module-level (hence picklable) campaign body: a seeded timer chain."""
    dist = env.dist("sweep", config["profile"])
    ticker = _Ticker(env, dist, config["events"])
    env.scheduler.schedule(0.0, ticker)
    final = env.run_until_quiet()
    env.trace.record("sweep.done", fired=ticker.fired)
    return {"fired": ticker.fired, "acc": round(ticker.acc, 9),
            "final": round(final, 9)}


def _sweep_configs(count=6, events=200):
    return [{"profile": f"vendor{i}", "events": events} for i in range(count)]


class TestParallelCampaign:
    def test_workers_match_serial_exactly(self):
        campaign = Campaign(sweep_body, seed=7)
        configs = _sweep_configs()
        serial = campaign.run(configs)
        parallel = campaign.run(configs, workers=4)
        assert [r.config for r in parallel] == [r.config for r in serial]
        assert [r.result for r in parallel] == [r.result for r in serial]
        assert ([list(r.trace) for r in parallel]
                == [list(r.trace) for r in serial])

    def test_order_follows_input_not_completion(self):
        campaign = Campaign(sweep_body, seed=7)
        # uneven workloads: later configs finish first if order leaked
        configs = [{"profile": "slow", "events": 500},
                   {"profile": "fast", "events": 10},
                   {"profile": "faster", "events": 5}]
        results = campaign.run(configs, workers=3)
        assert [r.config["profile"] for r in results] == [
            "slow", "fast", "faster"]

    def test_workers_one_is_serial_path(self):
        campaign = Campaign(sweep_body, seed=7)
        configs = _sweep_configs(count=3, events=50)
        assert ([r.result for r in campaign.run(configs, workers=1)]
                == [r.result for r in campaign.run(configs)])

    def test_single_config_skips_pool(self):
        campaign = Campaign(sweep_body, seed=7)
        results = campaign.run(_sweep_configs(count=1), workers=4)
        assert len(results) == 1
        assert results[0].result["fired"] == 200

    def test_unpicklable_body_rejected_with_clear_error(self):
        campaign = Campaign(lambda env, config: None, seed=7)
        with pytest.raises(TypeError, match="picklable"):
            campaign.run(_sweep_configs(count=2), workers=2)

    def test_unpicklable_body_still_runs_serially(self):
        campaign = Campaign(lambda env, config: config["events"], seed=7)
        results = campaign.run(_sweep_configs(count=2, events=5))
        assert [r.result for r in results] == [5, 5]


def failing_body(env, config):
    raise RuntimeError(f"boom in {config['profile']}")


class TestParallelErrors:
    def test_worker_exception_propagates(self):
        campaign = Campaign(failing_body, seed=7)
        with pytest.raises(RuntimeError, match="boom in vendor0"):
            campaign.run(_sweep_configs(count=2, events=1), workers=2)


class TestChunkedDispatch:
    def test_many_configs_few_workers_ordered(self):
        # more configs than workers forces multi-config chunks; input
        # order and per-config results must be untouched
        campaign = Campaign(sweep_body, seed=7)
        configs = _sweep_configs(count=13, events=20)
        serial = campaign.run(configs)
        parallel = campaign.run(configs, workers=2)
        assert [r.result for r in parallel] == [r.result for r in serial]
        assert [r.config["profile"] for r in parallel] == [
            f"vendor{i}" for i in range(13)]

    def test_chunk_failure_names_global_index(self):
        campaign = Campaign(picky_body, seed=7)
        configs = _sweep_configs(count=8, events=1)
        with pytest.raises(RuntimeError, match="boom in vendor5") as info:
            campaign.run(configs, workers=2)
        notes = getattr(info.value, "__notes__", [])
        assert any("campaign config [5]" in note for note in notes)


class TestAutoWorkers:
    def test_auto_small_sweep_is_serial(self):
        campaign = Campaign(sweep_body, seed=7)
        results = campaign.run(_sweep_configs(count=2, events=10),
                               workers="auto")
        assert [r.result["fired"] for r in results] == [10, 10]

    def test_auto_matches_serial_results(self):
        campaign = Campaign(sweep_body, seed=7)
        configs = _sweep_configs(count=6, events=30)
        assert ([r.result for r in campaign.run(configs, workers="auto")]
                == [r.result for r in campaign.run(configs)])

    def test_bad_workers_value_rejected(self):
        campaign = Campaign(sweep_body, seed=7)
        with pytest.raises(ValueError, match="auto"):
            campaign.run(_sweep_configs(count=2), workers="turbo")


class TestRunCache:
    def test_second_sweep_hits_cache(self, tmp_path):
        from repro.core.orchestrator import RunCache
        cache = RunCache(tmp_path / "cache")
        campaign = Campaign(sweep_body, seed=7)
        configs = _sweep_configs(count=3, events=25)
        first = campaign.run(configs, cache=cache)
        assert cache.hits == 0 and cache.misses == 3
        second = campaign.run(configs, cache=cache)
        assert cache.hits == 3
        assert [r.result for r in second] == [r.result for r in first]
        assert ([list(r.trace) for r in second]
                == [list(r.trace) for r in first])

    def test_seed_change_misses(self, tmp_path):
        from repro.core.orchestrator import RunCache
        cache = RunCache(tmp_path / "cache")
        configs = _sweep_configs(count=2, events=10)
        Campaign(sweep_body, seed=7).run(configs, cache=cache)
        Campaign(sweep_body, seed=8).run(configs, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 4

    def test_config_change_misses(self, tmp_path):
        from repro.core.orchestrator import RunCache
        cache = RunCache(tmp_path / "cache")
        campaign = Campaign(sweep_body, seed=7)
        campaign.run(_sweep_configs(count=1, events=10), cache=cache)
        campaign.run(_sweep_configs(count=1, events=11), cache=cache)
        assert cache.hits == 0

    def test_body_identity_in_key(self, tmp_path):
        from repro.core.orchestrator import RunCache
        cache = RunCache(tmp_path / "cache")
        configs = _sweep_configs(count=1, events=10)
        Campaign(sweep_body, seed=7).run(configs, cache=cache)
        # a different body with the same config/seed must not hit
        Campaign(other_body, seed=7).run(configs, cache=cache)
        assert cache.hits == 0

    def test_cached_parallel_mixed_with_fresh(self, tmp_path):
        # half the sweep cached, half fresh, fresh half parallel:
        # results must still come back complete and in input order
        from repro.core.orchestrator import RunCache
        cache = RunCache(tmp_path / "cache")
        campaign = Campaign(sweep_body, seed=7)
        campaign.run(_sweep_configs(count=3, events=15), cache=cache)
        results = campaign.run(_sweep_configs(count=6, events=15),
                               workers=2, cache=cache)
        assert cache.hits == 3
        assert [r.config["profile"] for r in results] == [
            f"vendor{i}" for i in range(6)]
        uncached = campaign.run(_sweep_configs(count=6, events=15))
        assert [r.result for r in results] == [r.result for r in uncached]


def picky_body(env, config):
    if config["profile"] == "vendor5":
        raise RuntimeError("boom in vendor5")
    return config["profile"]


def other_body(env, config):
    return {"different": True}
