"""The chaos oracle: SIGKILL anything mid-sweep, resume, get the
serial scorecard exactly.

Every test here runs a real sockets sweep in a subprocess tree
(coordinator + workers, see :mod:`tests.fabric.rig`), murders part of
it at a *fuzzed* progress offset -- measured in durable
``campaign.run_end`` records, not wall time -- and asserts the
acceptance contract: the (resumed) sweep completes and its merged
scorecard equals the serial run's on stable keys, row for row.  This
is the harness any future fabric backend must pass.
"""

import random

import pytest

from tests.fabric import rig

COUNT = 24
WORK_MS = 100.0
FINISH_TIMEOUT = 120.0


def _wait_for_workers(fabric_dir, expected):
    rig.wait_until(lambda: len(rig.worker_pids(fabric_dir)) >= expected,
                   what=f"{expected} workers in state.json")


def _wait_for_progress(fabric_dir, threshold, proc):
    rig.wait_until(
        lambda: (rig.run_end_count(fabric_dir) >= threshold
                 or proc.poll() is not None),
        what=f"{threshold} durable run_end records")
    assert proc.poll() is None, (
        "sweep finished before the kill offset; grow WORK_MS")


def _finish(proc):
    try:
        return proc.wait(timeout=FINISH_TIMEOUT)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def _assert_serial_scorecard(fabric_dir, tmp_path):
    merged = rig.merged_stable_keys(fabric_dir)
    serial = rig.serial_stable_keys(COUNT, tmp_path)
    assert len(merged) == COUNT
    assert merged == serial


@pytest.mark.parametrize("case", [0, 1])
def test_kill_one_worker_sweep_still_completes(tmp_path, case):
    # fuzz the kill offset and the victim: the contract may not depend
    # on *when* a worker dies or *which* one
    fuzz = random.Random(0xFAB0 + case)
    threshold = fuzz.randint(1, COUNT // 3)
    fabric_dir = tmp_path / "fabric"
    proc = rig.spawn_sweep(fabric_dir, COUNT, workers=2,
                           work_ms=WORK_MS)
    try:
        _wait_for_workers(fabric_dir, 2)
        _wait_for_progress(fabric_dir, threshold, proc)
        pids = rig.worker_pids(fabric_dir)
        victim = fuzz.choice(sorted(pids))
        assert rig.sigkill(pids[victim])
        # the survivor steals the victim's lease and drains the board:
        # the very same attempt completes, no resume needed
        assert _finish(proc) == 0
    finally:
        _finish(proc)
    _assert_serial_scorecard(fabric_dir, tmp_path)
    ends = rig.campaign_ends(fabric_dir)
    assert ends and ends[-1]["status"] == "ok"
    assert ends[-1]["executed"] + ends[-1]["cached"] == COUNT


def test_kill_all_workers_aborts_resumable(tmp_path):
    fuzz = random.Random(0xFAB2)
    threshold = fuzz.randint(2, COUNT // 2)
    fabric_dir = tmp_path / "fabric"
    proc = rig.spawn_sweep(fabric_dir, COUNT, workers=2,
                           work_ms=WORK_MS)
    try:
        _wait_for_workers(fabric_dir, 2)
        _wait_for_progress(fabric_dir, threshold, proc)
        for pid in rig.worker_pids(fabric_dir).values():
            rig.sigkill(pid)
        # every worker is gone: the coordinator journals workers_lost
        # and aborts instead of hanging (exit 3 = resumable abort)
        assert _finish(proc) == 3
    finally:
        _finish(proc)
    aborted = rig.campaign_ends(fabric_dir)
    assert aborted and aborted[-1]["status"] == "workers_lost"
    done_before = rig.run_end_count(fabric_dir)
    assert done_before < COUNT

    resumed = rig.spawn_sweep(fabric_dir, COUNT, workers=2,
                              work_ms=WORK_MS, resume=True)
    assert _finish(resumed) == 0
    _assert_serial_scorecard(fabric_dir, tmp_path)
    ends = rig.campaign_ends(fabric_dir)
    assert ends[-1]["status"] == "ok"
    # executed totals across attempts account for every config exactly
    # once: nothing re-ran that the store already held
    assert ends[-1]["cached"] + ends[-1]["executed"] == COUNT
    assert ends[-1]["executed"] == COUNT - ends[-1]["cached"]
    assert sum(end["executed"] for end in ends) == COUNT


def test_kill_coordinator_resume_completes(tmp_path):
    fuzz = random.Random(0xFAB3)
    threshold = fuzz.randint(2, COUNT // 2)
    fabric_dir = tmp_path / "fabric"
    proc = rig.spawn_sweep(fabric_dir, COUNT, workers=2,
                           work_ms=WORK_MS)
    try:
        _wait_for_workers(fabric_dir, 2)
        state = rig.read_state(fabric_dir)
        assert state["coordinator_pid"] == proc.pid
        _wait_for_progress(fabric_dir, threshold, proc)
        orphans = rig.worker_pids(fabric_dir)
        rig.sigkill(proc.pid)
        proc.wait()
        # orphaned workers notice the dead socket and exit on their
        # own -- no zombies spinning against a gone coordinator
        rig.wait_until(
            lambda: all(not rig.pid_alive(pid)
                        for pid in orphans.values()),
            what="orphaned workers to exit")
    finally:
        _finish(proc)

    resumed = rig.spawn_sweep(fabric_dir, COUNT, workers=2,
                              work_ms=WORK_MS, resume=True)
    assert _finish(resumed) == 0
    _assert_serial_scorecard(fabric_dir, tmp_path)
    ends = rig.campaign_ends(fabric_dir)
    # the killed attempt never journaled an end record (SIGKILL); the
    # resume's end is the only one, and it completed the sweep
    assert ends[-1]["status"] == "ok"
    assert ends[-1]["cached"] + ends[-1]["executed"] == COUNT


def test_double_resume_is_idempotent(tmp_path):
    fabric_dir = tmp_path / "fabric"
    proc = rig.spawn_sweep(fabric_dir, COUNT, workers=2, work_ms=1.0)
    assert _finish(proc) == 0
    _assert_serial_scorecard(fabric_dir, tmp_path)
    store_files = sorted(
        p.name for p in (fabric_dir / "store").rglob("*.pkl"))
    journals = sorted(
        p.name for p in (fabric_dir / "journals").glob("*.jsonl"))
    baseline = rig.merged_stable_keys(fabric_dir)

    for attempt in range(2):
        resumed = rig.spawn_sweep(fabric_dir, COUNT, workers=2,
                                  work_ms=1.0, resume=True)
        assert _finish(resumed) == 0
        ends = rig.campaign_ends(fabric_dir)
        assert ends[-1] == {"status": "ok", "executed": 0,
                            "cached": COUNT, "stolen": 0, "expired": 0,
                            "findings": 0}
        # zero new runs: no result rewritten, no new shard journal,
        # identical merged report
        assert sorted(p.name for p in
                      (fabric_dir / "store").rglob("*.pkl")) \
            == store_files
        assert sorted(p.name for p in
                      (fabric_dir / "journals").glob("*.jsonl")) \
            == journals
        assert rig.merged_stable_keys(fabric_dir) == baseline


def test_resume_refuses_a_different_sweep(tmp_path):
    fabric_dir = tmp_path / "fabric"
    proc = rig.spawn_sweep(fabric_dir, 4, workers=2, work_ms=1.0)
    assert _finish(proc) == 0
    # same directory, different sweep content: refused, not mixed
    clash = rig.spawn_sweep(fabric_dir, 5, workers=2, work_ms=1.0)
    assert _finish(clash) == 1
    assert len(rig.merged_stable_keys(fabric_dir)) == 4
