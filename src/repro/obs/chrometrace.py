"""Chrome-trace / Perfetto export of experiment traces.

Converts a :class:`~repro.netsim.trace.TraceRecorder` (live or loaded
from a JSON-lines archive) into the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev: open the JSON, and the
run becomes a zoomable timeline with one process row per node and one
thread row per direction/subsystem.

Mapping:

- virtual seconds -> microsecond timestamps (``ts``);
- a node (``node`` attr, falling back to ``conn``, else ``run``) -> a
  ``pid`` with a ``process_name`` metadata record;
- the entry's ``direction`` attr (else its kind prefix, "tcp", "gmp",
  ...) -> a ``tid`` with a ``thread_name`` record;
- ``pfi.delay`` -> a complete span (``ph: "X"``) of the delay duration;
- ``pfi.hold`` ... ``pfi.release`` of the same uid -> a complete span
  from park to re-emission;
- everything else -> a thread-scoped instant event (``ph: "i"``).

All attribute payloads ride along under ``args`` (JSON-sanitized), so
clicking any event in the viewer shows the original trace entry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.analysis.export import _jsonable
from repro.netsim.trace import TraceEntry

_US = 1_000_000  # virtual seconds -> trace microseconds


def _lane(entry: TraceEntry) -> Tuple[str, str]:
    """(process, thread) placement for one entry."""
    node = entry.get("node")
    if node is None:
        node = entry.get("conn")
    if node is None:
        node = "run"
    direction = entry.get("direction")
    if direction is None:
        direction = entry.kind.split(".", 1)[0]
    return str(node), str(direction)


def chrome_trace(trace: Iterable[TraceEntry], *,
                 title: str = "repro run") -> Dict[str, Any]:
    """Build the Trace Event Format dict for a trace."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    open_holds: Dict[Any, Tuple[TraceEntry, int, int]] = {}

    def lane_ids(entry: TraceEntry) -> Tuple[int, int]:
        process, thread = _lane(entry)
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": process}})
        key = (process, thread)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": thread}})
        return pid, tid

    def args_of(entry: TraceEntry) -> Dict[str, Any]:
        return {k: _jsonable(v) for k, v in entry.attrs.items()}

    for entry in trace:
        pid, tid = lane_ids(entry)
        ts = entry.time * _US
        if entry.kind == "pfi.delay":
            events.append({"ph": "X", "name": f"delay uid={entry.get('uid')}",
                           "cat": "pfi", "ts": ts,
                           "dur": float(entry.get("seconds", 0.0)) * _US,
                           "pid": pid, "tid": tid, "args": args_of(entry)})
            continue
        if entry.kind == "pfi.hold":
            open_holds[entry.get("uid")] = (entry, pid, tid)
            continue
        if entry.kind == "pfi.release":
            held = open_holds.pop(entry.get("uid"), None)
            if held is not None:
                hold_entry, hold_pid, hold_tid = held
                events.append({
                    "ph": "X",
                    "name": f"hold uid={entry.get('uid')} "
                            f"tag={entry.get('tag')}",
                    "cat": "pfi", "ts": hold_entry.time * _US,
                    "dur": (entry.time - hold_entry.time) * _US,
                    "pid": hold_pid, "tid": hold_tid,
                    "args": args_of(entry)})
                continue
            # release with no recorded hold: fall through as an instant
        events.append({"ph": "i", "name": entry.kind,
                       "cat": entry.kind.split(".", 1)[0], "ts": ts,
                       "s": "t", "pid": pid, "tid": tid,
                       "args": args_of(entry)})

    # messages still parked when the run ended: zero-length markers
    for hold_entry, pid, tid in open_holds.values():
        events.append({"ph": "i",
                       "name": f"held (never released) "
                               f"uid={hold_entry.get('uid')}",
                       "cat": "pfi", "ts": hold_entry.time * _US, "s": "t",
                       "pid": pid, "tid": tid, "args": args_of(hold_entry)})

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"title": title,
                          "generator": "repro.obs.chrometrace"}}


def dump_chrome_trace(trace: Iterable[TraceEntry], *,
                      title: str = "repro run", indent: int = 0) -> str:
    """The Trace Event Format JSON text for a trace."""
    return json.dumps(chrome_trace(trace, title=title), sort_keys=True,
                      indent=indent or None)
