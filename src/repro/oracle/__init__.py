"""Machine-checkable conformance oracles over experiment traces.

The package turns the paper's manual "inspect the trace and judge"
step into code:

- :mod:`repro.oracle.invariants` -- the engine: declarative
  :class:`~repro.oracle.invariants.Invariant` objects with per-kind
  trace subscriptions, evaluated in one pass and yielding structured
  :class:`~repro.oracle.invariants.Violation` objects;
- :mod:`repro.oracle.tcp` / :mod:`repro.oracle.gmp` -- the stock
  RFC-793-style and group-membership invariant packs;
- :mod:`repro.oracle.grammar` -- a generator of randomized tclish fault
  scripts over the @cmd-declared PFI command registry;
- :mod:`repro.oracle.fuzz` -- the coverage-guided fault-scenario fuzzer
  (``repro fuzz``) that runs generated scenarios through the campaign
  engine with oracle evaluation as the verdict;
- :mod:`repro.oracle.shrink` -- delta-debugging of violating scenarios
  into deterministic reproduction artifacts.

Experiment modules participate by exporting ``invariants()`` (the pack
that must hold over their traces) and ``conformance_runs(seed)``
(labelled representative traces); :func:`check_module` wires the two
together for the conformance test-suite.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.oracle.gmp import gmp_pack
from repro.oracle.invariants import (Invariant, OracleReport, Violation,
                                     describe, evaluate)
from repro.oracle.tcp import tcp_pack

__all__ = ["Invariant", "OracleReport", "Violation", "describe", "evaluate",
           "tcp_pack", "gmp_pack", "packs_by_name", "check_module"]


def packs_by_name(names) -> list:
    """Resolve pack names ("tcp", "gmp") to fresh invariant instances."""
    factories = {"tcp": tcp_pack, "gmp": gmp_pack}
    pack = []
    for name in names:
        name = name.strip().lower()
        if name not in factories:
            raise ValueError(f"unknown invariant pack {name!r} "
                             f"(available: {', '.join(sorted(factories))})")
        pack.extend(factories[name]())
    return pack


def check_module(module, *, seed: int = 0
                 ) -> Iterator[Tuple[str, OracleReport]]:
    """Evaluate an experiment module's invariants over its own runs.

    The module must export ``invariants()`` (a fresh pack) and
    ``conformance_runs(seed)`` (yielding ``(label, trace)`` pairs);
    yields ``(label, report)`` per run.  A fresh pack is instantiated
    per run -- invariants hold per-trace state.
    """
    for label, trace in module.conformance_runs(seed):
        yield label, evaluate(trace, module.invariants())
