"""The fabric wire protocol: length-prefixed JSON frames over a socket.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON encoding one object.  The framing is deliberately minimal --
no versioned handshake beyond the ``hello``/``welcome`` exchange, no
compression, no pipelining -- because the coordinator/worker dialogue is
strict request/response: the worker writes one frame and reads exactly
one reply, so a torn connection is always detected at a frame boundary
or surfaces as :class:`ProtocolError` (mid-frame EOF), never as silent
corruption.

Message vocabulary (``type`` field):

==============  =========  =================================================
worker → coord  hello      ``{worker, pid}`` once per connection
worker → coord  lease      ask for a shard lease
worker → coord  heartbeat  ``{shard}`` renew a held lease
worker → coord  done       ``{shard, executed, cached}`` shard completed
coord → worker  welcome    handshake reply, carries ``lease_ttl``
coord → worker  grant      ``{shard, indices, attempt, ttl}`` a lease
coord → worker  wait       no shard free now; poll again in ``poll`` s
coord → worker  drain      sweep finished (or aborted): exit cleanly
coord → worker  ack        heartbeat / done acknowledged
==============  =========  =================================================

The protocol is same-host today but multi-host-shaped: nothing in a
frame references shared memory, file descriptors, or the coordinator's
process -- workers find work via leases and publish results via the
shared :class:`~repro.core.fabric.store.ResultStore` directory, so
pointing ``--connect`` at a remote coordinator only requires the store
directory to be on a shared filesystem.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

#: refuse frames beyond this size -- a corrupt length prefix otherwise
#: asks recv to allocate gigabytes
MAX_FRAME_BYTES = 16 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A torn or malformed frame (mid-frame EOF, oversize, bad JSON)."""


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes.

    Returns ``None`` on a clean EOF before the first byte (the peer
    closed between frames); raises :class:`ProtocolError` when the
    connection dies mid-frame.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send {len(body)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds limit {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between length and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise ProtocolError(f"undecodable frame body: {err}") from err
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body is {type(message).__name__}, expected object")
    return message


def request(sock: socket.socket, message: Dict[str, Any]
            ) -> Dict[str, Any]:
    """One request/response round trip (the worker's only call pattern)."""
    send_message(sock, message)
    reply = recv_message(sock)
    if reply is None:
        raise ProtocolError(
            f"coordinator closed the connection awaiting a reply to "
            f"{message.get('type')!r}")
    return reply
