"""Fixtures for observability tests: reuse the core PFI harness."""

import pytest

from tests.core.conftest import Harness


@pytest.fixture
def harness():
    return Harness()
