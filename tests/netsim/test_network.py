"""Unit tests for Network, Node, and partitions."""

import pytest

from repro.netsim.network import Network
from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder


@pytest.fixture
def net():
    sched = Scheduler()
    trace = TraceRecorder(clock=lambda: sched.now)
    return Network(sched, trace=trace)


def wire(net, *addresses):
    inboxes = {}
    for addr in addresses:
        node = net.add_node(f"n{addr}", addr)
        inbox = []
        node.on_receive(lambda p, s, box=inbox: box.append((p, s)))
        inboxes[addr] = inbox
    return inboxes


def test_send_between_nodes(net):
    inboxes = wire(net, 1, 2)
    assert net.send(1, 2, "hi")
    net.scheduler.run()
    assert inboxes[2] == [("hi", 1)]


def test_loopback_delivery(net):
    inboxes = wire(net, 1)
    net.send(1, 1, "self")
    net.scheduler.run()
    assert inboxes[1] == [("self", 1)]


def test_duplicate_address_rejected(net):
    net.add_node("a", 1)
    with pytest.raises(ValueError):
        net.add_node("b", 1)


def test_unroutable_destination_dropped(net):
    wire(net, 1)
    assert net.send(1, 99, "nowhere") is False
    assert net.trace.count("net.unroutable") == 1


def test_partition_blocks_cross_traffic(net):
    inboxes = wire(net, 1, 2, 3)
    net.partition([1], [2, 3])
    assert net.send(1, 2, "x") is False
    assert net.send(2, 3, "y") is True
    net.scheduler.run()
    assert inboxes[2] == []
    assert inboxes[3] == [("y", 2)]


def test_partition_implicit_rest_group(net):
    inboxes = wire(net, 1, 2, 3, 4)
    net.partition([1, 2])
    assert net.send(3, 4, "peer") is True
    assert net.send(3, 1, "cross") is False
    net.scheduler.run()
    assert inboxes[4] == [("peer", 3)]


def test_heal_restores_connectivity(net):
    inboxes = wire(net, 1, 2)
    net.partition([1], [2])
    net.heal()
    assert net.send(1, 2, "back")
    net.scheduler.run()
    assert inboxes[2] == [("back", 1)]


def test_link_down_blocks_one_pair_only(net):
    inboxes = wire(net, 1, 2, 3)
    net.set_link_down(1, 2)
    assert net.send(1, 2, "blocked") is False
    assert net.send(2, 1, "blocked") is False
    assert net.send(1, 3, "fine") is True
    net.scheduler.run()
    assert inboxes[3] == [("fine", 1)]


def test_link_down_one_direction(net):
    inboxes = wire(net, 1, 2)
    net.set_link_down(1, 2, both=False)
    assert net.send(1, 2, "no") is False
    assert net.send(2, 1, "yes") is True
    net.scheduler.run()
    assert inboxes[1] == [("yes", 2)]


def test_link_up_restores(net):
    inboxes = wire(net, 1, 2)
    net.set_link_down(1, 2)
    net.set_link_up(1, 2)
    assert net.send(1, 2, "again")
    net.scheduler.run()
    assert inboxes[2] == [("again", 1)]


def test_broadcast(net):
    inboxes = wire(net, 1, 2, 3)
    accepted = net.broadcast(1, lambda dst: f"to-{dst}")
    net.scheduler.run()
    assert accepted == 2
    assert inboxes[2] == [("to-2", 1)]
    assert inboxes[3] == [("to-3", 1)]
    assert inboxes[1] == []


def test_broadcast_include_self(net):
    inboxes = wire(net, 1, 2)
    net.broadcast(1, lambda dst: dst, include_self=True)
    net.scheduler.run()
    assert inboxes[1] == [(1, 1)]


def test_halted_node_receives_nothing(net):
    inboxes = wire(net, 1, 2)
    net.node(2).halt()
    net.send(1, 2, "dead letter")
    net.scheduler.run()
    assert inboxes[2] == []


def test_halted_node_cannot_send(net):
    wire(net, 1, 2)
    net.node(1).halt()
    assert net.node(1).transmit("x", 2) is False


def test_nodes_ordered_by_address(net):
    wire(net, 3, 1, 2)
    assert [n.address for n in net.nodes()] == [1, 2, 3]


def test_trace_records_sends(net):
    wire(net, 1, 2)
    net.send(1, 2, "x")
    assert net.trace.count("net.send") == 1
    net.partition([1], [2])
    net.send(1, 2, "y")
    assert net.trace.count("net.partition_drop") == 1
