"""Command and word splitting for tclish.

Tcl parsing happens in two stages: a script is split into commands
(separated by newlines and semicolons outside of any nesting), and each
command is split into raw words (whitespace separated, respecting ``{}``,
``""`` and ``[]`` nesting).  Substitution of ``$``, ``[]`` and backslashes
inside words happens later, at evaluation time, because command
substitution needs a live interpreter.

The splitters here preserve the raw text of each word including its outer
braces/quotes; :mod:`repro.core.tclish.interp` decides how to substitute
based on that first character.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.tclish.errors import TclError


def split_commands(script: str) -> List[str]:
    """Split a script into command strings.

    Separators are newlines and semicolons at nesting depth zero.  Comments
    (``#`` where a command would start) run to the end of the line.  Empty
    commands are dropped.
    """
    return [text for text, _offset in split_commands_spanned(script)]


def split_commands_spanned(script: str) -> List[Tuple[str, int]]:
    """Split a script into ``(command, offset)`` pairs.

    ``offset`` is the index in ``script`` of the command's first character,
    so static analysis (:mod:`repro.core.tclish.lint`) can map every
    command back to a line and column.  Each command text is a contiguous
    substring of the source starting at its offset (only trailing
    whitespace is stripped).
    """
    commands: List[Tuple[str, int]] = []
    current: List[str] = []
    start_offset = 0
    depth_brace = 0
    depth_bracket = 0
    in_quote = False
    i = 0
    n = len(script)
    at_command_start = True

    while i < n:
        ch = script[i]
        if at_command_start and ch in " \t":
            i += 1
            continue
        if at_command_start and ch == "#" and depth_brace == 0 and depth_bracket == 0:
            while i < n and script[i] != "\n":
                i += 1
            continue
        if at_command_start:
            start_offset = i
        at_command_start = False

        if ch == "\\" and i + 1 < n:
            current.append(script[i:i + 2])
            i += 2
            continue
        if in_quote:
            if ch == '"':
                in_quote = False
            current.append(ch)
            i += 1
            continue
        if ch == '"' and depth_brace == 0:
            in_quote = True
            current.append(ch)
            i += 1
            continue
        if ch == "{":
            depth_brace += 1
        elif ch == "}":
            depth_brace -= 1
            if depth_brace < 0:
                raise TclError("unbalanced close brace")
        elif ch == "[" and depth_brace == 0:
            depth_bracket += 1
        elif ch == "]" and depth_brace == 0:
            depth_bracket -= 1
            if depth_bracket < 0:
                raise TclError("unbalanced close bracket")

        if ch in "\n;" and depth_brace == 0 and depth_bracket == 0:
            text = "".join(current).strip()
            if text:
                commands.append((text, start_offset))
            current = []
            at_command_start = True
            i += 1
            continue

        current.append(ch)
        i += 1

    if in_quote:
        raise TclError("unterminated quote")
    if depth_brace != 0:
        raise TclError("unbalanced open brace")
    if depth_bracket != 0:
        raise TclError("unbalanced open bracket")
    text = "".join(current).strip()
    if text:
        commands.append((text, start_offset))
    return commands


def split_words(command: str) -> List[str]:
    """Split one command into raw words.

    Words keep their outer ``{}`` or ``""`` delimiters so the evaluator can
    tell braced (no substitution) from quoted/bare (substitution) words.
    """
    return [text for text, _offset in split_words_spanned(command)]


def split_words_spanned(command: str) -> List[Tuple[str, int]]:
    """Split one command into ``(raw_word, offset)`` pairs.

    ``offset`` is the index of the word's first character within
    ``command``; the lint walker adds the command's own offset to recover
    absolute source positions.
    """
    words: List[Tuple[str, int]] = []
    i = 0
    n = len(command)
    while i < n:
        while i < n and command[i] in " \t\n":
            i += 1
        if i >= n:
            break
        start = i
        ch = command[i]
        if ch == "{":
            depth = 0
            while i < n:
                if command[i] == "\\" and i + 1 < n:
                    i += 2
                    continue
                if command[i] == "{":
                    depth += 1
                elif command[i] == "}":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
            else:
                raise TclError("unmatched open brace in word")
            if depth != 0:
                raise TclError("unmatched open brace in word")
            words.append((command[start:i], start))
        elif ch == '"':
            i += 1
            while i < n:
                if command[i] == "\\" and i + 1 < n:
                    i += 2
                    continue
                if command[i] == '"':
                    i += 1
                    break
                if command[i] == "[":
                    i = _skip_bracket(command, i)
                    continue
                i += 1
            else:
                raise TclError("unterminated quoted word")
            words.append((command[start:i], start))
        else:
            while i < n and command[i] not in " \t\n":
                if command[i] == "\\" and i + 1 < n:
                    i += 2
                    continue
                if command[i] == "[":
                    i = _skip_bracket(command, i)
                    continue
                if command[i] == "{":
                    i = _skip_brace(command, i)
                    continue
                i += 1
            words.append((command[start:i], start))
    return words


def _skip_bracket(text: str, i: int) -> int:
    """Given ``text[i] == '['``, return index just past the matching ']'."""
    depth = 0
    n = len(text)
    while i < n:
        if text[i] == "\\" and i + 1 < n:
            i += 2
            continue
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    raise TclError("unmatched open bracket")


def _skip_brace(text: str, i: int) -> int:
    """Given ``text[i] == '{'``, return index just past the matching '}'."""
    depth = 0
    n = len(text)
    while i < n:
        if text[i] == "\\" and i + 1 < n:
            i += 2
            continue
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    raise TclError("unmatched open brace")


def strip_braces(word: str) -> str:
    """Remove one level of outer braces or quotes from a raw word."""
    if len(word) >= 2 and word[0] == "{" and word[-1] == "}":
        return word[1:-1]
    if len(word) >= 2 and word[0] == '"' and word[-1] == '"':
        return word[1:-1]
    return word
