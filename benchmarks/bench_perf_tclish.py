"""Messages-filtered-per-second: compile-once tclish vs parse-per-message.

The paper's hot loop -- "each time a message passes into the PFI layer,
the appropriate (send or receive) script is interpreted" -- runs a
representative receive filter over a stream of intercepted messages
through a real PFI layer, once with the compiled execution engine
(default) and once with the legacy parse-per-message path
(``TclishFilter(..., compiled=False)``).  Reports messages/sec for both
and the speedup; ``__main__`` merges the numbers into BENCH_PERF.json.
"""

from __future__ import annotations

import argparse
import time

import perf_common

from repro.core import PFILayer, PacketStubs, TclishFilter, make_env
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.xkernel.stack import ProtocolStack

#: a representative paper-style receive filter: per-message counting,
#: type dispatch, field inspection, and occasional drop/delay actions
FILTER_SOURCE = """
incr seen
set type [msg_type cur_msg]
if {$type eq "ACK"} {
    incr acks
    if {$acks % 50 == 0} { xDrop cur_msg }
} elseif {$type eq "DATA"} {
    if {[msg_field seq] % 400 == 0} { xDelay 0.001 }
    set last_seq [msg_field seq]
}
"""
FILTER_INIT = "set seen 0; set acks 0; set last_seq -1"


class _Sink(Protocol):
    def __init__(self, name):
        super().__init__(name)
        self.count = 0

    def push(self, msg):
        self.count += 1

    def pop(self, msg):
        self.count += 1


def _build_rig(compiled: bool):
    """A two-layer stack with a PFI layer in the middle, filter installed."""
    env = make_env(seed=1)
    stubs = PacketStubs()
    stubs.register_recognizer(lambda msg: msg.meta.get("type"))
    pfi = PFILayer("pfi", env.scheduler, stubs, trace=env.trace,
                   sync=env.sync, node="bench")
    ProtocolStack().build(_Sink("top"), pfi, _Sink("bottom"))
    script = TclishFilter(FILTER_SOURCE, init_script=FILTER_INIT,
                          compiled=compiled)
    pfi.set_receive_filter(script)
    return env, pfi, script


def _filter_messages(messages: int, compiled: bool):
    """Push ``messages`` alternating ACK/DATA messages through the filter."""
    env, pfi, script = _build_rig(compiled)
    # warm interpreter, caches, and allocator outside the timed window
    for i in range(200):
        pfi.pop(Message({"seq": i}, meta={"type": "ACK"}))
    start = time.perf_counter()
    for i in range(messages):
        kind = "ACK" if i % 2 else "DATA"
        pfi.pop(Message({"seq": i}, meta={"type": kind}))
    elapsed = time.perf_counter() - start
    env.run_until(10.0)  # drain delayed forwards so the run completes
    return elapsed, script


def run_bench(messages: int = 20_000, verbose: bool = True) -> dict:
    """Measure both engines; returns the BENCH_PERF.json payload."""
    fresh_s, fresh_script = _filter_messages(messages, compiled=False)
    compiled_s, compiled_script = _filter_messages(messages, compiled=True)
    payload = {
        "messages": messages,
        "compiled_msgs_per_sec": round(messages / compiled_s, 1),
        "fresh_parse_msgs_per_sec": round(messages / fresh_s, 1),
        "speedup": round(fresh_s / compiled_s, 2),
        "interp_stats": compiled_script.interp.stats(),
    }
    if verbose:
        print(f"tclish filter throughput over {messages} messages:")
        print(f"  fresh-parse : {payload['fresh_parse_msgs_per_sec']:>12,.1f} msgs/sec")
        print(f"  compiled    : {payload['compiled_msgs_per_sec']:>12,.1f} msgs/sec")
        print(f"  speedup     : {payload['speedup']:.2f}x")
        print(f"  interp stats: {payload['interp_stats']}")
    # both engines must have done the same filtering work
    assert (compiled_script.interp.eval("set seen")
            == fresh_script.interp.eval("set seen"))
    assert (compiled_script.interp.eval("set acks")
            == fresh_script.interp.eval("set acks"))
    return payload


def test_perf_tclish_quick():
    """CI smoke: the compiled engine must stay well ahead of fresh parsing."""
    payload = run_bench(messages=4_000)
    assert payload["speedup"] >= 2.0, payload
    stats = payload["interp_stats"]
    assert stats["cache_hits"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller message count, no JSON update")
    parser.add_argument("--messages", type=int, default=20_000)
    args = parser.parse_args()
    result = run_bench(messages=4_000 if args.quick else args.messages)
    if args.quick:
        assert result["speedup"] >= 2.0, result
    else:
        assert result["speedup"] >= 3.0, result
        perf_common.update_bench_json("tclish", result)
