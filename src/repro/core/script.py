"""Filter scripts: the programmable half of the PFI layer.

A filter script runs once per intercepted message.  Two backends implement
the same contract:

- :class:`PythonFilter` wraps a Python callable ``fn(ctx)`` -- the
  ergonomic modern form;
- :class:`TclishFilter` evaluates tclish source in a persistent
  :class:`~repro.core.tclish.Interp`, faithfully reproducing the paper's
  Tcl scripts ("each time a message passes into the PFI layer, the
  appropriate (send or receive) script is interpreted in the appropriate
  interpreter").

Both persist state across invocations: PythonFilter via ``ctx.state``
(one dict per filter), TclishFilter via the interpreter's variables.

The tclish bridge registers the paper's utility commands (``msg_type``,
``xDrop``, ``xDelay``, ``chance``, ...).  Every command is declared once
through the :func:`cmd` decorator with its arity bounds, usage line and
doc string; that single declaration drives

- runtime registration (:meth:`~repro.core.tclish.Interp
  .register_command`) including argument-count enforcement, and
- the static analyzer's command registry
  (:func:`repro.core.tclish.lint.default_registry`),

so lint and runtime can never disagree about the command surface.
:data:`PFI_COMMANDS` is the authoritative table; render it with
:func:`pfi_command_table`.
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.core.context import ScriptContext
from repro.core.tclish import Interp, TclError
from repro.core.tclish.lint.registry import CommandSignature


class FilterScript:
    """Base class: something that can process one intercepted message."""

    def run(self, ctx: ScriptContext) -> None:
        raise NotImplementedError


class PythonFilter(FilterScript):
    """A filter implemented as a Python callable ``fn(ctx)``."""

    def __init__(self, fn: Callable[[ScriptContext], None], name: str = ""):
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "python_filter")

    def run(self, ctx: ScriptContext) -> None:
        self._fn(ctx)

    def __repr__(self) -> str:
        return f"PythonFilter({self.name})"


class TclishLintWarning(UserWarning):
    """A TclishFilter was built from a script with lint errors."""


class TclishFilter(FilterScript):
    """A filter whose body is tclish source, evaluated per message.

    The interpreter is created once and reused, so ``set count 0`` in
    ``init_script`` followed by ``incr count`` in the body counts messages
    across invocations exactly like the paper's Tcl interpreters.

    The body is compiled into the shared tclish compile cache at
    construction, so each ``run`` executes the cached command list instead
    of re-lexing the source per message.  ``compiled=False`` restores the
    parse-per-message behaviour (equivalence tests, benchmarks).

    ``lint`` controls construction-time static analysis of the script
    (:mod:`repro.core.tclish.lint`):

    - ``"warn"`` (default): error-level diagnostics are surfaced as a
      Python :class:`TclishLintWarning`; the full report is kept on
      ``self.lint_report``;
    - ``"error"``: error-level diagnostics raise
      :class:`~repro.core.tclish.lint.TclishLintError` listing every
      finding (campaigns and the generator use this);
    - ``"off"``: skip analysis entirely.
    """

    def __init__(self, source: str, init_script: str = "", name: str = "tclish",
                 *, compiled: bool = True, lint: str = "warn"):
        if lint not in ("error", "warn", "off"):
            raise ValueError(f'lint mode must be "error", "warn" or "off", '
                             f"got {lint!r}")
        self.source = source
        self.name = name
        self.lint_report = None
        if lint != "off":
            from repro.core.tclish.lint import lint_source
            from repro.core.tclish.lint.reporting import TclishLintError
            self.lint_report = lint_source(source, init_script=init_script,
                                           source_name=name)
            if not self.lint_report.ok():
                if lint == "error":
                    raise TclishLintError(self.lint_report)
                from repro.core.tclish.lint.reporting import render_text
                warnings.warn(
                    f"tclish filter {name!r} has lint errors:\n"
                    f"{render_text(self.lint_report)}",
                    TclishLintWarning, stacklevel=2)
        self.interp = Interp(compiled=compiled)
        self._ctx_cell: List[Optional[ScriptContext]] = [None]
        self.profiler = None
        _register_bridge(self.interp, self._ctx_cell)
        if compiled:
            self.interp.compile(source)
        if init_script:
            self.interp.eval(init_script)

    def enable_profiler(self, profiler=None):
        """Attach a :class:`~repro.obs.profiler.ScriptProfiler`.

        Instruments both granularities at once: per-command wall time in
        the interpreter's compiled-exec path, and per-invocation wall
        time of this filter recorded under its ``name``.  Pass a shared
        profiler to aggregate several filters; returns the profiler so
        ``prof = f.enable_profiler()`` reads naturally.
        """
        if profiler is None:
            from repro.obs.profiler import ScriptProfiler
            profiler = ScriptProfiler()
        self.profiler = profiler
        self.interp.profiler = profiler
        return profiler

    def disable_profiler(self) -> None:
        """Detach the profiler; ``run`` goes back to the zero-cost path."""
        self.profiler = None
        self.interp.profiler = None

    def __deepcopy__(self, memo):
        """Checkpoint-aware copy: duplicate the interpreter state, then
        re-register the PFI bridge against the copy's own context cell.

        The bridge commands installed at construction are closures over
        ``self._ctx_cell``; ``copy.deepcopy`` treats closures as atomic,
        so a plain deep copy would leave the copy's commands reading the
        *original* filter's current-message cell.  Re-running
        :func:`_register_bridge` replaces exactly those commands while
        the interpreter's variables, procs and output -- the state a
        checkpointed fork must carry -- come through the deep copy.
        """
        import copy as _copy
        clone = object.__new__(type(self))
        memo[id(self)] = clone
        clone.source = self.source
        clone.name = self.name
        clone.lint_report = self.lint_report
        clone.profiler = None
        clone._ctx_cell = [None]
        clone.interp = _copy.deepcopy(self.interp, memo)
        clone.interp.profiler = None
        _register_bridge(clone.interp, clone._ctx_cell)
        return clone

    def run(self, ctx: ScriptContext) -> None:
        self._ctx_cell[0] = ctx
        profiler = self.profiler
        if profiler is None:
            try:
                self.interp.eval(self.source)
            finally:
                self._ctx_cell[0] = None
            return
        start = perf_counter()
        try:
            self.interp.eval(self.source)
        finally:
            profiler.record_script(self.name, perf_counter() - start)
            self._ctx_cell[0] = None

    @property
    def output_lines(self) -> List[str]:
        """Lines produced by ``puts`` across all invocations."""
        return self.interp.output_lines

    def __repr__(self) -> str:
        return f"TclishFilter({self.name})"


# ----------------------------------------------------------------------
# the PFI command surface: one declaration per command
# ----------------------------------------------------------------------

#: name -> :class:`CommandSignature` for every PFI bridge command.  Filled
#: by the :func:`cmd` decorator below; the single source of truth for
#: runtime arity enforcement, the lint registry and the docs table.
PFI_COMMANDS: Dict[str, CommandSignature] = {}

#: name -> implementation ``fn(ctx, interp, args)``
_PFI_IMPLS: Dict[str, Callable] = {}


def cmd(name: str, min_args: int = 0, max_args: Optional[int] = None,
        usage: str = "", doc: str = ""):
    """Declare a PFI bridge command: signature + implementation, once.

    The decorated function receives ``(ctx, interp, args)`` where ``ctx``
    is the live :class:`~repro.core.context.ScriptContext`.  Argument
    counts outside ``[min_args, max_args]`` are rejected before the
    implementation runs, with the declared usage line -- the same bounds
    the static analyzer checks, so a script that lints clean cannot die
    on arity at runtime.
    """
    signature = CommandSignature(name, min_args, max_args,
                                 usage or name, doc)

    def decorator(fn):
        PFI_COMMANDS[name] = signature
        _PFI_IMPLS[name] = fn
        return fn
    return decorator


def pfi_command_table() -> str:
    """Render the command surface as aligned ``usage  doc`` lines."""
    rows = [(sig.usage, sig.doc) for sig in PFI_COMMANDS.values()]
    width = max(len(usage) for usage, _doc in rows)
    return "\n".join(f"{usage:<{width}}  {doc}" for usage, doc in rows)


@cmd("msg_type", 0, 1, "msg_type ?cur_msg?",
     "type name of the current message")
def _msg_type(ctx, _i, args):
    return ctx.msg_type()


@cmd("msg_log", 0, 2, "msg_log ?cur_msg? ?note?",
     "log the message with a timestamp")
def _msg_log(ctx, _i, args):
    note = args[1] if len(args) > 1 else ""
    ctx.log(note)
    return ""


@cmd("msg_field", 1, 1, "msg_field name", "read header field ``name``")
def _msg_field(ctx, _i, args):
    if not args:
        raise TclError('usage: msg_field name')
    value = ctx.field(args[0])
    return _stringify(value)


@cmd("msg_set_field", 2, 2, "msg_set_field name value",
     "modify header field ``name``")
def _msg_set_field(ctx, _i, args):
    if len(args) != 2:
        raise TclError('usage: msg_set_field name value')
    ctx.set_field(args[0], _parse_scalar(args[1]))
    return ""


@cmd("msg_len", 0, 1, "msg_len ?cur_msg?", "length of the current message")
def _msg_len(ctx, _i, args):
    return str(len(ctx.msg))


@cmd("xDrop", 0, 1, "xDrop ?cur_msg?", "drop the message")
def _drop(ctx, _i, args):
    ctx.drop()
    return ""


@cmd("xDelay", 1, 2, "xDelay ?cur_msg? seconds", "delay the message")
def _delay(ctx, _i, args):
    numeric = [a for a in args if _is_number(a)]
    if not numeric:
        raise TclError("usage: xDelay ?cur_msg? seconds")
    ctx.delay(float(numeric[0]))
    return ""


@cmd("xDuplicate", 0, 2, "xDuplicate ?cur_msg? ?n?",
     "duplicate the message")
def _duplicate(ctx, _i, args):
    numeric = [a for a in args if _is_number(a)]
    copies = int(float(numeric[0])) if numeric else 1
    ctx.duplicate(copies)
    return ""


@cmd("xHold", 0, 2, "xHold ?cur_msg? ?tag?",
     "park the message for reordering")
def _hold(ctx, _i, args):
    tag = _tag_arg(args)
    ctx.hold(tag)
    return ""


@cmd("xRelease", 0, 2, "xRelease ?cur_msg? ?tag?",
     "re-emit parked messages")
def _release(ctx, _i, args):
    tag = _tag_arg(args)
    ctx.release(tag)
    return ""


@cmd("held_count", 0, 2, "held_count ?cur_msg? ?tag?",
     "number of messages parked under ``tag``")
def _held_count(ctx, _i, args):
    tag = _tag_arg(args)
    return str(ctx.held_count(tag))


@cmd("inject", 1, None, "inject type ?direction? ?field value ...?",
     "inject a generated message")
def _inject(ctx, _i, args):
    if not args:
        raise TclError("usage: inject type ?field value ...?")
    type_name = args[0]
    rest = args[1:]
    direction = None
    if rest and rest[0] in ("send", "receive"):
        direction = rest[0]
        rest = rest[1:]
    if len(rest) % 2 != 0:
        raise TclError("inject fields must come in name/value pairs")
    fields = {rest[i]: _parse_scalar(rest[i + 1])
              for i in range(0, len(rest), 2)}
    ctx.inject(type_name, direction=direction, **fields)
    return ""


@cmd("now", 0, 0, "now", "virtual time")
def _now(ctx, _i, args):
    return repr(ctx.now)


@cmd("peer_set", 2, 2, "peer_set key value",
     "set a variable in the other interpreter")
def _peer_set(ctx, _i, args):
    # write a variable into the *other* filter's state -- "the send
    # filter might set a variable in the receive interpreter"
    if len(args) != 2:
        raise TclError("usage: peer_set key value")
    ctx.set_peer(args[0], _parse_scalar(args[1]))
    return ""


@cmd("peer_get", 1, 2, "peer_get key ?default?",
     "read a variable the peer filter deposited")
def _peer_get(ctx, _i, args):
    # read a variable the peer filter deposited for us (peer_set on
    # their side lands in OUR state)
    default = args[1] if len(args) > 1 else ""
    value = ctx.state.get(args[0], default)
    return _stringify(value)


@cmd("sync_set", 1, 2, "sync_set key ?value?", "set a cross-node flag")
def _sync_set(ctx, _i, args):
    value = _parse_scalar(args[1]) if len(args) > 1 else 1
    ctx.sync.set_flag(args[0], value)
    return ""


@cmd("sync_get", 1, 2, "sync_get key ?default?", "read a cross-node flag")
def _sync_get(ctx, _i, args):
    default = args[1] if len(args) > 1 else ""
    return _stringify(ctx.sync.get_flag(args[0], default))


@cmd("dst_normal", 2, 2, "dst_normal mean stddev",
     "normal draw (paper naming)")
def _dst_normal(ctx, _i, args):
    return repr(ctx.dist.dst_normal(float(args[0]), float(args[1])))


@cmd("dst_uniform", 2, 2, "dst_uniform low high", "uniform draw")
def _dst_uniform(ctx, _i, args):
    return repr(ctx.dist.dst_uniform(float(args[0]), float(args[1])))


@cmd("dst_exponential", 1, 1, "dst_exponential rate", "exponential draw")
def _dst_exponential(ctx, _i, args):
    return repr(ctx.dist.dst_exponential(float(args[0])))


@cmd("chance", 1, 1, "chance p", "1 with probability p else 0")
def _chance(ctx, _i, args):
    return "1" if ctx.dist.chance(float(args[0])) else "0"


@cmd("node_name", 0, 0, "node_name", "name of this node")
def _node_name(ctx, _i, args):
    return ctx.node


@cmd("direction", 0, 0, "direction", "'send' or 'receive'")
def _direction(ctx, _i, args):
    return ctx.direction


def _register_bridge(interp: Interp, cell: List[Optional[ScriptContext]]) -> None:
    """Install the PFI utility commands on a tclish interpreter."""

    def ctx() -> ScriptContext:
        current = cell[0]
        if current is None:
            raise TclError("no message is being filtered right now")
        return current

    def make_command(signature: CommandSignature, fn: Callable):
        def command(i: Interp, args: List[str]) -> str:
            if not signature.accepts(len(args)):
                raise TclError(f"usage: {signature.usage}")
            return fn(ctx(), i, args)
        return command

    for name, fn in _PFI_IMPLS.items():
        interp.register_command(name, make_command(PFI_COMMANDS[name], fn))


def _tag_arg(args) -> str:
    """Pull the hold-queue tag out of args, ignoring a cur_msg handle."""
    for arg in args:
        if arg != "cur_msg":
            return arg
    return "default"


def _is_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _parse_scalar(text: str):
    """Best-effort string -> int/float passthrough for field values."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _stringify(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if value is None:
        return ""
    return str(value)
