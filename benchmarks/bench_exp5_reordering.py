"""Regenerates paper §4.1 Experiment 5: reordering of messages.

"The result was the same for [all four implementations].  The second
packet (which actually arrived at the receiver first), was queued.  When
the data from the first segment arrived at the receiver, the receiver
acked the data from both segments."
"""

from repro.analysis.tables import render_table
from repro.experiments.tcp_reordering import run_all

from conftest import emit


def test_experiment5_reordering(once_benchmark):
    results = once_benchmark(run_all)
    rows = [[r.vendor,
             "queued out-of-order segment" if r.second_segment_queued
             else "DROPPED out-of-order segment",
             "ACKed both segments at once" if r.acked_both_at_once
             else "did NOT cumulatively ACK",
             "delivered intact" if r.data_delivered_in_order
             else "DATA CORRUPTED"]
            for r in results.values()]
    emit("Experiment 5: Reordering of messages",
         render_table("(second segment overtakes a 3 s-delayed first)",
                      ["Implementation", "Queueing", "Acknowledgement",
                       "Integrity"], rows))
    for result in results.values():
        assert result.second_segment_queued
        assert result.acked_both_at_once
        assert result.data_delivered_in_order
        assert result.duplicate_deliveries == 0
