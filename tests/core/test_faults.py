"""Unit tests for the failure-model fault factories and severity lattice."""

import pytest

from repro.core import faults
from repro.core.faults import (COVERS, FailureModel, SEVERITY_ORDER,
                               is_at_least_as_severe, tolerance_implied)
from tests.core.conftest import Harness


@pytest.fixture
def harness():
    return Harness()


class TestSeverityLattice:
    def test_order_matches_paper(self):
        assert SEVERITY_ORDER[0] is FailureModel.PROCESS_CRASH
        assert SEVERITY_ORDER[-1] is FailureModel.BYZANTINE

    def test_byzantine_covers_everything(self):
        for model in FailureModel:
            assert is_at_least_as_severe(FailureModel.BYZANTINE, model)

    def test_crash_covers_only_itself(self):
        assert is_at_least_as_severe(FailureModel.PROCESS_CRASH,
                                     FailureModel.PROCESS_CRASH)
        assert not is_at_least_as_severe(FailureModel.PROCESS_CRASH,
                                         FailureModel.SEND_OMISSION)

    def test_general_omission_covers_send_and_receive(self):
        assert is_at_least_as_severe(FailureModel.GENERAL_OMISSION,
                                     FailureModel.SEND_OMISSION)
        assert is_at_least_as_severe(FailureModel.GENERAL_OMISSION,
                                     FailureModel.RECEIVE_OMISSION)

    def test_tolerance_implication(self):
        implied = tolerance_implied(FailureModel.GENERAL_OMISSION)
        assert FailureModel.PROCESS_CRASH in implied
        assert FailureModel.BYZANTINE not in implied

    def test_covers_transitive(self):
        """If A covers B and B covers C then A covers C."""
        for a in FailureModel:
            for b in COVERS[a]:
                for c in COVERS[b]:
                    assert is_at_least_as_severe(a, c), (a, b, c)


class TestCrash:
    def test_crash_after_n_passes_then_drops(self, harness):
        harness.pfi.set_receive_filter(faults.crash_after(3))
        for _ in range(6):
            harness.send_up()
        assert len(harness.top.received) == 3

    def test_crash_is_permanent(self, harness):
        harness.pfi.set_receive_filter(faults.crash_after(0))
        for _ in range(5):
            harness.send_up()
        assert harness.top.received == []

    def test_crash_with_predicate(self, harness):
        harness.pfi.set_send_filter(faults.crash_after(
            when=lambda ctx: ctx.msg_type() == "TRIGGER"))
        harness.send_down("DATA")
        harness.send_down("TRIGGER")
        harness.send_down("DATA")
        assert len(harness.bottom.received) == 1

    def test_crash_at_time(self, harness):
        harness.pfi.set_send_filter(faults.crash_at(5.0))
        harness.send_down()
        harness.env.scheduler.run_until(6.0)
        harness.send_down()
        assert len(harness.bottom.received) == 1


class TestOmission:
    def test_send_omission_probability_zero(self, harness):
        harness.pfi.set_send_filter(faults.send_omission(0.0))
        for _ in range(20):
            harness.send_down()
        assert len(harness.bottom.received) == 20

    def test_send_omission_probability_one(self, harness):
        harness.pfi.set_send_filter(faults.send_omission(1.0))
        for _ in range(20):
            harness.send_down()
        assert harness.bottom.received == []

    def test_send_omission_intermittent(self, harness):
        harness.pfi.set_send_filter(faults.send_omission(0.5))
        for _ in range(200):
            harness.send_down()
        delivered = len(harness.bottom.received)
        assert 50 < delivered < 150

    def test_receive_omission(self, harness):
        harness.pfi.set_receive_filter(faults.receive_omission(1.0))
        harness.send_up()
        assert harness.top.received == []

    def test_general_omission_returns_pair(self, harness):
        send_f, recv_f = faults.general_omission(1.0, 1.0)
        harness.pfi.set_send_filter(send_f)
        harness.pfi.set_receive_filter(recv_f)
        harness.send_down()
        harness.send_up()
        assert harness.bottom.received == []
        assert harness.top.received == []


class TestTiming:
    def test_fixed_delay(self, harness):
        harness.pfi.set_send_filter(faults.timing_failure(2.0))
        harness.send_down()
        assert harness.bottom.received == []
        harness.run()
        assert len(harness.bottom.received) == 1

    def test_conditional_delay(self, harness):
        harness.pfi.set_send_filter(faults.timing_failure(
            2.0, when=lambda ctx: ctx.msg_type() == "SLOW"))
        harness.send_down("FAST")
        harness.send_down("SLOW")
        assert len(harness.bottom.received) == 1
        harness.run()
        assert len(harness.bottom.received) == 2

    def test_jittered_delay_never_negative(self, harness):
        harness.pfi.set_send_filter(faults.timing_failure(
            0.01, jitter_var=4.0))
        for _ in range(50):
            harness.send_down()
        harness.run()
        assert len(harness.bottom.received) == 50


class TestByzantine:
    def test_corruption_mutates(self, harness):
        from repro.xkernel.message import Message
        harness.pfi.set_send_filter(faults.byzantine_corruption(
            lambda ctx: ctx.set_field("value", -1)))
        msg = Message(payload={"value": 10}, meta={"type": "DATA"})
        harness.pfi.push(msg)
        assert harness.bottom.received[0].payload["value"] == -1

    def test_spurious_messages(self, harness):
        harness.pfi.set_send_filter(faults.byzantine_spurious(
            "PROBE", every_n=2))
        for _ in range(6):
            harness.send_down()
        harness.run()
        injected = [m for m in harness.bottom.received
                    if m.meta.get("injected")]
        assert len(injected) == 3

    def test_reorder_inverts_pairs(self, harness):
        harness.pfi.set_send_filter(faults.byzantine_reorder(2))
        harness.send_down(tag=1)
        harness.send_down(tag=2)
        harness.run()
        tags = [m.meta["tag"] for m in harness.bottom.received]
        assert tags == [2, 1]

    def test_reorder_window_validation(self):
        with pytest.raises(ValueError):
            faults.byzantine_reorder(1)


class TestDeterministicHelpers:
    def test_drop_by_type(self, harness):
        harness.pfi.set_receive_filter(faults.drop_by_type("ACK", "NACK"))
        harness.send_up("ACK")
        harness.send_up("NACK")
        harness.send_up("DATA")
        assert len(harness.top.received) == 1

    def test_delay_by_type(self, harness):
        harness.pfi.set_send_filter(faults.delay_by_type(3.0, "ACK"))
        harness.send_down("ACK")
        harness.send_down("DATA")
        assert len(harness.bottom.received) == 1
        harness.run()
        assert len(harness.bottom.received) == 2
