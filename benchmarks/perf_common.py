"""Shared plumbing for the perf benchmarks (`bench_perf_*.py`).

Unlike the table benches (which regenerate paper results), the perf
benches track the *speed trajectory* of the toolchain itself: each one
measures its subsystem and merges a section into ``BENCH_PERF.json`` at
the repository root, so successive PRs can compare numbers.

Run them directly::

    PYTHONPATH=src python benchmarks/bench_perf_tclish.py [--quick]
    PYTHONPATH=src python benchmarks/bench_perf_campaign.py [--quick]

or via pytest (quick mode, no JSON update)::

    pytest benchmarks/bench_perf_tclish.py benchmarks/bench_perf_campaign.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_PERF.json"

# allow `python benchmarks/bench_perf_*.py` without an explicit PYTHONPATH
_SRC = str(ROOT / "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)


def update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into the BENCH_PERF.json baseline at the repo root."""
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"updated {BENCH_JSON} [{section}]")
