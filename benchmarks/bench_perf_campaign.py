"""Campaign wall-clock: serial vs process-parallel configuration sweeps.

Each configuration is an independent seeded discrete-event run (a chain
of jittered timer events), exactly the shape of the paper's per-vendor
sweeps.  Always verifies the determinism contract -- a parallel sweep
must produce identical results in identical order to a serial one -- and
on multi-core hardware additionally measures the wall-clock speedup of
``workers=4`` over serial.

On a single-CPU box a 4-worker pool is process-switching overhead with
nothing to parallelize, so the timing comparison would only record noise:
the bench marks the speedup section ``{"skipped": "1 cpu"}`` instead of
publishing a misleading sub-1x number, and CI (which runs multi-core)
carries the real gate.
"""

from __future__ import annotations

import argparse
import os
import time

import perf_common

from repro.core.orchestrator import Campaign

WORKERS = 4


class _Ticker:
    """Callable timer chain (a closure would trip the SC101 preflight)."""

    def __init__(self, env, dist, target):
        self.env = env
        self.dist = dist
        self.target = target
        self.fired = 0
        self.acc = 0.0

    def __call__(self):
        self.fired += 1
        self.acc += self.dist.dst_uniform(0.0, 1.0)
        if self.fired < self.target:
            self.env.scheduler.schedule(
                self.dist.dst_exponential(50.0), self)


def campaign_body(env, config):
    """One independent simulated run: a chain of jittered timer events."""
    dist = env.dist("load", config["profile"])
    ticker = _Ticker(env, dist, config["events"])
    env.scheduler.schedule(0.0, ticker)
    final_time = env.run_until_quiet()
    env.trace.record("bench.done", t=final_time, fired=ticker.fired)
    return {"fired": ticker.fired, "acc": round(ticker.acc, 9),
            "final_time": round(final_time, 9)}


def _configs(count: int, events: int):
    return [{"profile": f"vendor{i}", "events": events} for i in range(count)]


def run_bench(configs: int = 8, events: int = 20_000,
              verbose: bool = True) -> dict:
    """Measure serial vs parallel sweeps; returns the JSON payload."""
    campaign = Campaign(campaign_body, seed=42)
    sweep = _configs(configs, events)
    cpu_count = os.cpu_count() or 1

    start = time.perf_counter()
    serial = campaign.run(sweep)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = campaign.run(sweep, workers=WORKERS)
    parallel_s = time.perf_counter() - start

    identical = (
        [r.config for r in serial] == [r.config for r in parallel]
        and [r.result for r in serial] == [r.result for r in parallel]
        and [list(r.trace) for r in serial] == [list(r.trace) for r in parallel]
    )
    payload = {
        "configs": configs,
        "events_per_config": events,
        "workers": WORKERS,
        "cpu_count": cpu_count,
        "serial_seconds": round(serial_s, 4),
        "identical": identical,
    }
    if cpu_count >= 2:
        payload["parallel_seconds"] = round(parallel_s, 4)
        payload["speedup"] = round(serial_s / parallel_s, 2)
    else:
        payload["speedup"] = {"skipped": "1 cpu"}
    if verbose:
        print(f"campaign sweep: {configs} configs x {events} events "
              f"({cpu_count} cpu)")
        print(f"  serial   : {serial_s:8.3f}s")
        if cpu_count >= 2:
            print(f"  workers={WORKERS}: {parallel_s:8.3f}s "
                  f"({payload['speedup']:.2f}x)")
        else:
            print(f"  workers={WORKERS}: speedup not measured on 1 cpu "
                  "(determinism contract still checked)")
        print(f"  identical results, identical order: {identical}")
    return payload


def test_perf_campaign_quick():
    """CI smoke: parallel sweeps must match serial output exactly."""
    payload = run_bench(configs=4, events=2_000)
    assert payload["identical"], payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep, no JSON update")
    parser.add_argument("--configs", type=int, default=8)
    parser.add_argument("--events", type=int, default=20_000)
    args = parser.parse_args()
    if args.quick:
        result = run_bench(configs=4, events=2_000)
    else:
        result = run_bench(configs=args.configs, events=args.events)
    assert result["identical"], result
    if not args.quick:
        if isinstance(result["speedup"], (int, float)):
            assert result["speedup"] >= 1.5, result
        perf_common.update_bench_json("campaign", result)
