"""Messages flowing through a protocol stack.

A :class:`Message` carries an application payload plus a stack of headers.
Each protocol layer pushes its header when the message travels down the
stack and pops it when the message travels back up, mirroring the x-Kernel
message model.  Headers are ordinary Python objects (usually dataclasses
such as :class:`repro.tcp.segment.Segment`); the PFI layer's recognition
stubs inspect them to classify messages by type.

Messages also carry a free-form ``meta`` dictionary for bookkeeping that is
not part of the wire format -- e.g. the PFI layer stamps injected messages,
and experiments tag messages for later trace correlation.  ``meta`` is
copied shallowly by :meth:`copy`.

Copying is copy-on-write over the header stack: :meth:`copy` shares the
original's header list and defers duplication until either side next
touches its headers, so duplicate-then-drop fault injection never pays for
a copy at all.  When a stack does materialize, each header is duplicated
through the ``clone()`` protocol -- any header exposing a ``clone()``
method (TCP segments, GMP wire messages, the UDP/IP/reliable-delivery
headers) is copied by that method instead of ``copy.deepcopy``, which
keeps the duplicate path free of the deepcopy machinery for every header
type the simulator ships.
"""

from __future__ import annotations

import copy as _copy
import itertools
from typing import Any, Dict, List, Optional

_message_ids = itertools.count(1)

#: payload types that are immutable and therefore shared by :meth:`copy`
_IMMUTABLE = (bytes, str, int, float, bool, type(None))


def _clone_header(header: Any) -> Any:
    """Duplicate one header: ``clone()`` protocol first, deepcopy fallback."""
    clone = getattr(header, "clone", None)
    if clone is not None:
        return clone()
    return _copy.deepcopy(header)


class Message:
    """A payload with a header stack, travelling through protocol layers."""

    __slots__ = ("payload", "_headers", "_share", "meta", "uid")

    def __init__(self, payload: Any = b"", headers: Optional[List[Any]] = None,
                 meta: Optional[Dict[str, Any]] = None):
        self.payload = payload
        self._headers: List[Any] = list(headers) if headers else []
        self._share: Optional[List[int]] = None
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self.uid = next(_message_ids)

    # ------------------------------------------------------------------
    # header stack
    # ------------------------------------------------------------------

    @property
    def headers(self) -> List[Any]:
        """The header stack (innermost first).

        Accessing it on a message whose stack is still shared with a
        copy-on-write sibling materializes a private stack first, so the
        returned list (and the headers in it) are always safe to mutate.
        """
        if self._share is not None:
            self._materialize()
        return self._headers

    def _materialize(self) -> None:
        # leave the share group; the last member keeps the pristine list,
        # earlier leavers clone so the remaining members stay unaffected
        share = self._share
        self._share = None
        share[0] -= 1
        if share[0] > 0:
            self._headers = [_clone_header(h) for h in self._headers]

    def push_header(self, header: Any) -> "Message":
        """Add a header on the way down the stack.  Returns self."""
        self.headers.append(header)
        return self

    def pop_header(self) -> Any:
        """Remove and return the outermost header on the way up the stack."""
        headers = self.headers
        if not headers:
            raise IndexError("message has no headers to pop")
        return headers.pop()

    @property
    def top_header(self) -> Any:
        """The outermost header (most recently pushed), or None."""
        headers = self.headers
        return headers[-1] if headers else None

    def find_header(self, header_type: type) -> Optional[Any]:
        """The innermost-to-outermost search for a header of a given type."""
        for header in reversed(self.headers):
            if isinstance(header, header_type):
                return header
        return None

    # ------------------------------------------------------------------
    # copying / size
    # ------------------------------------------------------------------

    def copy(self) -> "Message":
        """Deep-enough copy for duplicate/modify fault injection.

        The header stack is shared copy-on-write (see the module
        docstring); mutating either side's headers never leaks into the
        other.  Bytes and other immutable payloads are shared; payloads
        exposing ``clone()`` use it; anything else is deep-copied.  The
        copy receives a fresh uid.
        """
        payload = self.payload
        if not isinstance(payload, _IMMUTABLE):
            clone_fn = getattr(payload, "clone", None)
            payload = clone_fn() if clone_fn is not None \
                else _copy.deepcopy(payload)
        share = self._share
        if share is None:
            share = [1]
            self._share = share
        share[0] += 1
        clone = Message.__new__(Message)
        clone.payload = payload
        clone._headers = self._headers
        clone._share = share
        clone.meta = dict(self.meta)
        clone.uid = next(_message_ids)
        clone.meta["copied_from"] = self.uid
        return clone

    def __len__(self) -> int:
        """Payload length in bytes when the payload is bytes-like, else 0."""
        payload = self.payload
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        if isinstance(payload, str):
            return len(payload.encode())
        return 0

    def __repr__(self) -> str:
        names = [type(h).__name__ for h in self._headers]
        return (f"Message(uid={self.uid}, headers={names}, "
                f"payload_len={len(self)})")
