"""Source-position-aware parse layer for the analyzer.

The runtime compiler (:mod:`repro.core.tclish.compiler`) deliberately
forgets where in the source each command came from -- execution doesn't
need it.  Lint does, so this module re-runs the *same lexer* in its
spanned form (:func:`~repro.core.tclish.lexer.split_commands_spanned` /
``split_words_spanned``) and wraps the results in small node objects that
carry absolute offsets, resolved to ``(line, col)`` through a
:class:`LineMap` over the original source.

Word classification reuses :func:`repro.core.tclish.compiler.analyze_word`
so lint sees words exactly as the execution engine does (literal, direct
variable read, or substitution segments).
"""

from __future__ import annotations

import re
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.tclish import compiler
from repro.core.tclish.compiler import (
    LITERAL,
    VARREF,
    CompiledWord,
)
from repro.core.tclish.errors import TclError
from repro.core.tclish.lexer import split_commands_spanned, split_words_spanned


class LineMap:
    """Maps absolute source offsets to 1-based (line, col) pairs."""

    def __init__(self, source: str):
        self._starts = [0]
        for i, ch in enumerate(source):
            if ch == "\n":
                self._starts.append(i + 1)

    def position(self, offset: int) -> Tuple[int, int]:
        line = bisect_right(self._starts, offset)
        return line, offset - self._starts[line - 1] + 1


@dataclass
class WordNode:
    """One raw word with its absolute offset and compiled classification."""

    raw: str
    offset: int
    compiled: CompiledWord

    @property
    def is_literal(self) -> bool:
        return self.compiled.kind == LITERAL

    @property
    def literal(self) -> Optional[str]:
        """The word's constant value, or None when it needs substitution."""
        return self.compiled.text if self.compiled.kind == LITERAL else None

    def braced_body(self) -> Optional[Tuple[str, int]]:
        """For a ``{...}`` word: the body text and its absolute offset."""
        if len(self.raw) >= 2 and self.raw[0] == "{" and self.raw[-1] == "}":
            return self.raw[1:-1], self.offset + 1
        return None

    def variable_reads(self) -> List[Tuple[str, int]]:
        """``$name`` reads this word performs, with absolute offsets."""
        if self.compiled.kind == VARREF:
            return [(self.compiled.text, self.offset)]
        if self.compiled.kind == LITERAL:
            return []
        return scan_variable_reads(_subst_text(self.raw), _subst_base(self))

    def nested_scripts(self) -> List[Tuple[str, int]]:
        """``[script]`` substitutions this word triggers, with offsets."""
        if self.compiled.kind == LITERAL or self.compiled.kind == VARREF:
            return []
        return scan_nested_scripts(_subst_text(self.raw), _subst_base(self))


def _subst_text(raw: str) -> str:
    """The substitution-subject text of a non-braced word."""
    if len(raw) >= 2 and raw[0] == '"' and raw[-1] == '"':
        return raw[1:-1]
    return raw


def _subst_base(word: WordNode) -> int:
    """Absolute offset of the substitution-subject text."""
    if len(word.raw) >= 2 and word.raw[0] == '"' and word.raw[-1] == '"':
        return word.offset + 1
    return word.offset


@dataclass
class CommandNode:
    """One command: positioned words, first word is the command name."""

    words: List[WordNode]
    offset: int

    @property
    def name(self) -> Optional[str]:
        """The command name when it is a compile-time constant."""
        return self.words[0].literal

    @property
    def args(self) -> List[WordNode]:
        return self.words[1:]


def parse_script(source: str, base_offset: int = 0) -> List[CommandNode]:
    """Parse a script (or nested body) into positioned command nodes.

    ``base_offset`` shifts all positions so nested braced bodies report
    absolute offsets into the outermost source.  Raises
    :class:`~repro.core.tclish.errors.TclError` on lexical errors exactly
    as evaluation would.
    """
    nodes: List[CommandNode] = []
    for text, cmd_offset in split_commands_spanned(source):
        words = []
        for raw, word_offset in split_words_spanned(text):
            words.append(WordNode(
                raw=raw,
                offset=base_offset + cmd_offset + word_offset,
                compiled=compiler.analyze_word(raw)))
        if words:
            nodes.append(CommandNode(words=words,
                                     offset=base_offset + cmd_offset))
    return nodes


# ----------------------------------------------------------------------
# substitution scanning (conditions, expr bodies, quoted/bare words)
# ----------------------------------------------------------------------

_VAR_RE = re.compile(r"\$(?:\{(?P<braced>[^}]*)\}|(?P<plain>[A-Za-z0-9_]+))")


def scan_variable_reads(text: str, base_offset: int = 0
                        ) -> List[Tuple[str, int]]:
    """Find every ``$name`` / ``${name}`` read in a substitution string.

    Nested ``[script]`` regions are skipped -- their reads are reported
    when the nested script itself is analyzed.  Backslash-escaped dollars
    are not reads.
    """
    reads: List[Tuple[str, int]] = []
    for chunk, offset in _outside_brackets(text):
        i = 0
        while True:
            match = _VAR_RE.search(chunk, i)
            if match is None:
                break
            if match.start() > 0 and chunk[match.start() - 1] == "\\":
                i = match.start() + 1
                continue
            name = match.group("braced")
            if name is None:
                name = match.group("plain")
            reads.append((name, base_offset + offset + match.start()))
            i = match.end()
    return reads


def scan_nested_scripts(text: str, base_offset: int = 0
                        ) -> List[Tuple[str, int]]:
    """Find every top-level ``[script]`` region with its body offset."""
    scripts: List[Tuple[str, int]] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            i += 2
            continue
        if ch == "[":
            depth = 0
            j = i
            while j < n:
                if text[j] == "\\" and j + 1 < n:
                    j += 2
                    continue
                if text[j] == "[":
                    depth += 1
                elif text[j] == "]":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if depth != 0:
                raise TclError("unmatched open bracket in substitution")
            scripts.append((text[i + 1:j], base_offset + i + 1))
            i = j + 1
            continue
        i += 1
    return scripts


def _outside_brackets(text: str) -> List[Tuple[str, int]]:
    """The chunks of ``text`` not inside any ``[...]`` region."""
    chunks: List[Tuple[str, int]] = []
    i = 0
    n = len(text)
    start = 0
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            i += 2
            continue
        if ch == "[":
            if i > start:
                chunks.append((text[start:i], start))
            depth = 0
            while i < n:
                if text[i] == "\\" and i + 1 < n:
                    i += 2
                    continue
                if text[i] == "[":
                    depth += 1
                elif text[i] == "]":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
            start = i
            continue
        i += 1
    if start < n:
        chunks.append((text[start:], start))
    return chunks
