"""The fuzzing loop: determinism, the campaign oracle hook, coverage."""

from repro.core.orchestrator import Campaign, RunResult
from repro.oracle.fuzz import (GMP_VARIANTS, FuzzCase, coverage_keys,
                               fuzz_body, pack_for, run_case, run_fuzz)

#: enough budget to reach the first violating cases under seed 0
SMOKE_BUDGET = 8


def _snapshot(report):
    return {
        "executed": report.executed,
        "coverage": sorted(map(repr, report.coverage)),
        "corpus": [case.to_dict() for case in report.corpus],
        "findings": [(f.case.to_dict(), f.codes, f.violation_count)
                     for f in report.findings],
    }


def test_fuzz_is_deterministic_in_the_seed():
    first = run_fuzz("gmp", seed=0, budget=SMOKE_BUDGET)
    second = run_fuzz("gmp", seed=0, budget=SMOKE_BUDGET)
    assert _snapshot(first) == _snapshot(second)
    assert first.executed == SMOKE_BUDGET


def test_different_seeds_draw_different_cases():
    a = run_fuzz("gmp", seed=0, budget=4)
    b = run_fuzz("gmp", seed=1, budget=4)
    assert [c.to_dict() for c in a.corpus] != \
        [c.to_dict() for c in b.corpus]


def test_fuzz_finds_the_latent_gmp_bugs():
    report = run_fuzz("gmp", seed=0, budget=24)
    assert report.findings, "seed 0 is known to reach violating cases"
    for finding in report.findings:
        assert finding.case.target in GMP_VARIANTS
        assert finding.codes
        assert finding.violation_count > 0
        assert finding.example is not None


def test_coverage_grows_monotonically_with_the_corpus():
    report = run_fuzz("gmp", seed=0, budget=SMOKE_BUDGET)
    assert report.corpus, "the first case always adds coverage"
    assert len(report.coverage) >= 1
    assert all(case.protocol == "gmp" for case in report.corpus)


def test_tcp_fuzz_runs_clean_on_conformant_vendors():
    # the four vendor profiles are conformant: the fuzzer exercises them
    # (coverage accrues) but the oracle stays silent -- which is itself
    # the conformance statement for the TCP rig under injected faults
    report = run_fuzz("tcp", seed=0, budget=6)
    assert report.executed == 6
    assert report.coverage
    assert report.findings == []


def test_run_case_reproduces_a_fuzz_finding():
    report = run_fuzz("gmp", seed=0, budget=24)
    finding = report.findings[0]
    result = run_case(finding.case, campaign_seed=report.seed)
    codes = sorted({v.code for v in result.violations})
    assert codes == finding.codes
    assert len(result.violations) == finding.violation_count


def test_campaign_oracle_hook_attaches_verdicts():
    case = run_fuzz("gmp", seed=0, budget=1).corpus[0]
    campaign = Campaign(fuzz_body, seed=0, lint="error")
    with_oracle = campaign.run([case.config()], telemetry=False,
                               oracle=pack_for("gmp"))
    without = campaign.run([case.config()], telemetry=False)
    assert with_oracle[0].violations is not None
    assert without[0].violations is None
    assert without[0].ok()  # no oracle -> vacuously ok


def test_parallel_workers_do_not_perturb_the_verdict():
    serial = run_fuzz("gmp", seed=0, budget=4, workers=1)
    parallel = run_fuzz("gmp", seed=0, budget=4, workers=2)
    assert _snapshot(serial) == _snapshot(parallel)


def test_fuzz_case_config_excludes_the_display_name():
    case = FuzzCase(
        script=run_fuzz("gmp", seed=0, budget=1).corpus[0].script,
        target="self_death", case_seed=5)
    renamed = FuzzCase(
        script=case.script.with_clauses(case.script.clauses,
                                        name="other_name"),
        target="self_death", case_seed=5)
    # the campaign derives per-run seeds from the config repr, so a
    # rename (the shrinker appends _min) must leave the config identical
    assert case.config() == renamed.config()


def test_coverage_keys_reflect_trace_content():
    case = run_fuzz("gmp", seed=0, budget=1).corpus[0]
    result = run_case(case)
    keys = coverage_keys(result.trace)
    assert any(key[0] == "kind" for key in keys)
    assert any(key[0] == "gmp.send" for key in keys)


def test_run_result_ok_reflects_violations():
    assert RunResult(config={}, result=None, trace=None).ok()
    assert RunResult(config={}, result=None, trace=None, violations=[]).ok()
    assert not RunResult(config={}, result=None, trace=None,
                         violations=["v"]).ok()
