"""The analysis pass: every per-script check of the tclish linter.

One :class:`Analyzer` run walks a script (plus its init script) the way
the interpreter would evaluate it -- words left to right, nested
``[script]`` substitutions before the enclosing command, control-flow
bodies as branches -- and emits diagnostics:

========  ==========================================================
SL000     syntax error (the lexer rejected the source)
SL001     unknown command (not stdlib, not PFI bridge, not a proc)
SL002     argument count outside the command's declared signature
SL003     variable read before any assignment can have happened
SL004     unreachable code after return/break/continue/error
SL005     message action after an unconditional xDrop in the block
SL006     constant out of range (chance, dst_exponential, dst_uniform)
SL007     negative constant passed to xDelay/xDuplicate
SL008     xHold tag never released / xRelease tag never held
SL011     variable written but never read anywhere (dead store)
SL012     if/while condition folds to a constant
SL013     clause unreachable because an earlier condition is
          constantly true
========  ==========================================================

Dataflow is deliberately conservative: a variable assigned on *some*
branch is "maybe assigned" and reading it is not reported, so only reads
that fail on every possible first execution are errors.  Reads inside
``catch`` bodies and proc bodies are downgraded to warnings (caught
errors are often intentional; procs can fall back to interpreter
globals).

The def-use pass behind SL011 is whole-script: filter interpreters keep
state across invocations, so a ``set`` in one message event may be read
by the next -- but that read still appears somewhere in the script text,
which is why "no read anywhere in init+body" is a sound dead-store
condition.  Anything that makes variable names dynamic (``set $name``,
``eval`` of a computed string) disables the check for the whole script
rather than guessing.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.tclish import expr as expr_mod
from repro.core.tclish.errors import TclError
from repro.core.tclish.lint import diagnostics as diag
from repro.core.tclish.lint.diagnostics import Diagnostic
from repro.core.tclish.lint.registry import (
    CommandRegistry,
    CommandSignature,
    default_registry,
)
from repro.core.tclish.lint.walker import (
    CommandNode,
    LineMap,
    WordNode,
    parse_script,
    scan_nested_scripts,
    scan_variable_reads,
)

#: commands that act on the current message and are moot once it is dropped
_MSG_ACTIONS = ("xDelay", "xDuplicate", "xHold", "msg_set_field", "xDrop")

#: commands that make the rest of their block unreachable
_TERMINALS = ("return", "break", "continue", "error")


@dataclass
class _Scope:
    """Dataflow state while walking one execution context."""

    assigned: Set[str] = field(default_factory=set)
    maybe: Set[str] = field(default_factory=set)
    caught: bool = False
    in_proc: bool = False

    def branch(self) -> "_Scope":
        return _Scope(assigned=set(self.assigned), maybe=set(self.maybe),
                      caught=self.caught, in_proc=self.in_proc)

    def readable(self, name: str) -> bool:
        return name in self.assigned or name in self.maybe


@dataclass
class ScriptSummary:
    """What one analyzed script exposes for cross-script (pair) checks."""

    diagnostics: List[Diagnostic]
    #: key -> (line, col) of first use, per bridge command
    peer_set: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    peer_get: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    sync_set: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    sync_get: Dict[str, Tuple[int, int]] = field(default_factory=dict)


class Analyzer:
    """One analysis run over a script and its optional init script."""

    def __init__(self, *, registry: Optional[CommandRegistry] = None,
                 predefined: Sequence[str] = (), label: str = ""):
        self.registry = (registry or default_registry()).copy()
        self.label = label
        self.predefined = set(predefined)
        self.out: List[Diagnostic] = []
        self._linemap = LineMap("")
        self._script_tag = ""
        # hold/release pairing, collected across init + body
        # tag -> (line, col, script_tag) of first occurrence
        self._holds: Dict[str, Tuple[int, int, str]] = {}
        self._releases: Dict[str, Tuple[int, int, str]] = {}
        self._dynamic_tags = False
        # def-use chains for SL011: first literal `set` per name, every
        # name read anywhere (init, body, nested scripts, conditions)
        self._writes: Dict[str, Tuple[int, int, str]] = {}
        self._reads_seen: Set[str] = set(predefined)
        self._dynamic_vars = False
        # peer/sync key usage for pair analysis
        self.summary = ScriptSummary(diagnostics=self.out)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def analyze(self, source: str, init_script: str = "") -> ScriptSummary:
        state = _Scope(assigned=set(self.predefined))
        init_tag = f"{self.label}:init" if self.label else "init"
        for text, tag in ((init_script, init_tag), (source, self.label)):
            if not text:
                continue
            self._linemap = LineMap(text)
            self._script_tag = tag
            try:
                commands = parse_script(text)
            except TclError as err:
                self._report("SL000", 0, str(err),
                             "the script does not parse; run it to see the "
                             "same error")
                continue
            self._collect_procs(commands)
            self._walk_block(commands, state)
        self._check_hold_release()
        self._check_dead_stores()
        return self.summary

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------

    def _report(self, code: str, offset: int, message: str, hint: str = "",
                *, severity: Optional[str] = None) -> None:
        line, col = self._linemap.position(offset)
        self.out.append(diag.make(code, line, col, message, hint,
                                  severity=severity, script=self._script_tag))

    def _position(self, offset: int) -> Tuple[int, int]:
        return self._linemap.position(offset)

    # ------------------------------------------------------------------
    # proc pre-pass
    # ------------------------------------------------------------------

    def _collect_procs(self, commands: List[CommandNode]) -> None:
        """Register every literal ``proc`` definition, at any nesting."""
        for command in commands:
            if command.name == "proc" and len(command.args) >= 2:
                name = command.args[0].literal
                params_word = command.args[1]
                if name:
                    self.registry.add(_proc_signature(name, params_word))
            for word in command.words:
                body = word.braced_body()
                if body is None:
                    continue
                try:
                    nested = parse_script(body[0], body[1])
                except TclError:
                    continue
                self._collect_procs(nested)

    # ------------------------------------------------------------------
    # the walk
    # ------------------------------------------------------------------

    def _walk_block(self, commands: List[CommandNode], state: _Scope) -> None:
        """Analyze one straight-line block of commands."""
        terminated_by: Optional[CommandNode] = None
        dead_reported = False
        dropped_at: Optional[CommandNode] = None
        for command in commands:
            if terminated_by is not None and not dead_reported:
                self._report(
                    "SL004", command.offset,
                    f'unreachable: "{terminated_by.name}" above always '
                    f"exits this block", "move or remove this code")
                dead_reported = True
            name = command.name
            if (dropped_at is not None and name in _MSG_ACTIONS):
                self._report(
                    "SL005", command.offset,
                    f'"{name}" after xDrop has no effect: the message is '
                    f"already dropped",
                    "drop last, or guard one of the two actions")
            self._walk_command(command, state)
            if name in _TERMINALS:
                terminated_by = command
            if name == "xDrop":
                dropped_at = command

    def _walk_command(self, command: CommandNode, state: _Scope) -> None:
        name = command.name
        # words are substituted left to right before dispatch: nested
        # [scripts] run and $reads resolve for every non-braced word
        for word in command.words:
            self._process_word_substitutions(word, state)

        if name is None:
            return  # dynamic command name: nothing static to check

        signature = self.registry.get(name)
        if signature is None:
            self._report("SL001", command.words[0].offset,
                         f'invalid command name "{name}"',
                         _suggest(name, self.registry))
            return
        if not signature.accepts(len(command.args)):
            usage = signature.usage or name
            self._report(
                "SL002", command.words[0].offset,
                f'wrong # args for "{name}": got {len(command.args)}, '
                f"expected {signature.arity_text()}",
                f"usage: {usage}")

        handler = _SPECIAL.get(name)
        if handler is not None:
            handler(self, command, state)

    def _process_word_substitutions(self, word: WordNode,
                                    state: _Scope) -> None:
        """Nested scripts and variable reads a word triggers at runtime."""
        for nested_source, offset in word.nested_scripts():
            self._walk_nested(nested_source, offset, state)
        self._check_reads(word.variable_reads(), state)

    def _walk_nested(self, source: str, offset: int, state: _Scope) -> None:
        try:
            commands = parse_script(source, offset)
        except TclError as err:
            self._report("SL000", offset, str(err))
            return
        self._walk_block(commands, state)

    def _check_reads(self, reads: List[Tuple[str, int]],
                     state: _Scope) -> None:
        for name, offset in reads:
            self._reads_seen.add(name)
            if state.readable(name):
                continue
            severity = diag.WARNING if (state.caught or state.in_proc) \
                else None
            self._report(
                "SL003", offset,
                f'"${name}" is read before any assignment',
                "set it in the init script or earlier in the script",
                severity=severity)
            # one report per variable is enough
            state.maybe.add(name)

    # ------------------------------------------------------------------
    # substitution contexts (conditions, expr) and branch bodies
    # ------------------------------------------------------------------

    def _scan_condition(self, word: WordNode, state: _Scope) -> Set[str]:
        """Analyze an if/while test: reads, nested scripts, exists-guards.

        Returns variable names guarded by ``[info exists name]`` so the
        matching branch can treat them as possibly assigned.
        """
        body = word.braced_body()
        if body is not None:
            text, base = body
            try:
                for nested_source, offset in scan_nested_scripts(text, base):
                    self._walk_nested(nested_source, offset, state)
            except TclError as err:
                self._report("SL000", base, str(err))
                return set()
            self._check_reads(scan_variable_reads(text, base), state)
        else:
            # bare/quoted condition: normal word substitution already ran
            text = word.raw
        guards = set()
        tokens = text.split()
        for i, token in enumerate(tokens):
            if token.endswith("exists") and i + 1 < len(tokens):
                guard = tokens[i + 1].rstrip("]}")
                guards.add(guard)
                self._reads_seen.add(guard)
        return guards

    def _fold_condition(self, word: WordNode) -> Optional[bool]:
        """The condition's constant truth value, or None when dynamic.

        Only fully static text is folded: anything containing a ``$``
        read or a ``[script]`` substitution depends on runtime state.
        Folding uses the same :mod:`~repro.core.tclish.expr` engine the
        interpreter evaluates conditions with, so lint and runtime can
        never disagree about what a constant condition does.
        """
        body = word.braced_body()
        text = body[0] if body is not None else word.literal
        if text is None:
            return None
        text = text.strip()
        if not text or "$" in text or "[" in text:
            return None
        try:
            return expr_mod.truth(expr_mod.evaluate(text))
        except (TclError, ValueError):
            return None

    def _walk_body_word(self, word: Optional[WordNode],
                        state: _Scope) -> Optional[_Scope]:
        """Analyze a braced script body on a branch copy of ``state``."""
        if word is None:
            return None
        body = word.braced_body()
        branch = state.branch()
        if body is None:
            # dynamic body (rare): nothing static to walk
            return branch
        self._walk_nested(body[0], body[1], branch)
        return branch

    def _merge_branches(self, state: _Scope, branches: List[_Scope],
                        all_paths_covered: bool) -> None:
        """Join branch dataflow back into ``state`` (if/switch joins)."""
        live = [b for b in branches if b is not None]
        if not live:
            return
        additions = [b.assigned - state.assigned for b in live]
        union: Set[str] = set()
        for added in additions:
            union |= added
        for branch in live:
            union |= branch.maybe - state.maybe
        if all_paths_covered:
            common = set.intersection(*additions) if additions else set()
            state.assigned |= common
            union -= common
        state.maybe |= union

    # ------------------------------------------------------------------
    # post-walk checks
    # ------------------------------------------------------------------

    def _check_hold_release(self) -> None:
        if self._dynamic_tags:
            return
        for tag, (line, col, script_tag) in sorted(self._holds.items()):
            if tag not in self._releases:
                self.out.append(diag.make(
                    "SL008", line, col,
                    f'messages held under tag "{tag}" are never released',
                    "add an xRelease for the tag (held messages are "
                    "dropped at the end of the run)", script=script_tag))
        for tag, (line, col, script_tag) in sorted(self._releases.items()):
            if tag not in self._holds:
                self.out.append(diag.make(
                    "SL008", line, col,
                    f'xRelease tag "{tag}" matches no xHold in this '
                    f"script",
                    "hold and release queues are per-filter: only this "
                    "script's xHold can fill it", script=script_tag))

    def _note_write(self, name: str, offset: int, state: _Scope) -> None:
        """Record a literal ``set`` for the SL011 def-use pass.

        Writes inside proc bodies are exempt: tclish procs share the
        filter interpreter's variable table, so a proc-local write may
        be read by the main script of a later invocation.
        """
        if state.in_proc:
            self._reads_seen.add(name)
            return
        line, col = self._position(offset)
        self._writes.setdefault(name, (line, col, self._script_tag))

    def _check_dead_stores(self) -> None:
        if self._dynamic_vars:
            return
        for name, (line, col, script_tag) in sorted(self._writes.items()):
            if name in self._reads_seen:
                continue
            self.out.append(diag.make(
                "SL011", line, col,
                f'"{name}" is written but never read',
                "remove the assignment, or read the variable where the "
                "value was meant to be used", script=script_tag))


# ----------------------------------------------------------------------
# per-command handlers
# ----------------------------------------------------------------------

def _handle_set(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    if len(command.args) == 2:
        name = command.args[0].literal
        if name:
            state.assigned.add(name)
            an._note_write(name, command.args[0].offset, state)
        else:
            an._dynamic_vars = True
    elif len(command.args) == 1:
        name = command.args[0].literal
        if name:
            an._check_reads([(name, command.args[0].offset)], state)
        else:
            an._dynamic_vars = True


def _handle_define(an: Analyzer, command: CommandNode,
                   state: _Scope) -> None:
    """incr/append/lappend/global define their variable (unset is legal).

    All four observe the variable's prior value (or, for ``global``,
    share it with the harness), so they count as reads for SL011: an
    accumulator that is only ever ``incr``-ed is not a dead store of
    itself, only a plain ``set`` whose value nothing consumes is.
    """
    for word in command.args[:1] if command.name != "global" \
            else command.args:
        name = word.literal
        if name:
            state.assigned.add(name)
            an._reads_seen.add(name)
        else:
            an._dynamic_vars = True


def _handle_unset(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    for word in command.args:
        name = word.literal
        if name:
            state.assigned.discard(name)
            state.maybe.discard(name)
            an._reads_seen.add(name)
        else:
            an._dynamic_vars = True


def _condition_text(word: WordNode) -> str:
    body = word.braced_body()
    text = body[0] if body is not None else (word.literal or word.raw)
    return " ".join(text.split())


def _handle_if(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    args = command.args
    branches: List[_Scope] = []
    has_else = False
    #: a prior clause's condition folded to constant true: everything
    #: after it can never run (SL013, reported once)
    shadowed_by: Optional[WordNode] = None
    i = 0
    while i < len(args):
        condition = args[i]
        guards = an._scan_condition(condition, state)
        folded = an._fold_condition(condition)
        if shadowed_by is not None:
            an._report(
                "SL013", condition.offset,
                f'unreachable clause: the condition '
                f'"{_condition_text(shadowed_by)}" above is constantly '
                f"true", "every earlier clause must be able to fail for "
                "this one to run")
            shadowed_by = None  # one report per if is enough
        elif folded is not None:
            an._report(
                "SL012", condition.offset,
                f'condition "{_condition_text(condition)}" is constantly '
                f'{"true" if folded else "false"}',
                "a constant condition makes one branch dead; drop the "
                "test or make it depend on runtime state")
            if folded:
                shadowed_by = condition
        body_index = i + 1
        if body_index < len(args) and args[body_index].literal == "then":
            body_index += 1
        if body_index >= len(args):
            an._report("SL002", command.offset, 'missing body in "if"',
                       "usage: if cond body ?elseif cond body ...? "
                       "?else body?")
            return
        branch_entry = state.branch()
        branch_entry.maybe |= guards
        branch = an._walk_body_word(args[body_index], branch_entry)
        if branch is not None:
            branches.append(branch)
        i = body_index + 1
        if i < len(args) and args[i].literal == "elseif":
            i += 1
            continue
        if i < len(args) and args[i].literal == "else":
            if i + 1 >= len(args):
                an._report("SL002", command.offset,
                           'missing body after "else"',
                           "usage: if cond body ... else body")
                return
            has_else = True
            if shadowed_by is not None:
                an._report(
                    "SL013", args[i].offset,
                    f'unreachable "else": the condition '
                    f'"{_condition_text(shadowed_by)}" above is '
                    f"constantly true",
                    "every earlier clause must be able to fail for this "
                    "one to run")
            branch = an._walk_body_word(args[i + 1], state.branch())
            if branch is not None:
                branches.append(branch)
        break
    an._merge_branches(state, branches, all_paths_covered=has_else)


def _handle_while(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    if len(command.args) != 2:
        return
    an._scan_condition(command.args[0], state)
    # `while {1} {... break}` is a legal loop idiom, so only the
    # never-runs direction is a finding here
    if an._fold_condition(command.args[0]) is False:
        an._report(
            "SL012", command.args[0].offset,
            f'condition "{_condition_text(command.args[0])}" is '
            f"constantly false: the loop body never runs",
            "a constant condition makes one branch dead; drop the test "
            "or make it depend on runtime state")
    branch = an._walk_body_word(command.args[1], state)
    an._merge_branches(state, [branch], all_paths_covered=False)


def _handle_for(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    if len(command.args) != 4:
        return
    start, test, nxt, body = command.args
    start_body = start.braced_body()
    if start_body is not None:
        an._walk_nested(start_body[0], start_body[1], state)
    an._scan_condition(test, state)
    branch = state.branch()
    for word in (body, nxt):
        wb = word.braced_body()
        if wb is not None:
            an._walk_nested(wb[0], wb[1], branch)
    an._merge_branches(state, [branch], all_paths_covered=False)


def _handle_foreach(an: Analyzer, command: CommandNode,
                    state: _Scope) -> None:
    if len(command.args) != 3:
        return
    var = command.args[0].literal
    branch_entry = state.branch()
    if var:
        branch_entry.assigned.add(var)
        # iterating purely for side effects is legitimate, so the loop
        # variable never counts as a dead store
        an._reads_seen.add(var)
    branch = an._walk_body_word(command.args[2], branch_entry)
    an._merge_branches(state, [branch], all_paths_covered=False)
    if var:
        state.maybe.add(var)


def _handle_proc(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    if len(command.args) != 3:
        return
    params_word = command.args[1]
    body = command.args[2].braced_body()
    if body is None:
        return
    proc_scope = _Scope(in_proc=True)
    proc_scope.assigned |= _param_names(params_word)
    # procs fall back to interpreter globals at read time, so anything
    # the outer script may have set is readable (hence only warnings
    # inside proc bodies -- see _check_reads)
    proc_scope.maybe |= state.assigned | state.maybe
    an._walk_nested(body[0], body[1], proc_scope)


def _handle_catch(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    if not command.args:
        return
    body = command.args[0].braced_body()
    if body is not None:
        branch = state.branch()
        branch.caught = True
        an._walk_nested(body[0], body[1], branch)
        # the body may fail at any point: its assignments are only maybes
        state.maybe |= (branch.assigned | branch.maybe) - state.assigned
    if len(command.args) == 2:
        name = command.args[1].literal
        if name:
            state.assigned.add(name)
            # the capture variable is routinely ignored on purpose
            an._reads_seen.add(name)


def _handle_eval(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    parts = [w.literal for w in command.args]
    if all(p is not None for p in parts):
        an._walk_nested(" ".join(parts), command.args[0].offset, state)
    else:
        # a computed script can read or write any variable: disable the
        # whole-script def-use verdicts rather than guess
        an._dynamic_vars = True


def _handle_info(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    if len(command.args) >= 2 and command.args[0].literal == "exists":
        name = command.args[1].literal
        if name:
            an._reads_seen.add(name)


def _handle_expr(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    for word in command.args:
        an._scan_condition(word, state)


def _handle_switch(an: Analyzer, command: CommandNode,
                   state: _Scope) -> None:
    args = list(command.args)
    while args and args[0].literal in ("-exact", "-glob", "--"):
        args.pop(0)
    if len(args) != 2:
        return
    body = args[1].braced_body()
    if body is None:
        return
    try:
        pairs = parse_script(body[0], body[1])
    except TclError:
        return
    # the pattern/body list parses as commands: each "command" is one
    # pattern word followed (possibly on the same line) by body words;
    # walking every braced word below covers all bodies
    branches: List[_Scope] = []
    for pair in pairs:
        for word in pair.words:
            wb = word.braced_body()
            if wb is None:
                continue
            branch = state.branch()
            an._walk_nested(wb[0], wb[1], branch)
            branches.append(branch)
    an._merge_branches(state, branches, all_paths_covered=False)


def _literal_numbers(command: CommandNode) -> List[Tuple[float, WordNode]]:
    """The numeric literal args of a command (cur_msg tokens skipped)."""
    numbers = []
    for word in command.args:
        text = word.literal
        if text is None or text == "cur_msg":
            continue
        try:
            numbers.append((float(text), word))
        except ValueError:
            continue
    return numbers


def _handle_chance(an: Analyzer, command: CommandNode,
                   state: _Scope) -> None:
    for value, word in _literal_numbers(command)[:1]:
        if not 0.0 <= value <= 1.0:
            an._report("SL006", word.offset,
                       f"chance {word.literal} is not a probability",
                       "use a value in [0, 1]")


def _handle_exponential(an: Analyzer, command: CommandNode,
                        state: _Scope) -> None:
    for value, word in _literal_numbers(command)[:1]:
        if value <= 0:
            an._report("SL006", word.offset,
                       f"dst_exponential rate {word.literal} must be > 0")


def _handle_uniform(an: Analyzer, command: CommandNode,
                    state: _Scope) -> None:
    numbers = _literal_numbers(command)
    if len(numbers) == 2 and numbers[0][0] > numbers[1][0]:
        an._report("SL006", numbers[0][1].offset,
                   f"dst_uniform bounds {numbers[0][1].literal} > "
                   f"{numbers[1][1].literal} are reversed",
                   severity=diag.WARNING)


def _handle_delay(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    for value, word in _literal_numbers(command)[:1]:
        if value < 0:
            an._report("SL007", word.offset,
                       f"xDelay {word.literal}: a delay cannot be negative")


def _handle_duplicate(an: Analyzer, command: CommandNode,
                      state: _Scope) -> None:
    for value, word in _literal_numbers(command)[:1]:
        if value < 0:
            an._report("SL007", word.offset,
                       f"xDuplicate {word.literal}: copy count cannot be "
                       f"negative")


def _hold_tag(command: CommandNode) -> Optional[str]:
    """The literal hold-queue tag, mirroring ``script._tag_arg``."""
    for word in command.args:
        if word.literal == "cur_msg":
            continue
        return word.literal  # None when dynamic
    return "default"


def _handle_hold(an: Analyzer, command: CommandNode, state: _Scope) -> None:
    tag = _hold_tag(command)
    if tag is None:
        an._dynamic_tags = True
    else:
        line, col = an._position(command.offset)
        an._holds.setdefault(tag, (line, col, an._script_tag))


def _handle_release(an: Analyzer, command: CommandNode,
                    state: _Scope) -> None:
    tag = _hold_tag(command)
    if tag is None:
        an._dynamic_tags = True
    else:
        line, col = an._position(command.offset)
        an._releases.setdefault(tag, (line, col, an._script_tag))


def _record_key(table: Dict[str, Tuple[int, int]], an: Analyzer,
                command: CommandNode) -> None:
    if command.args:
        key = command.args[0].literal
        if key:
            table.setdefault(key, an._position(command.offset))


def _handle_peer_set(an: Analyzer, command: CommandNode,
                     state: _Scope) -> None:
    _record_key(an.summary.peer_set, an, command)


def _handle_peer_get(an: Analyzer, command: CommandNode,
                     state: _Scope) -> None:
    _record_key(an.summary.peer_get, an, command)


def _handle_sync_set(an: Analyzer, command: CommandNode,
                     state: _Scope) -> None:
    _record_key(an.summary.sync_set, an, command)


def _handle_sync_get(an: Analyzer, command: CommandNode,
                     state: _Scope) -> None:
    _record_key(an.summary.sync_get, an, command)


_SPECIAL = {
    "set": _handle_set,
    "incr": _handle_define,
    "append": _handle_define,
    "lappend": _handle_define,
    "global": _handle_define,
    "unset": _handle_unset,
    "if": _handle_if,
    "while": _handle_while,
    "for": _handle_for,
    "foreach": _handle_foreach,
    "proc": _handle_proc,
    "catch": _handle_catch,
    "eval": _handle_eval,
    "info": _handle_info,
    "expr": _handle_expr,
    "switch": _handle_switch,
    "chance": _handle_chance,
    "dst_exponential": _handle_exponential,
    "dst_uniform": _handle_uniform,
    "xDelay": _handle_delay,
    "xDuplicate": _handle_duplicate,
    "xHold": _handle_hold,
    "xRelease": _handle_release,
    "peer_set": _handle_peer_set,
    "peer_get": _handle_peer_get,
    "sync_set": _handle_sync_set,
    "sync_get": _handle_sync_get,
}


def _proc_signature(name: str, params_word: WordNode) -> CommandSignature:
    """Derive an arity signature from a literal proc parameter list."""
    params = _param_list(params_word)
    if params is None:
        return CommandSignature(name, 0, None, name, "user proc")
    required = 0
    unbounded = False
    for i, (pname, has_default) in enumerate(params):
        if pname == "args" and i == len(params) - 1:
            unbounded = True
        elif not has_default:
            required += 1
    max_args = None if unbounded else len(params)
    usage = name + "".join(f" {p}" for p, _ in params)
    return CommandSignature(name, required, max_args, usage, "user proc")


def _param_list(params_word: WordNode):
    """[(name, has_default)] for a literal parameter list, else None."""
    from repro.core.tclish.lexer import split_words, strip_braces
    text = params_word.literal
    if text is None:
        body = params_word.braced_body()
        if body is None:
            return None
        text = body[0]
    try:
        raw_params = split_words(text)
    except TclError:
        return None
    params = []
    for raw in raw_params:
        parts = [strip_braces(w) for w in split_words(strip_braces(raw))]
        if not parts:
            continue
        params.append((parts[0], len(parts) > 1))
    return params


def _param_names(params_word: WordNode) -> Set[str]:
    params = _param_list(params_word)
    if params is None:
        return set()
    return {name for name, _default in params}


def _suggest(name: str, registry: CommandRegistry) -> str:
    matches = difflib.get_close_matches(name, registry.names(), n=1)
    if matches:
        return f'did you mean "{matches[0]}"?'
    return ""
