"""Per-configuration campaign telemetry.

``Campaign.run`` measures every configuration it executes -- wall-clock
seconds, dispatched scheduler events, final virtual time, trace size --
and attaches a :class:`RunTelemetry` to each
:class:`~repro.core.orchestrator.RunResult`.  The numbers answer the two
questions a sweep owner actually asks: *which configuration is slow* and
*how far below real time is the simulator running*
(``virtual_per_wall`` -- the paper's experiments cover hours of protocol
time; at a healthy ratio a 2-hour keep-alive run costs well under a
wall-clock second).

:func:`render_scorecard` turns a result list into the table
``Campaign.run(..., scorecard=True)`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple


@dataclass
class RunTelemetry:
    """Timing and volume figures for one executed configuration."""

    #: wall-clock seconds spent building the env and running the body
    wall_s: float
    #: scheduler events dispatched during the run
    events: int
    #: final virtual time of the run's scheduler
    virtual_s: float
    #: trace entries captured
    trace_entries: int

    @property
    def events_per_s(self) -> float:
        """Dispatched events per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def virtual_per_wall(self) -> float:
        """Virtual seconds simulated per wall-clock second."""
        return self.virtual_s / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (benchmarks, exports, journal events)."""
        return {"wall_s": self.wall_s, "events": self.events,
                "virtual_s": self.virtual_s,
                "trace_entries": self.trace_entries,
                "events_per_s": self.events_per_s,
                "virtual_per_wall": self.virtual_per_wall}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunTelemetry":
        """Rehydrate from :meth:`as_dict` output (journal replay).

        The derived rates are recomputed from the stored base figures,
        so a replayed scorecard matches what the live run printed.
        """
        return cls(wall_s=float(payload.get("wall_s", 0.0)),
                   events=int(payload.get("events", 0)),
                   virtual_s=float(payload.get("virtual_s", 0.0)),
                   trace_entries=int(payload.get("trace_entries", 0)))


def _config_label(config: Dict[str, Any], width: int = 30) -> str:
    text = ", ".join(f"{k}={v}" for k, v in sorted(config.items())
                     if isinstance(v, (str, int, float, bool)))
    if len(text) > width:
        text = text[:width - 3] + "..."
    return text or "(config)"


def render_scorecard_rows(
        rows: Iterable[Tuple[str, Optional["RunTelemetry"]]]) -> str:
    """The scorecard table from pre-labelled ``(label, telemetry)`` rows.

    This is the formatting core shared by live campaigns
    (:func:`render_scorecard`) and journal replays
    (:mod:`repro.obs.campaign_report`), so a scorecard reproduced from a
    flight record is byte-identical to the one the live sweep printed.
    Rows with ``None`` telemetry show dashes; a totals row closes the
    table.
    """
    header = (f"{'config':<30} {'wall s':>9} {'events':>10} "
              f"{'virt s':>10} {'ev/s':>10} {'virt/wall':>10}")
    lines = [header, "-" * len(header)]
    total_wall = 0.0
    total_events = 0
    counted = 0
    for label, telemetry in rows:
        if telemetry is None:
            lines.append(f"{label:<30} {'-':>9} {'-':>10} {'-':>10} "
                         f"{'-':>10} {'-':>10}")
            continue
        counted += 1
        total_wall += telemetry.wall_s
        total_events += telemetry.events
        lines.append(
            f"{label:<30} {telemetry.wall_s:>9.4f} "
            f"{telemetry.events:>10} {telemetry.virtual_s:>10.1f} "
            f"{telemetry.events_per_s:>10.0f} "
            f"{telemetry.virtual_per_wall:>10.0f}")
    lines.append("-" * len(header))
    rate = total_events / total_wall if total_wall > 0 else 0.0
    lines.append(f"{counted} config(s)".ljust(30)
                 + f" {total_wall:>9.4f} {total_events:>10} {'':>10} "
                   f"{rate:>10.0f}")
    return "\n".join(lines)


def render_scorecard(results: Iterable[Any]) -> str:
    """The campaign scorecard: one row per configuration.

    ``results`` is a list of ``RunResult``; rows for results without
    telemetry (e.g. constructed by hand) show dashes.
    """
    return render_scorecard_rows(
        (_config_label(getattr(result, "config", {}) or {}),
         getattr(result, "telemetry", None))
        for result in results)
