"""Alternating-bit protocol sender and receiver layers.

Stop-and-wait ARQ over an unreliable channel:

- the **sender** transmits one frame at a time, stamped with a sequence
  bit that alternates per frame, and retransmits on a timer until the
  matching ACK arrives;
- the **receiver** delivers a frame only when its bit matches the
  expected bit (duplicates are re-ACKed but not re-delivered), then flips
  its expectation.

Both are ordinary :class:`~repro.xkernel.protocol.Protocol` layers, so a
PFI layer splices beneath them exactly as it does beneath TCP or the GMP
daemon -- no protocol-specific hooks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.core.stubs import PacketStubs
from repro.netsim.scheduler import Scheduler
from repro.netsim.timer import Timer
from repro.netsim.trace import TraceRecorder
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


@dataclass
class AbpFrame:
    """One ABP frame: DATA carries a payload, ACK carries just the bit."""

    kind: str          # "DATA" or "ACK"
    bit: int           # 0 or 1
    payload: bytes = b""

    def __post_init__(self):
        if self.kind not in ("DATA", "ACK"):
            raise ValueError(f"bad ABP frame kind {self.kind!r}")
        if self.bit not in (0, 1):
            raise ValueError(f"bad ABP bit {self.bit!r}")


class AbpSender(Protocol):
    """Stop-and-wait sender with per-frame retransmission."""

    def __init__(self, scheduler: Scheduler, peer_address: int, *,
                 retransmit_interval: float = 1.0,
                 max_retransmits: Optional[int] = None,
                 trace: Optional[TraceRecorder] = None,
                 name: str = "abp_sender"):
        super().__init__(name)
        self.scheduler = scheduler
        self.peer_address = peer_address
        self.retransmit_interval = retransmit_interval
        self.max_retransmits = max_retransmits
        self.trace = trace
        self.bit = 0
        self._queue: Deque[bytes] = deque()
        self._in_flight: Optional[bytes] = None
        self._attempts = 0
        self._timer = Timer(scheduler, self._on_timeout, name=f"{name}/rtx")
        self.delivered_acks = 0
        self.retransmissions = 0
        self.gave_up = False
        self.on_give_up: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------

    def send(self, payload: bytes) -> None:
        """Queue one payload for stop-and-wait delivery."""
        self._queue.append(bytes(payload))
        if self._in_flight is None:
            self._next_frame()

    @property
    def idle(self) -> bool:
        """True when nothing is queued or awaiting acknowledgement."""
        return self._in_flight is None and not self._queue

    # ------------------------------------------------------------------
    # machinery
    # ------------------------------------------------------------------

    def _next_frame(self) -> None:
        if not self._queue:
            return
        self._in_flight = self._queue.popleft()
        self._attempts = 0
        self._transmit()
        self._timer.start(self.retransmit_interval)

    def _transmit(self) -> None:
        frame = AbpFrame("DATA", self.bit, self._in_flight)
        msg = Message(payload=frame)
        msg.meta["dst"] = self.peer_address
        self._record("abp.data_sent", bit=self.bit,
                     attempt=self._attempts)
        self.send_down(msg)

    def _on_timeout(self) -> None:
        if self._in_flight is None or self.gave_up:
            return
        if self.max_retransmits is not None \
                and self._attempts >= self.max_retransmits:
            self.gave_up = True
            self._record("abp.give_up", bit=self.bit)
            if self.on_give_up:
                self.on_give_up()
            return
        self._attempts += 1
        self.retransmissions += 1
        self._record("abp.retransmit", bit=self.bit, attempt=self._attempts)
        self._transmit()
        self._timer.start(self.retransmit_interval)

    def pop(self, msg: Message) -> None:
        frame = msg.payload
        if not isinstance(frame, AbpFrame) or frame.kind != "ACK":
            return
        if self._in_flight is not None and frame.bit == self.bit:
            self._record("abp.acked", bit=self.bit)
            self.delivered_acks += 1
            self._in_flight = None
            self._timer.stop()
            self.bit ^= 1
            self._next_frame()
        else:
            self._record("abp.stale_ack", bit=frame.bit)

    def _record(self, kind: str, **attrs) -> None:
        if self.trace is not None:
            self.trace.record(kind, t=self.scheduler.now, node=self.name,
                              **attrs)


class AbpReceiver(Protocol):
    """Stop-and-wait receiver with (optionally buggy) duplicate filtering.

    ``check_bit=False`` reproduces the classic implementation mistake the
    PFI methodology finds instantly: a receiver that ACKs correctly but
    delivers every arriving frame, so one dropped ACK means one duplicate
    delivery.
    """

    def __init__(self, scheduler: Scheduler, peer_address: int, *,
                 check_bit: bool = True,
                 trace: Optional[TraceRecorder] = None,
                 name: str = "abp_receiver"):
        super().__init__(name)
        self.scheduler = scheduler
        self.peer_address = peer_address
        self.check_bit = check_bit
        self.trace = trace
        self.expected_bit = 0
        self.delivered: List[bytes] = []
        self.duplicates_delivered = 0
        self.on_deliver: Optional[Callable[[bytes], None]] = None

    def pop(self, msg: Message) -> None:
        frame = msg.payload
        if not isinstance(frame, AbpFrame) or frame.kind != "DATA":
            return
        if self.check_bit and frame.bit != self.expected_bit:
            # a duplicate of the previous frame: re-ACK, do not deliver
            self._record("abp.duplicate_suppressed", bit=frame.bit)
            self._send_ack(frame.bit)
            return
        if frame.bit != self.expected_bit:
            # buggy path: delivering despite the stale bit
            self.duplicates_delivered += 1
            self._record("abp.duplicate_delivered", bit=frame.bit)
        else:
            self.expected_bit ^= 1
        self.delivered.append(frame.payload)
        self._record("abp.delivered", bit=frame.bit)
        if self.on_deliver:
            self.on_deliver(frame.payload)
        self._send_ack(frame.bit)

    def _send_ack(self, bit: int) -> None:
        ack = Message(payload=AbpFrame("ACK", bit))
        ack.meta["dst"] = self.peer_address
        self._record("abp.ack_sent", bit=bit)
        self.send_down(ack)

    def _record(self, kind: str, **attrs) -> None:
        if self.trace is not None:
            self.trace.record(kind, t=self.scheduler.now, node=self.name,
                              **attrs)


def abp_stubs() -> PacketStubs:
    """Recognition/generation stubs for ABP frames."""
    stubs = PacketStubs()

    def recognize(msg: Message) -> Optional[str]:
        if isinstance(msg.payload, AbpFrame):
            return f"ABP_{msg.payload.kind}"
        return None

    stubs.register_recognizer(recognize)

    def gen_ack(*, bit: int = 0, dst: Optional[int] = None) -> Message:
        msg = Message(payload=AbpFrame("ACK", bit))
        if dst is not None:
            msg.meta["dst"] = dst
        return msg

    def gen_data(*, bit: int = 0, payload: bytes = b"",
                 dst: Optional[int] = None) -> Message:
        msg = Message(payload=AbpFrame("DATA", bit, payload))
        if dst is not None:
            msg.meta["dst"] = dst
        return msg

    stubs.register_generator("ABP_ACK", gen_ack)
    stubs.register_generator("ABP_DATA", gen_data)
    return stubs
