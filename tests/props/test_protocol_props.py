"""Property-based tests on whole-protocol invariants under fault injection.

These drive the real TCP machinery through randomized loss patterns and
assert the end-to-end reliability invariant: if the connection survives,
the receiver got exactly the sent bytes, in order, once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import FailureModel, is_at_least_as_severe
from tests.tcp.conftest import ConnPair


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.floats(min_value=0.0, max_value=0.3))
@settings(max_examples=20, deadline=None)
def test_tcp_delivers_exactly_once_under_loss(seed, loss_rate):
    import random
    rng = random.Random(seed)
    pair = ConnPair().establish()
    pair.pipe.drop_a_to_b = lambda seg: rng.random() < loss_rate
    pair.pipe.drop_b_to_a = lambda seg: rng.random() < loss_rate
    payload = bytes(rng.randrange(256) for _ in range(1500))
    pair.a.send(payload)
    pair.run(600.0)
    if pair.a.state != "CLOSED":
        assert bytes(pair.b.delivered) == payload


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_tcp_survives_moderate_loss(seed):
    """With 10% loss and 12 retransmissions, transfers complete."""
    import random
    rng = random.Random(seed)
    pair = ConnPair().establish()
    pair.pipe.drop_a_to_b = lambda seg: rng.random() < 0.10
    payload = b"M" * 2048
    pair.a.send(payload)
    pair.run(900.0)
    assert bytes(pair.b.delivered) == payload


@given(st.sampled_from(list(FailureModel)),
       st.sampled_from(list(FailureModel)))
def test_severity_relation_is_antisymmetric(a, b):
    if a != b:
        assert not (is_at_least_as_severe(a, b)
                    and is_at_least_as_severe(b, a))


@given(st.sampled_from(list(FailureModel)))
def test_severity_relation_is_reflexive(model):
    assert is_at_least_as_severe(model, model)


@given(st.sampled_from(list(FailureModel)),
       st.sampled_from(list(FailureModel)),
       st.sampled_from(list(FailureModel)))
def test_severity_relation_is_transitive(a, b, c):
    if is_at_least_as_severe(a, b) and is_at_least_as_severe(b, c):
        assert is_at_least_as_severe(a, c)
