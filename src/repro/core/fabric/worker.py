"""The fabric worker: lease a shard, execute it, publish, repeat.

``python -m repro.core.fabric.worker --connect HOST:PORT --dir DIR
--worker NAME`` connects to a coordinator, loads the sweep spec from the
campaign directory, and loops: request a lease, execute the granted
shard one configuration at a time, ``put`` each result into the shared
:class:`~repro.core.fabric.store.ResultStore` *before* journaling its
``run_end`` and heartbeating -- so a SIGKILL at any byte offset loses at
most the configuration in flight, never a row the journal claims done.

Each lease gets its own journal file
(``journals/shard-NNNN-tryA-WORKER.jsonl``): per-shard journals never
share a writer, so worker loss cannot tear another worker's record, and
the merge step (:mod:`repro.core.fabric.merge`) folds them by config
index where duplicate rows from a stolen-but-finished shard are
harmless -- determinism makes them byte-identical on stable keys.

A heartbeat answered ``ok: false`` means the lease expired and was
stolen; the worker abandons the rest of the shard immediately (the new
holder owns it) and asks for fresh work.  A dead coordinator socket
exits the worker with status 3 -- orphaned workers never spin.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.fabric.protocol import (ProtocolError, recv_message,
                                        request, send_message)
from repro.core.fabric.spec import SweepSpec
from repro.core.fabric.store import ResultStore
from repro.core.orchestrator import (_capture_payload, _capture_prefix,
                                     _config_label, _execute_config,
                                     _execute_forked, _run_end_payload)
from repro.netsim import kinds as K
from repro.obs.journal import Journal

#: worker exit statuses (asserted by the chaos rig)
EXIT_DRAINED = 0
EXIT_ERROR = 1
EXIT_COORDINATOR_LOST = 3

CONNECT_RETRIES = 50
CONNECT_BACKOFF_S = 0.1


def _connect(endpoint: Tuple[str, int]) -> socket.socket:
    """Dial the coordinator, retrying while it finishes binding."""
    last: Optional[Exception] = None
    for _attempt in range(CONNECT_RETRIES):
        try:
            return socket.create_connection(endpoint, timeout=30.0)
        except OSError as err:
            last = err
            time.sleep(CONNECT_BACKOFF_S)
    raise ConnectionError(
        f"could not reach coordinator at {endpoint[0]}:{endpoint[1]}: "
        f"{last}")


def _shard_journal_path(fabric_dir: Path, shard: int, attempt: int,
                        worker: str) -> Path:
    return (fabric_dir / "journals"
            / f"shard-{shard:04d}-try{attempt}-{worker}.jsonl")


class _LeaseLost(Exception):
    """The coordinator declined our heartbeat: the shard was stolen."""


def _execute_shard(spec: SweepSpec, store: ResultStore,
                   store_keys: List[str],
                   prefix_keys: Optional[List[Optional[Any]]],
                   indices: List[int], journal: Journal,
                   sock: socket.socket, shard: int) -> Tuple[int, int]:
    """Run one leased shard config by config; returns (executed, cached).

    Mirrors the orchestrator's grouped chunk executor
    (:func:`repro.core.orchestrator._execute_chunk`) but persists and
    journals after *every* configuration instead of after the chunk:
    crash granularity is one config, and each completed row heartbeats
    the lease so slow shards do not expire under a live worker.
    """
    from repro.core.checkpoint import CheckpointError
    executed = cached = 0
    checkpoint = None
    current_key: Optional[Any] = None
    for position, index in enumerate(indices):
        config = spec.configs[index]
        if store.has(store_keys[index]):
            # another attempt (or a concurrent local run) already
            # published this row; count it and keep the lease warm
            cached += 1
            result = store.get(store_keys[index])
            if result is not None:
                journal.record(K.CAMPAIGN_RUN_END,
                               **_run_end_payload(index, result,
                                                  cached_hit=True))
            _heartbeat(sock, shard)
            continue
        key = prefix_keys[index] if prefix_keys is not None else None
        journal.record(K.CAMPAIGN_RUN_START, index=index,
                       label=_config_label(config))
        try:
            forked = False
            if key is None:
                checkpoint, current_key = None, None
                result = _execute_config(
                    spec.body, spec.seed, config,
                    telemetry=spec.telemetry, oracle=spec.oracle)
            else:
                if key != current_key:
                    current_key = key
                    checkpoint = None
                    group_size = sum(
                        1 for i in indices[position:]
                        if prefix_keys[i] == key
                        and not store.has(store_keys[i]))
                    if group_size > 1:
                        try:
                            checkpoint = _capture_prefix(spec.body,
                                                         config, key)
                        except CheckpointError:
                            checkpoint = None
                        else:
                            journal.record(
                                K.CAMPAIGN_CHECKPOINT_CAPTURE,
                                **_capture_payload(key, checkpoint,
                                                   group_size))
                if checkpoint is not None:
                    try:
                        result = _execute_forked(
                            spec.body, spec.seed, config, checkpoint,
                            telemetry=spec.telemetry, oracle=spec.oracle)
                        forked = True
                    except CheckpointError:
                        checkpoint = None
                if not forked:
                    result = _execute_config(
                        spec.body, spec.seed, config,
                        telemetry=spec.telemetry, oracle=spec.oracle)
        except _LeaseLost:
            raise
        except Exception as err:
            journal.record(K.CAMPAIGN_WORKER_ERROR, index=index,
                           error=repr(err))
            raise
        store.put(store_keys[index], result)
        journal.record(K.CAMPAIGN_RUN_END,
                       **_run_end_payload(index, result, prefix=key,
                                          forked=forked))
        executed += 1
        _heartbeat(sock, shard)
    return executed, cached


def _heartbeat(sock: socket.socket, shard: int) -> None:
    reply = request(sock, {"type": "heartbeat", "shard": shard})
    if not reply.get("ok", False):
        raise _LeaseLost(f"lease on shard {shard} was reclaimed")


def run_worker(endpoint: Tuple[str, int], fabric_dir: Path,
               worker: str) -> int:
    """The worker main loop; returns a process exit status."""
    fabric_dir = Path(fabric_dir)
    spec = SweepSpec.load(fabric_dir / "spec.pkl")
    store = ResultStore(fabric_dir / "store")
    store_keys = spec.store_keys(store)
    prefix_keys = spec.execution_prefix_keys()
    try:
        sock = _connect(endpoint)
    except ConnectionError as err:
        print(f"fabric worker {worker}: {err}", file=sys.stderr)
        return EXIT_COORDINATOR_LOST
    try:
        welcome = request(sock, {"type": "hello", "worker": worker,
                                 "pid": os.getpid(),
                                 "spec": spec.digest()})
        if welcome.get("type") != "welcome":
            print(f"fabric worker {worker}: unexpected handshake reply "
                  f"{welcome!r}", file=sys.stderr)
            return EXIT_ERROR
        poll_s = float(welcome.get("poll", 0.05))
        while True:
            reply = request(sock, {"type": "lease"})
            kind = reply.get("type")
            if kind == "drain":
                return EXIT_DRAINED
            if kind == "wait":
                time.sleep(float(reply.get("poll", poll_s)))
                continue
            if kind != "grant":
                print(f"fabric worker {worker}: unexpected lease reply "
                      f"{reply!r}", file=sys.stderr)
                return EXIT_ERROR
            shard = int(reply["shard"])
            indices = [int(i) for i in reply["indices"]]
            attempt = int(reply.get("attempt", 1))
            journal = Journal(_shard_journal_path(fabric_dir, shard,
                                                  attempt, worker))
            try:
                try:
                    executed, cached = _execute_shard(
                        spec, store, store_keys, prefix_keys, indices,
                        journal, sock, shard)
                except _LeaseLost:
                    journal.record(K.CAMPAIGN_WORKER_ERROR, shard=shard,
                                   worker=worker, reason="lease_lost")
                    continue
                except Exception as err:
                    send_message(sock, {"type": "done", "shard": shard,
                                        "error": repr(err)})
                    recv_message(sock)
                    raise
            finally:
                journal.close()
            request(sock, {"type": "done", "shard": shard,
                           "executed": executed, "cached": cached})
    except (ProtocolError, OSError) as err:
        # the coordinator vanished (SIGKILL, abort); exit distinctly so
        # the chaos rig can tell orphaning from worker bugs
        print(f"fabric worker {worker}: coordinator lost: {err}",
              file=sys.stderr)
        return EXIT_COORDINATOR_LOST
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fabric-worker",
        description="one fabric sweep worker (spawned by the "
                    "coordinator; standalone for chaos tests)")
    parser.add_argument("--connect", required=True,
                        metavar="HOST:PORT")
    parser.add_argument("--dir", required=True,
                        help="campaign fabric directory (spec + store)")
    parser.add_argument("--worker", default=None,
                        help="worker name (default: w<pid>)")
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    worker = args.worker or f"w{os.getpid()}"
    return run_worker((host or "127.0.0.1", int(port)),
                      Path(args.dir), worker)


if __name__ == "__main__":
    sys.exit(main())
