"""Checkpoint fork vs cold start: the prefix-sharing speedup.

The checkpoint engine (``repro.core.checkpoint``) exists so N trials
that share a warmed-up prefix cost one warmup plus N continuations
instead of N full runs.  This bench measures that on the heaviest
standard rig: a five-machine GMP group warmed almost to the fuzz
horizon, each trial installing a heartbeat-dropping tclish filter and
running the last stretch with the GMP invariant pack as the verdict --
script install and oracle evaluation are inside the timed region for
both paths, so the speedup is end-to-end, not fork-vs-deepcopy.

Correctness is asserted, not assumed: every forked continuation's
canonical trace dump (volatile message uids excluded, see
``VOLATILE_ATTRS``) must be byte-identical to the cold run's.

The workload is serial and deterministic -- no worker pools, no
CPU-count dependence -- so unlike the campaign bench this one gates
directly in CI (>= 3x).
"""

from __future__ import annotations

import argparse
import gc
import time

import perf_common

from repro.analysis.export import VOLATILE_ATTRS, dump_trace
from repro.core import TclishFilter
from repro.core.checkpoint import Checkpoint
from repro.core.orchestrator import Campaign, PrefixedBody, make_env
from repro.experiments.gmp_common import build_gmp_cluster
from repro.oracle import evaluate
from repro.oracle.fuzz import pack_for

WORLD = [1, 2, 3, 4, 5]
DEPTH = 28.0
HORIZON = 30.0
TARGET = 3
SCRIPT = 'if {[msg_type cur_msg] eq "HEARTBEAT"} { xDrop cur_msg }'

MIN_SPEEDUP = 3.0
#: grouped Campaign.run over ungrouped serial; lower than the raw fork
#: gate because the sweep pays one capture plus per-run scheduling
MIN_CAMPAIGN_SPEEDUP = 2.0


def _prefix(seed: int = 0):
    """Warm a five-machine group to DEPTH; returns (env, cluster)."""
    env = make_env(seed=seed)
    cluster = build_gmp_cluster(WORLD, env=env)
    cluster.start()
    env.run_until(DEPTH)
    return env, cluster


def _continuation(env, cluster, oracle):
    """The per-trial tail: install the filter, run out, judge."""
    script = TclishFilter(SCRIPT, name="bench_fork")
    cluster.pfis[TARGET].set_send_filter(script)
    env.run_until(HORIZON)
    evaluate(env.trace, oracle()).violations
    return env.trace


def run_bench(trials: int = 30, verbose: bool = True) -> dict:
    """Measure cold vs capture-once-fork-N; returns the JSON payload."""
    oracle = pack_for("gmp")

    # warm up both paths untimed (imports, deepcopy dispatch caches,
    # tclish compile cache); the first capture otherwise pays ~10x
    env, cluster = _prefix()
    warm = Checkpoint.capture(env, {"cluster": cluster}, label="warmup")
    forked = warm.fork()
    _continuation(forked.env, forked["cluster"], oracle)

    # dumping a trace for verification costs more than running the
    # continuation it checks, so each trial is timed individually and
    # the canonical dump happens off the clock -- which also releases
    # each trial's world before the next one runs.  The collector is
    # paused inside timed sections: a gen-2 sweep triggered by dump
    # garbage would otherwise land on whichever trial allocates next
    def canon(trace):
        return dump_trace(trace, exclude_attrs=VOLATILE_ATTRS)

    def timed(fn):
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        gc.enable()
        return result, elapsed

    cold_s = 0.0
    cold_dumps = []
    for _ in range(trials):
        (env_cluster), elapsed = timed(lambda: _prefix())
        trace, tail = timed(
            lambda: _continuation(*env_cluster, oracle))
        cold_s += elapsed + tail
        cold_dumps.append(canon(trace))

    (env, cluster), _ = timed(lambda: _prefix())
    checkpoint, capture_s = timed(
        lambda: Checkpoint.capture(env, {"cluster": cluster},
                                   label=f"bench/gmp@{DEPTH:g}"))

    fork_s = 0.0
    fork_dumps = []
    for _ in range(trials):
        def one_trial():
            forked = checkpoint.fork()
            return _continuation(forked.env, forked["cluster"], oracle)
        trace, elapsed = timed(one_trial)
        fork_s += elapsed
        fork_dumps.append(canon(trace))

    identical = all(dump == cold_dumps[0]
                    for dump in cold_dumps[1:] + fork_dumps)
    forked_total = capture_s + fork_s
    payload = {
        "world": len(WORLD),
        "depth": DEPTH,
        "horizon": HORIZON,
        "trials": trials,
        "cold_seconds": round(cold_s, 4),
        "capture_seconds": round(capture_s, 4),
        "fork_seconds": round(fork_s, 4),
        "cold_ms_per_trial": round(cold_s / trials * 1e3, 3),
        "fork_ms_per_trial": round(fork_s / trials * 1e3, 3),
        "speedup": round(cold_s / forked_total, 2),
        "byte_identical": identical,
    }
    if verbose:
        print(f"checkpoint fork: {len(WORLD)}-machine GMP group, "
              f"depth {DEPTH:g} of {HORIZON:g}, {trials} trials")
        print(f"  cold   : {cold_s:8.3f}s "
              f"({payload['cold_ms_per_trial']:.2f} ms/trial)")
        print(f"  forked : {forked_total:8.3f}s "
              f"(capture {capture_s * 1e3:.1f} ms + "
              f"{payload['fork_ms_per_trial']:.2f} ms/trial)")
        print(f"  speedup: {payload['speedup']:.2f}x")
        print(f"  forked continuations byte-identical to cold: {identical}")
    return payload


# ----------------------------------------------------------------------
# campaign prefix-sharing: grouped sweep vs ungrouped serial
# ----------------------------------------------------------------------

def _campaign_prefix(env, config):
    """The sweep's shared warm prefix: the 5-machine group at DEPTH."""
    cluster = build_gmp_cluster(WORLD, env=env)
    cluster.start()
    env.run_until(DEPTH)
    return {"cluster": cluster}


def _campaign_continue(env, state, config):
    """Per-config tail: arm the heartbeat-drop filter, run out."""
    script = TclishFilter(SCRIPT, name=f"bench_prefix_{config['case']}")
    state["cluster"].pfis[TARGET].set_send_filter(script)
    env.run_until(HORIZON)
    return {"case": config["case"]}


def _campaign_key(config):
    return f"gmp{len(WORLD)}@{DEPTH:g}"


campaign_body = PrefixedBody(_campaign_prefix, _campaign_continue,
                             key=_campaign_key)


def run_campaign_bench(configs: int = 20, verbose: bool = True) -> dict:
    """Grouped ``Campaign.run`` vs the same sweep forced cold, serially.

    This is the whole-sweep view of the fork speedup above: one prefix
    group of ``configs`` configurations, single worker, oracle verdicts
    computed in both paths.  Canonical traces are asserted byte-
    identical pairwise before any number is reported.
    """
    oracle = pack_for("gmp")
    sweep = [{"case": case} for case in range(configs)]

    # untimed warmup (imports, deepcopy dispatch, tclish compile cache)
    Campaign(campaign_body, seed=0).run(sweep[:1], group=False,
                                        telemetry=False)

    def canon(trace):
        return dump_trace(trace, exclude_attrs=VOLATILE_ATTRS)

    def timed(fn):
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        gc.enable()
        return result, elapsed

    campaign = Campaign(campaign_body, seed=0)
    cold, cold_s = timed(lambda: campaign.run(
        sweep, group=False, telemetry=False, oracle=oracle))
    grouped, grouped_s = timed(lambda: campaign.run(
        sweep, telemetry=False, oracle=oracle))

    identical = all(
        canon(g.trace) == canon(c.trace)
        and g.result == c.result
        and [v.fingerprint() for v in (g.violations or [])]
        == [v.fingerprint() for v in (c.violations or [])]
        for g, c in zip(grouped, cold))
    payload = {
        "world": len(WORLD),
        "depth": DEPTH,
        "horizon": HORIZON,
        "configs": configs,
        "ungrouped_seconds": round(cold_s, 4),
        "grouped_seconds": round(grouped_s, 4),
        "ungrouped_ms_per_config": round(cold_s / configs * 1e3, 3),
        "grouped_ms_per_config": round(grouped_s / configs * 1e3, 3),
        "speedup": round(cold_s / grouped_s, 2),
        "byte_identical": identical,
    }
    if verbose:
        print(f"campaign prefix sharing: {configs} configs, one "
              f"{len(WORLD)}-machine GMP prefix group at depth {DEPTH:g}")
        print(f"  ungrouped: {cold_s:8.3f}s "
              f"({payload['ungrouped_ms_per_config']:.2f} ms/config)")
        print(f"  grouped  : {grouped_s:8.3f}s "
              f"({payload['grouped_ms_per_config']:.2f} ms/config)")
        print(f"  speedup  : {payload['speedup']:.2f}x")
        print(f"  grouped runs byte-identical to ungrouped: {identical}")
    return payload


def test_perf_fork_quick():
    """CI smoke: forked continuations must replay byte-identically."""
    payload = run_bench(trials=2, verbose=False)
    assert payload["byte_identical"], payload


def test_perf_campaign_prefix_quick():
    """CI smoke: grouped sweeps must match ungrouped byte-for-byte."""
    payload = run_campaign_bench(configs=3, verbose=False)
    assert payload["byte_identical"], payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer trials, no JSON update, no speed gate")
    parser.add_argument("--trials", type=int, default=30)
    parser.add_argument("--configs", type=int, default=20)
    args = parser.parse_args()
    result = run_bench(trials=3 if args.quick else args.trials)
    assert result["byte_identical"], result
    sweep_result = run_campaign_bench(
        configs=4 if args.quick else args.configs)
    assert sweep_result["byte_identical"], sweep_result
    if not args.quick:
        assert result["speedup"] >= MIN_SPEEDUP, result
        assert sweep_result["speedup"] >= MIN_CAMPAIGN_SPEEDUP, sweep_result
        perf_common.update_bench_json("fork", result)
        perf_common.update_bench_json("campaign_prefix", sweep_result)
