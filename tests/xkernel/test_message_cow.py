"""Copy-on-write messages must never leak mutations between copies.

``Message.copy()`` shares the header list until one side touches it, so
these tests hammer the aliasing surface: for every real header/payload
type the stacks use (TCP segments, IP headers, GMP wire messages, UDP and
reliable-layer headers), mutating any copy -- its headers, its meta, its
mutable payload -- must be invisible to every other copy, whichever side
materialized first and however many copies share the group.
"""

import itertools

import pytest

from repro.gmp.messages import PROCLAIM, GmpMessage
from repro.gmp.reliable import RelHeader
from repro.gmp.udp import UDPHeader
from repro.tcp.ip import IPHeader
from repro.tcp.segment import ACK, SYN, Segment
from repro.xkernel.message import Message


def _tcp_message():
    seg = Segment(src_port=1, dst_port=2, seq=100, ack=0,
                  flags=SYN, window=4096, payload=b"data")
    msg = Message(payload=seg)
    msg.push_header(IPHeader(src=10, dst=20))
    msg.meta["dst"] = 20
    return msg


def _gmp_message():
    wire = GmpMessage(kind=PROCLAIM, sender=3, originator=3,
                      group_id=7, members=(1, 2, 3))
    msg = Message(payload=wire)
    msg.push_header(RelHeader(seq=5))
    msg.push_header(UDPHeader(src_port=7777, dst_port=7777))
    msg.meta["dst"] = 1
    return msg


def _mutable_payload_message():
    msg = Message(payload={"fields": [1, 2, 3]})
    msg.push_header(IPHeader(src=1, dst=2))
    return msg


BUILDERS = [_tcp_message, _gmp_message, _mutable_payload_message]


def _mutate_headers(msg):
    """Scribble over every recognized header field."""
    for header in msg.headers:
        if isinstance(header, IPHeader):
            header.src, header.dst, header.ttl = 99, 98, 1
        elif isinstance(header, UDPHeader):
            header.src_port = header.dst_port = 9
        elif isinstance(header, RelHeader):
            header.seq, header.is_ack = 999, True


def _snapshot(msg):
    """A deep, comparison-friendly picture of the message's content."""
    return repr((msg.payload, list(msg.headers), sorted(msg.meta.items())))


@pytest.mark.parametrize("build", BUILDERS,
                         ids=["tcp", "gmp", "mutable_payload"])
class TestCopyAliasing:
    def test_mutating_copy_headers_leaves_original_intact(self, build):
        original = build()
        before = _snapshot(original)
        copy = original.copy()
        _mutate_headers(copy)
        assert _snapshot(original) == before

    def test_mutating_original_headers_leaves_copy_intact(self, build):
        original = build()
        copy = original.copy()
        before = _snapshot(copy)
        _mutate_headers(original)
        assert _snapshot(copy) == before

    def test_meta_is_independent(self, build):
        original = build()
        copy = original.copy()
        copy.meta["poison"] = True
        original.meta["other"] = 1
        assert "poison" not in original.meta
        assert "other" not in copy.meta

    def test_header_objects_never_shared_after_touch(self, build):
        original = build()
        copy = original.copy()
        copied_headers = copy.headers  # materializes the copy's stack
        for theirs, ours in zip(original.headers, copied_headers):
            assert theirs is not ours or not hasattr(theirs, "__dict__")

    def test_three_way_share_isolated(self, build):
        # N-way share groups: mutate each sibling, others must not move
        original = build()
        siblings = [original.copy() for _ in range(3)]
        baselines = [_snapshot(m) for m in [original] + siblings]
        for victim, (msg, before) in enumerate(
                zip([original] + siblings, baselines)):
            _mutate_headers(msg)
            for other_index, other in enumerate([original] + siblings):
                if other_index > victim:
                    assert _snapshot(other) == baselines[other_index]

    def test_push_pop_on_copy_does_not_touch_original(self, build):
        original = build()
        depth = len(original.headers)
        copy = original.copy()
        copy.push_header(IPHeader(src=1, dst=2))
        copy.pop_header()
        if copy.headers:
            copy.pop_header()
        assert len(original.headers) == depth


class TestPayloadAliasing:
    def test_segment_payload_cloned_not_shared(self):
        msg = _tcp_message()
        copy = msg.copy()
        assert copy.payload is not msg.payload
        copy.payload.seq = 12345
        copy.payload.flags = ACK
        assert msg.payload.seq == 100
        assert msg.payload.flags == SYN

    def test_gmp_payload_cloned_not_shared(self):
        msg = _gmp_message()
        copy = msg.copy()
        assert copy.payload is not msg.payload
        copy.payload.sender = 77
        assert msg.payload.sender == 3

    def test_mutable_container_payload_deepcopied(self):
        msg = _mutable_payload_message()
        copy = msg.copy()
        copy.payload["fields"].append(4)
        copy.payload["extra"] = True
        assert msg.payload == {"fields": [1, 2, 3]}

    def test_bytes_payload_still_shared(self):
        # immutable payloads stay aliased -- that is the optimization
        msg = Message(payload=b"wire bytes")
        assert msg.copy().payload is msg.payload


class TestShareGroupMechanics:
    def test_copy_chain_all_isolated(self):
        # copies of copies: every generation mutates, nothing bleeds back
        msg = _tcp_message()
        generations = [msg]
        for _ in range(4):
            generations.append(generations[-1].copy())
        baseline = _snapshot(msg)
        for gen in generations[1:]:
            _mutate_headers(gen)
        assert _snapshot(msg) == baseline

    def test_interleaved_reads_and_mutations(self):
        # reading headers (materializing) in arbitrary order must not
        # change what any sharer sees (meta differs by lineage, so only
        # payload and headers are compared)
        for order in itertools.permutations(range(3)):
            msgs = [_gmp_message()]
            msgs.append(msgs[0].copy())
            msgs.append(msgs[0].copy())
            expected = repr((msgs[0].payload, list(msgs[0].headers)))
            for index in order:
                assert repr((msgs[index].payload,
                             list(msgs[index].headers))) == expected
