"""Automatic generation of test scripts from a protocol specification.

The paper's §6 names this as future work: "automatic generation of test
scripts from a protocol specification".  This module implements it: given
a :class:`ProtocolSpec` -- the protocol's message types, their fields, and
which types are control-critical -- :func:`generate_campaign` derives a
systematic battery of filter scripts covering the §2.2 failure models:

- per-type **drop** scripts (omission of each message kind),
- per-type **delay** scripts (timing failures),
- per-type **duplicate** scripts,
- per-type **reorder** scripts (hold one, release after the next),
- per-field **corruption** scripts (byzantine),
- probabilistic **omission** scripts,
- a **crash** script (correct prefix, then silence).

Every generated script exists in both backends: a Python
:class:`~repro.core.script.PythonFilter` ready to install, and equivalent
tclish source (the paper's "scripts are inputs" form), so the generated
campaign is inspectable and editable by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.core.context import ScriptContext
from repro.core.faults import FailureModel
from repro.core.script import PythonFilter, TclishFilter


@dataclass(frozen=True)
class MessageTypeSpec:
    """One message type of the target protocol."""

    name: str
    #: header fields a corruption script may mutate, with a sample
    #: corrupted value per field
    mutable_fields: Tuple[Tuple[str, Any], ...] = ()
    #: control messages get reorder/duplicate coverage; bulk data types
    #: can opt out to keep campaigns focused
    control: bool = True


@dataclass(frozen=True)
class ProtocolSpec:
    """What the generator needs to know about a protocol."""

    name: str
    message_types: Tuple[MessageTypeSpec, ...]

    def type_names(self) -> List[str]:
        return [t.name for t in self.message_types]


@dataclass
class GeneratedScript:
    """One generated test: metadata plus both script backends."""

    name: str
    description: str
    direction: str                  # "send" or "receive"
    failure_model: FailureModel
    python_filter: PythonFilter
    tclish_source: str
    tclish_init: str = ""

    def tclish_filter(self) -> TclishFilter:
        """Instantiate the tclish form (fresh interpreter per call)."""
        return TclishFilter(self.tclish_source, init_script=self.tclish_init,
                            name=self.name)

    def __repr__(self) -> str:
        return (f"GeneratedScript({self.name}, {self.direction}, "
                f"{self.failure_model.value})")


# ----------------------------------------------------------------------
# individual generators
# ----------------------------------------------------------------------

def _drop_type(type_name: str, direction: str) -> GeneratedScript:
    def fn(ctx: ScriptContext) -> None:
        if ctx.msg_type() == type_name:
            ctx.drop()
    model = (FailureModel.SEND_OMISSION if direction == "send"
             else FailureModel.RECEIVE_OMISSION)
    return GeneratedScript(
        name=f"drop_{type_name.lower()}_{direction}",
        description=f"drop every {type_name} on the {direction} path",
        direction=direction, failure_model=model,
        python_filter=PythonFilter(fn, name=f"drop_{type_name}"),
        tclish_source=(
            f'if {{[msg_type cur_msg] eq "{type_name}"}} '
            f'{{ xDrop cur_msg }}'))


def _delay_type(type_name: str, seconds: float,
                direction: str) -> GeneratedScript:
    def fn(ctx: ScriptContext) -> None:
        if ctx.msg_type() == type_name:
            ctx.delay(seconds)
    return GeneratedScript(
        name=f"delay_{type_name.lower()}_{direction}",
        description=f"delay every {type_name} by {seconds}s "
                    f"({direction} path)",
        direction=direction, failure_model=FailureModel.TIMING,
        python_filter=PythonFilter(fn, name=f"delay_{type_name}"),
        tclish_source=(
            f'if {{[msg_type cur_msg] eq "{type_name}"}} '
            f'{{ xDelay {seconds} }}'))


def _duplicate_type(type_name: str, direction: str) -> GeneratedScript:
    def fn(ctx: ScriptContext) -> None:
        if ctx.msg_type() == type_name:
            ctx.duplicate()
    return GeneratedScript(
        name=f"duplicate_{type_name.lower()}_{direction}",
        description=f"duplicate every {type_name} ({direction} path)",
        direction=direction, failure_model=FailureModel.BYZANTINE,
        python_filter=PythonFilter(fn, name=f"duplicate_{type_name}"),
        tclish_source=(
            f'if {{[msg_type cur_msg] eq "{type_name}"}} '
            f'{{ xDuplicate cur_msg 1 }}'))


def _reorder_type(type_name: str, direction: str) -> GeneratedScript:
    def fn(ctx: ScriptContext) -> None:
        if ctx.msg_type() != type_name:
            return
        if not ctx.state.get("holding"):
            ctx.state["holding"] = True
            ctx.hold("reorder")
        else:
            ctx.state["holding"] = False
            ctx.release("reorder")
    return GeneratedScript(
        name=f"reorder_{type_name.lower()}_{direction}",
        description=f"swap each consecutive pair of {type_name} messages "
                    f"({direction} path)",
        direction=direction, failure_model=FailureModel.BYZANTINE,
        python_filter=PythonFilter(fn, name=f"reorder_{type_name}"),
        tclish_source=(
            f'if {{[msg_type cur_msg] eq "{type_name}"}} {{\n'
            f'    if {{!$holding}} {{\n'
            f'        set holding 1\n'
            f'        xHold cur_msg reorder\n'
            f'    }} else {{\n'
            f'        set holding 0\n'
            f'        xRelease reorder\n'
            f'    }}\n'
            f'}}'),
        tclish_init="set holding 0")


def _corrupt_field(type_name: str, field_name: str, bad_value: Any,
                   direction: str) -> GeneratedScript:
    def fn(ctx: ScriptContext) -> None:
        if ctx.msg_type() == type_name:
            ctx.set_field(field_name, bad_value)
    return GeneratedScript(
        name=f"corrupt_{type_name.lower()}_{field_name}_{direction}",
        description=f"overwrite {type_name}.{field_name} with "
                    f"{bad_value!r} ({direction} path)",
        direction=direction, failure_model=FailureModel.BYZANTINE,
        python_filter=PythonFilter(fn, name=f"corrupt_{field_name}"),
        tclish_source=(
            f'if {{[msg_type cur_msg] eq "{type_name}"}} '
            f'{{ msg_set_field {field_name} {bad_value} }}'))


def _omission(p: float, direction: str) -> GeneratedScript:
    def fn(ctx: ScriptContext) -> None:
        if ctx.dist.chance(p):
            ctx.drop()
    model = (FailureModel.SEND_OMISSION if direction == "send"
             else FailureModel.RECEIVE_OMISSION)
    return GeneratedScript(
        name=f"omission_{int(p * 100)}pct_{direction}",
        description=f"drop each message with probability {p} "
                    f"({direction} path)",
        direction=direction, failure_model=model,
        python_filter=PythonFilter(fn, name=f"omission_{p}"),
        tclish_source=f'if {{[chance {p}]}} {{ xDrop cur_msg }}')


def _crash_after(n: int, direction: str) -> GeneratedScript:
    def fn(ctx: ScriptContext) -> None:
        seen = ctx.state.get("seen", 0) + 1
        ctx.state["seen"] = seen
        if seen > n:
            ctx.drop()
    return GeneratedScript(
        name=f"crash_after_{n}_{direction}",
        description=f"behave correctly for {n} messages, then crash "
                    f"({direction} path)",
        direction=direction, failure_model=FailureModel.PROCESS_CRASH,
        python_filter=PythonFilter(fn, name=f"crash_after_{n}"),
        tclish_source=(
            f'incr seen\n'
            f'if {{$seen > {n}}} {{ xDrop cur_msg }}'),
        tclish_init="set seen 0")


# ----------------------------------------------------------------------
# campaign assembly
# ----------------------------------------------------------------------

class GenerationLintError(ValueError):
    """The generator produced a tclish script that fails static analysis.

    This should never fire for the shipped generators -- it is the
    generator's own regression guard: any future template edit that
    produces a broken script is caught at generation time, not minutes
    into a campaign.  ``reports`` holds every failing
    :class:`~repro.core.tclish.lint.LintReport`.
    """

    def __init__(self, reports):
        from repro.core.tclish.lint.reporting import render_text
        self.reports = list(reports)
        text = "\n".join(render_text(report) for report in self.reports)
        super().__init__(
            f"script generator self-check failed: {len(self.reports)} "
            f"generated script(s) failed lint\n{text}")


def lint_generated(scripts: Iterable[GeneratedScript]):
    """Lint the tclish form of every generated script.

    Returns the list of failing
    :class:`~repro.core.tclish.lint.LintReport` objects (empty when the
    whole battery is clean).
    """
    from repro.core.tclish.lint import lint_source
    failing = []
    for script in scripts:
        report = lint_source(script.tclish_source,
                             init_script=script.tclish_init,
                             source_name=script.name)
        if not report.ok():
            failing.append(report)
    return failing


def generate_campaign(spec: ProtocolSpec, *,
                      directions: Sequence[str] = ("send", "receive"),
                      delay_seconds: float = 3.0,
                      omission_rates: Sequence[float] = (0.3,),
                      crash_after_messages: int = 20,
                      self_check: bool = True) -> List[GeneratedScript]:
    """Derive the systematic test battery for one protocol spec.

    With ``self_check`` (the default) every generated tclish source is
    statically analyzed and the whole battery is rejected with
    :class:`GenerationLintError` if any script carries an error-level
    diagnostic.
    """
    scripts: List[GeneratedScript] = []
    for direction in directions:
        for mtype in spec.message_types:
            scripts.append(_drop_type(mtype.name, direction))
            scripts.append(_delay_type(mtype.name, delay_seconds, direction))
            if mtype.control:
                scripts.append(_duplicate_type(mtype.name, direction))
                scripts.append(_reorder_type(mtype.name, direction))
            for field_name, bad_value in mtype.mutable_fields:
                scripts.append(_corrupt_field(mtype.name, field_name,
                                              bad_value, direction))
        for rate in omission_rates:
            scripts.append(_omission(rate, direction))
        scripts.append(_crash_after(crash_after_messages, direction))
    if self_check:
        failing = lint_generated(scripts)
        if failing:
            raise GenerationLintError(failing)
    return scripts


def campaign_by_model(scripts: Iterable[GeneratedScript]
                      ) -> Dict[FailureModel, List[GeneratedScript]]:
    """Group a generated campaign by the failure model it exercises."""
    grouped: Dict[FailureModel, List[GeneratedScript]] = {}
    for script in scripts:
        grouped.setdefault(script.failure_model, []).append(script)
    return grouped


# ----------------------------------------------------------------------
# ready-made specs for the bundled protocols
# ----------------------------------------------------------------------

def tcp_spec() -> ProtocolSpec:
    """Spec for the bundled TCP (types from the recognition stubs)."""
    return ProtocolSpec(
        name="tcp",
        message_types=(
            MessageTypeSpec("SYN"),
            MessageTypeSpec("SYNACK"),
            MessageTypeSpec("ACK", mutable_fields=(("ack", 0),)),
            MessageTypeSpec("DATA", control=False,
                            mutable_fields=(("seq", 0),)),
            MessageTypeSpec("FIN"),
            MessageTypeSpec("RST"),
        ))


def gmp_spec() -> ProtocolSpec:
    """Spec for the bundled group membership protocol."""
    return ProtocolSpec(
        name="gmp",
        message_types=(
            MessageTypeSpec("HEARTBEAT", control=False),
            MessageTypeSpec("PROCLAIM",
                            mutable_fields=(("originator", 0),)),
            MessageTypeSpec("JOIN"),
            MessageTypeSpec("MEMBERSHIP_CHANGE",
                            mutable_fields=(("group_id", 0),)),
            MessageTypeSpec("ACK"),
            MessageTypeSpec("NACK"),
            MessageTypeSpec("COMMIT"),
            MessageTypeSpec("DEAD_REPORT", mutable_fields=(("subject", 0),)),
        ))
