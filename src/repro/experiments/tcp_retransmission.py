"""Experiment TCP-1 (paper Table 1): TCP retransmission intervals.

"The receive filter script of the PFI layer was configured such that after
allowing thirty packets through without dropping or delaying their ACKs,
all incoming packets were dropped.  ...  each packet was logged with a
timestamp by the receive filter script before it was dropped."

Expected shapes (paper):

- SunOS/AIX/NeXT: 12 retransmissions of the dropped segment, exponential
  backoff levelling off at 64 s, then a TCP reset and the connection is
  closed;
- Solaris: 9 retransmissions (global fault counter), exponential backoff
  from a ~330 ms floor, no upper-bound plateau reached, connection closed
  abruptly with **no** reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.series import (most_retransmitted_seq,
                                   retransmission_series)
from repro.analysis.shape import is_exponential_backoff, plateau_value
from repro.core import ScriptContext
from repro.experiments.tcp_common import (TCPTestbed, build_tcp_testbed,
                                          open_connection,
                                          stream_from_vendor)
from repro.tcp import VENDORS, VendorProfile

PASS_COUNT = 30


@dataclass
class RetransmissionResult:
    """One Table 1 row."""

    vendor: str
    retransmissions: int
    reset_sent: bool
    close_reason: Optional[str]
    intervals: List[float] = field(default_factory=list)
    upper_bound: Optional[float] = None
    backoff_exponential: bool = False
    logged_packets: int = 0


def drop_after_script(pass_count: int = PASS_COUNT):
    """The paper's receive filter: pass N packets, then log-and-drop all."""
    def receive_filter(ctx: ScriptContext) -> None:
        seen = ctx.state.get("seen", 0) + 1
        ctx.state["seen"] = seen
        if seen > pass_count:
            ctx.log("dropped by experiment filter")
            ctx.drop()
    return receive_filter


DROP_AFTER_TCLISH = """
# Pass the first $limit packets, then log and drop everything.
incr seen
if {$seen > $limit} {
    msg_log cur_msg
    xDrop cur_msg
}
"""


def execute(vendor: VendorProfile, *, seed: int = 0,
            max_time: float = 2000.0,
            use_tclish: bool = False) -> TCPTestbed:
    """Drive Experiment 1 against one vendor; returns the run testbed.

    Split from :func:`run_retransmission_experiment` so the conformance
    oracle can evaluate the raw trace of exactly the run the table is
    summarized from.
    """
    testbed = build_tcp_testbed(vendor, seed=seed)
    client, _server = open_connection(testbed)
    stream_from_vendor(testbed, client, segments=40, interval=0.5)

    if use_tclish:
        from repro.core import TclishFilter
        script = TclishFilter(DROP_AFTER_TCLISH,
                              init_script=f"set seen 0; set limit {PASS_COUNT}")
        testbed.pfi.set_receive_filter(script)
    else:
        testbed.pfi.set_receive_filter(drop_after_script())

    testbed.env.run_until(max_time)
    return testbed


def run_retransmission_experiment(vendor: VendorProfile, *, seed: int = 0,
                                  max_time: float = 2000.0,
                                  use_tclish: bool = False) -> RetransmissionResult:
    """Run Experiment 1 against one vendor profile."""
    testbed = execute(vendor, seed=seed, max_time=max_time,
                      use_tclish=use_tclish)
    return summarize(testbed, vendor)


def summarize(testbed: TCPTestbed, vendor: VendorProfile) -> RetransmissionResult:
    trace = testbed.trace
    conn = "vendor:5000"
    seq = most_retransmitted_seq(trace, conn)
    intervals = retransmission_series(trace, conn, seq)
    resets = trace.entries("tcp.transmit", conn=conn, msg_type="RST")
    dropped = trace.first("tcp.conn_dropped", conn=conn)
    return RetransmissionResult(
        vendor=vendor.name,
        retransmissions=trace.count("tcp.retransmit", conn=conn, seq=seq),
        reset_sent=bool(resets),
        close_reason=dropped.get("reason") if dropped else None,
        intervals=intervals,
        upper_bound=plateau_value(intervals),
        backoff_exponential=is_exponential_backoff(
            intervals, cap=vendor.max_rto, floor=vendor.min_rto),
        logged_packets=trace.count("pfi.log", node="xkernel"),
    )


def run_all(seed: int = 0) -> Dict[str, RetransmissionResult]:
    """Table 1: every vendor."""
    return {name: run_retransmission_experiment(profile, seed=seed)
            for name, profile in VENDORS.items()}


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import tcp_pack
    return tcp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite."""
    for name, profile in VENDORS.items():
        yield f"retransmission/{name}", execute(profile, seed=seed).trace


def table_rows(results: Dict[str, RetransmissionResult]) -> List[List[object]]:
    """Rows in the paper's Table 1 layout."""
    rows = []
    for name, r in results.items():
        shape = "exponential" if r.backoff_exponential else "NOT exponential"
        bound = (f"upper bound {r.upper_bound:.0f} s"
                 if r.upper_bound else "no upper bound reached")
        close = ("TCP reset sent, connection closed" if r.reset_sent
                 else "connection closed abruptly, no reset")
        rows.append([name,
                     f"retransmitted {r.retransmissions} times; "
                     f"backoff {shape}; {bound}",
                     close])
    return rows
