"""Unit tests for the analysis helpers (shape, series, tables)."""

import pytest

from repro.analysis.series import (most_retransmitted_seq,
                                   retransmission_series,
                                   retransmit_counts_by_seq,
                                   transmissions_of_seq)
from repro.analysis.shape import (first_interval, intervals_of,
                                  intervals_plateau, is_exponential_backoff,
                                  is_roughly_constant, plateau_value)
from repro.analysis.tables import render_table
from repro.netsim.trace import TraceRecorder


class TestShape:
    def test_exponential_pure_doubling(self):
        assert is_exponential_backoff([1, 2, 4, 8, 16])

    def test_exponential_with_cap(self):
        assert is_exponential_backoff([1, 2, 4, 8, 10, 10, 10], cap=10)

    def test_partial_step_onto_cap_allowed(self):
        assert is_exponential_backoff([6, 12, 24, 48, 64, 64], cap=64)

    def test_exponential_with_floor(self):
        assert is_exponential_backoff([0.33, 0.33, 0.66, 1.32], floor=0.33)

    def test_not_exponential_flat(self):
        assert not is_exponential_backoff([5, 5, 5, 5])

    def test_not_exponential_decreasing(self):
        assert not is_exponential_backoff([8, 4, 2])

    def test_short_series_trivially_exponential(self):
        assert is_exponential_backoff([])
        assert is_exponential_backoff([3.0])

    def test_plateau_detection(self):
        assert plateau_value([1, 2, 4, 8, 8, 8]) == pytest.approx(8.0)
        assert plateau_value([1, 2, 4]) is None
        assert plateau_value([]) is None

    def test_plateau_with_tolerance(self):
        assert plateau_value([10.0, 10.4], tolerance=0.05) == \
            pytest.approx(10.2)
        assert plateau_value([10.0, 14.0], tolerance=0.05) is None

    def test_intervals_plateau_at_value(self):
        assert intervals_plateau([2, 4, 60, 60, 60], 60.0)
        assert not intervals_plateau([2, 4, 60, 60, 60], 30.0)

    def test_roughly_constant(self):
        assert is_roughly_constant([75.0, 75.0, 75.1])
        assert not is_roughly_constant([75.0, 150.0])
        assert is_roughly_constant([])

    def test_first_interval(self):
        assert first_interval([1.0, 4.0, 9.0]) == 3.0
        assert first_interval([1.0]) is None

    def test_intervals_of(self):
        assert intervals_of([1, 3, 6]) == [2, 3]


class TestSeries:
    def make_trace(self):
        trace = TraceRecorder(clock=lambda: 0.0)
        # seq 100 transmitted at 0, retransmitted at 2, 6
        for t, seq in [(0.0, 100), (1.0, 200), (2.0, 100), (6.0, 100)]:
            trace.record("tcp.transmit", t=t, conn="c", seq=seq)
        trace.record("tcp.retransmit", t=2.0, conn="c", seq=100)
        trace.record("tcp.retransmit", t=6.0, conn="c", seq=100)
        return trace

    def test_transmissions_of_seq(self):
        trace = self.make_trace()
        assert transmissions_of_seq(trace, "c", 100) == [0.0, 2.0, 6.0]

    def test_retransmission_series_explicit_seq(self):
        trace = self.make_trace()
        assert retransmission_series(trace, "c", 100) == [2.0, 4.0]

    def test_retransmission_series_auto_picks_most_retransmitted(self):
        trace = self.make_trace()
        assert retransmission_series(trace, "c") == [2.0, 4.0]

    def test_most_retransmitted_seq(self):
        trace = self.make_trace()
        assert most_retransmitted_seq(trace, "c") == 100
        assert most_retransmitted_seq(trace, "other") is None

    def test_counts_by_seq(self):
        trace = self.make_trace()
        assert retransmit_counts_by_seq(trace, "c") == {100: 2}

    def test_empty_trace_gives_empty_series(self):
        trace = TraceRecorder(clock=lambda: 0.0)
        assert retransmission_series(trace, "c") == []


class TestTables:
    def test_renders_headers_and_rows(self):
        text = render_table("My Title", ["A", "B"],
                            [["one", "two"], ["three", "four"]])
        assert "My Title" in text
        assert "one" in text and "four" in text
        assert text.count("+") > 4

    def test_wraps_long_cells(self):
        long = "word " * 30
        text = render_table("t", ["col"], [[long]], max_col_width=20)
        assert all(len(line) < 30 for line in text.splitlines())

    def test_cell_formatting(self):
        text = render_table("t", ["v"], [[True], [False], [3.14159],
                                         [[1, 2]], [7]])
        assert "yes" in text and "no" in text
        assert "3.142" in text
        assert "1, 2" in text

    def test_empty_rows(self):
        text = render_table("t", ["a", "b"], [])
        assert "t" in text
