"""Unit tests for protocol layers and stack splicing."""

import pytest

from repro.netsim.network import Network
from repro.netsim.scheduler import Scheduler
from repro.xkernel.message import Message
from repro.xkernel.protocol import PassthroughProtocol, Protocol
from repro.xkernel.stack import NodeAnchor, ProtocolStack


class Recorder(Protocol):
    """Bottom layer capturing pushes; top layer capturing pops."""

    def __init__(self, name):
        super().__init__(name)
        self.pushed = []
        self.popped = []

    def push(self, msg):
        self.pushed.append(msg)
        self.send_down(msg)

    def pop(self, msg):
        self.popped.append(msg)
        self.send_up(msg)


def test_build_wires_neighbours():
    a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
    ProtocolStack().build(a, b, c)
    assert a.above is None and a.below is b
    assert b.above is a and b.below is c
    assert c.above is b and c.below is None


def test_push_travels_top_to_bottom():
    a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
    ProtocolStack().build(a, b, c)
    msg = Message(b"down")
    a.push(msg)
    assert b.pushed == [msg]
    assert c.pushed == [msg]


def test_pop_travels_bottom_to_top():
    a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
    ProtocolStack().build(a, b, c)
    msg = Message(b"up")
    c.pop(msg)
    assert b.popped == [msg]
    assert a.popped == [msg]


def test_insert_below_splices_transparently():
    a, c = Recorder("a"), Recorder("c")
    stack = ProtocolStack().build(a, c)
    spy = Recorder("spy")
    stack.insert_below("a", spy)
    msg = Message()
    a.push(msg)
    assert spy.pushed == [msg]
    assert c.pushed == [msg]


def test_insert_above():
    a, c = Recorder("a"), Recorder("c")
    stack = ProtocolStack().build(a, c)
    spy = Recorder("spy")
    stack.insert_above("c", spy)
    assert stack.layers()[1] is spy


def test_insert_below_missing_layer_raises():
    stack = ProtocolStack().build(Recorder("a"))
    with pytest.raises(KeyError):
        stack.insert_below("nope", Recorder("x"))


def test_duplicate_names_rejected():
    with pytest.raises(ValueError):
        ProtocolStack().build(Recorder("same"), Recorder("same"))


def test_remove_rejoins_neighbours():
    a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
    stack = ProtocolStack().build(a, b, c)
    stack.remove("b")
    msg = Message()
    a.push(msg)
    assert c.pushed == [msg]
    assert b.pushed == []


def test_top_bottom_accessors():
    a, b = Recorder("a"), Recorder("b")
    stack = ProtocolStack().build(a, b)
    assert stack.top is a
    assert stack.bottom is b
    assert "a" in stack
    assert "zz" not in stack
    assert len(stack) == 2


def test_empty_stack_top_raises():
    with pytest.raises(IndexError):
        ProtocolStack().top


def test_passthrough_counts():
    passthrough = PassthroughProtocol()
    ProtocolStack().build(Recorder("top"), passthrough, Recorder("bottom"))
    passthrough.push(Message())
    passthrough.pop(Message())
    assert passthrough.pushed_count == 1
    assert passthrough.popped_count == 1


class TestNodeAnchor:
    def setup_method(self):
        self.sched = Scheduler()
        self.net = Network(self.sched)
        self.n1 = self.net.add_node("n1", 1)
        self.n2 = self.net.add_node("n2", 2)

    def test_push_transmits_to_meta_dst(self):
        top2 = Recorder("top2")
        ProtocolStack().build(top2, NodeAnchor(self.n2))
        anchor1 = NodeAnchor(self.n1)
        ProtocolStack().build(Recorder("top1"), anchor1)
        msg = Message(b"payload", meta={"dst": 2})
        anchor1.push(msg)
        self.sched.run()
        assert len(top2.popped) == 1
        assert top2.popped[0].meta["src"] == 1

    def test_push_without_dst_raises(self):
        anchor = NodeAnchor(self.n1)
        with pytest.raises(ValueError):
            anchor.push(Message(b"lost"))

    def test_non_message_payload_wrapped(self):
        top = Recorder("top")
        anchor = NodeAnchor(self.n2)
        ProtocolStack().build(top, anchor)
        self.net.send(1, 2, b"raw bytes")
        self.sched.run()
        assert isinstance(top.popped[0], Message)
        assert top.popped[0].payload == b"raw bytes"
