"""The driver layer.

"The driver layer is responsible for generating messages and running the
test. ... most message generation [is done by the driver] so that data
structures in the target protocol will be updated correctly."

The PFI layer can forge stateless messages (a spurious ACK), but messages
that consume protocol state -- a TCP data segment with a real sequence
number -- must come from *above* the target protocol so the target updates
its own bookkeeping.  :class:`Driver` is that layer: it sits at the top of
a stack, originates application payloads on a schedule or on demand, and
records everything delivered up to it.

For protocols exposing a connection API rather than a push/pop interface
(our TCP), the experiment code uses :class:`AppSink`-style recording
against the protocol object directly; the Driver remains the generic
xkernel form.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


class Driver(Protocol):
    """Top-of-stack test driver: traffic source and delivery sink."""

    def __init__(self, name: str, scheduler: Scheduler, *,
                 trace: Optional[TraceRecorder] = None):
        super().__init__(name)
        self.scheduler = scheduler
        self.trace = trace
        self.received: List[Tuple[float, Message]] = []
        self.on_deliver: Optional[Callable[[Message], None]] = None
        self._consume = True
        self.backlog: List[Message] = []

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, payload: Any, **meta: Any) -> Message:
        """Originate one message immediately."""
        msg = payload if isinstance(payload, Message) else Message(payload)
        msg.meta.update(meta)
        self.send_down(msg)
        return msg

    def send_at(self, time: float, payload: Any, **meta: Any) -> None:
        """Originate one message at an absolute virtual time."""
        def fire() -> None:
            self.send(payload, **meta)
        self.scheduler.schedule_at(time, fire)

    def send_burst(self, payloads: List[Any], interval: float,
                   start_delay: float = 0.0) -> None:
        """Originate a list of messages spaced ``interval`` apart."""
        for i, payload in enumerate(payloads):
            self.scheduler.schedule(start_delay + i * interval, self.send, payload)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def pop(self, msg: Message) -> None:
        if not self._consume:
            self.backlog.append(msg)
            return
        self._deliver(msg)

    def _deliver(self, msg: Message) -> None:
        self.received.append((self.scheduler.now, msg))
        if self.trace is not None:
            self.trace.record("driver.deliver", t=self.scheduler.now,
                              node=self.name, uid=msg.uid)
        if self.on_deliver is not None:
            self.on_deliver(msg)

    def pause_consuming(self) -> None:
        """Stop accepting deliveries; they accumulate in a backlog.

        This is the driver-side trick behind the zero-window experiment:
        "the driver layer ... did not reset the receive buffer space inside
        the TCP layer", forcing the advertised window to zero.
        """
        self._consume = False

    def resume_consuming(self) -> None:
        """Accept deliveries again, draining the backlog in order."""
        self._consume = True
        backlog, self.backlog = self.backlog, []
        for msg in backlog:
            self._deliver(msg)

    @property
    def received_payloads(self) -> List[Any]:
        """Payloads of everything delivered, in delivery order."""
        return [msg.payload for _, msg in self.received]
