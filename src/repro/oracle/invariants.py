"""The trace-invariant engine.

The paper's second payoff -- "identification of specification
violations" -- is mechanized here: an :class:`Invariant` subscribes to
trace kinds (exact names or dotted prefixes), consumes every subscribed
entry in capture order, and yields structured :class:`Violation` objects.
:func:`evaluate` runs a whole pack of invariants in **one pass** over the
trace, dispatching each entry to its subscribers through a kind-keyed
table resolved against the recorder's per-kind index
(:meth:`~repro.netsim.trace.TraceRecorder.iter_subscribed`).

Invariants are stateful (they fold trace history per connection / per
node), so a pack is always a *factory* returning fresh instances --
``evaluate(trace, tcp_pack())`` -- never a shared list of singletons.

Violations are deterministic given a deterministic trace: messages must
never embed message ``uid`` values (those are process-global counters, see
:data:`repro.analysis.export.VOLATILE_ATTRS`); the uid travels in the
dedicated :attr:`Violation.uid` field and :meth:`Violation.fingerprint`
excludes it, which is what makes shrunk reproduction artifacts comparable
across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.netsim.trace import TraceEntry, TraceRecorder

#: tolerance for floating-point timer comparisons (RTO doubling, probe
#: cadence): virtual times are exact in the simulator, but derived
#: quantities like ``rto_for(shift)`` go through float multiplication
EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One specification violation found in a trace.

    ``uid`` is the lineage uid of the offending message when the trace
    entry carries one (PFI entries do; protocol entries identify
    themselves by ``conn``/``node``, surfaced as ``subject``).
    """

    code: str             # stable identifier, e.g. "TCP-STATE"
    message: str          # human-readable statement of what was violated
    time: float           # virtual time of the offending entry
    kind: str             # trace kind of the offending entry
    subject: str = ""     # connection name / node address the check keyed on
    uid: Optional[int] = None

    def fingerprint(self) -> Tuple[str, str, str, float, str]:
        """Identity for cross-process comparison.

        Excludes ``uid`` (a process-global counter that differs between
        otherwise byte-identical runs); everything else is deterministic
        for a deterministic trace.
        """
        return (self.code, self.subject, self.kind, self.time, self.message)

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        return (f"{self.code}{where} at t={self.time:.6f} "
                f"({self.kind}): {self.message}")


class Invariant:
    """Base class for one declarative trace invariant.

    Subclasses declare their subscription (``kinds`` for exact trace
    kinds, ``prefixes`` for dotted-prefix families), then implement
    :meth:`on_entry` -- called once per subscribed entry in capture order
    -- and optionally :meth:`finish` for end-of-trace checks.  Both may
    return an iterable of violations or ``None``.
    """

    #: stable violation code, e.g. "TCP-RTO-BACKOFF"
    code: str = "INV"
    #: one-line statement of the invariant (shows up in reports/docs)
    description: str = ""
    #: exact trace kinds this invariant consumes
    kinds: Tuple[str, ...] = ()
    #: dotted kind prefixes this invariant consumes ("tcp." etc.)
    prefixes: Tuple[str, ...] = ()

    def on_entry(self, entry: TraceEntry) -> Optional[Iterable[Violation]]:
        return None

    def finish(self) -> Optional[Iterable[Violation]]:
        return None

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------

    def violation(self, entry: TraceEntry, message: str, *,
                  subject: str = "", code: Optional[str] = None) -> Violation:
        """Build a violation anchored on ``entry``."""
        return Violation(code=code or self.code, message=message,
                         time=entry.time, kind=entry.kind,
                         subject=subject or _subject_of(entry),
                         uid=entry.get("uid"))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} code={self.code}>"


def _subject_of(entry: TraceEntry) -> str:
    """Default subject: the connection name or node address, if present."""
    conn = entry.get("conn")
    if conn is not None:
        return str(conn)
    node = entry.get("node")
    if node is not None:
        return str(node)
    return ""


@dataclass
class OracleReport:
    """The outcome of evaluating an invariant pack over one trace."""

    violations: List[Violation] = field(default_factory=list)
    invariant_codes: Tuple[str, ...] = ()
    entries_scanned: int = 0
    trace_entries: int = 0

    def ok(self) -> bool:
        return not self.violations

    def by_code(self) -> Dict[str, List[Violation]]:
        grouped: Dict[str, List[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.code, []).append(violation)
        return grouped

    def codes(self) -> Tuple[str, ...]:
        """Distinct violation codes, in first-occurrence order."""
        return tuple(self.by_code())

    def fingerprints(self) -> List[Tuple[str, str, str, float, str]]:
        return [violation.fingerprint() for violation in self.violations]

    def fill_metrics(self, registry, **labels: Any) -> None:
        """Absorb the verdict into a metrics registry.

        One ``oracle_violations`` counter per violation code plus the
        scan-volume gauges, so a campaign's conformance result lands in
        the same snapshot as its scheduler/trace series.
        """
        registry.gauge("oracle_entries_scanned", **labels).set(
            self.entries_scanned)
        registry.gauge("oracle_invariants", **labels).set(
            len(self.invariant_codes))
        for code, group in self.by_code().items():
            registry.counter("oracle_violations", code=code,
                             **labels).inc(len(group))

    def render(self) -> str:
        """Human-readable verdict block (used by ``repro report``)."""
        lines = [f"conformance: {len(self.invariant_codes)} invariant(s) "
                 f"over {self.entries_scanned}/{self.trace_entries} "
                 f"entries -> "
                 + ("OK" if self.ok() else
                    f"{len(self.violations)} violation(s)")]
        for code, group in sorted(self.by_code().items()):
            lines.append(f"  {code}: {len(group)}")
            for violation in group[:5]:
                lines.append(f"    {violation}")
            if len(group) > 5:
                lines.append(f"    ... {len(group) - 5} more")
        return "\n".join(lines)


def evaluate(trace: TraceRecorder,
             invariants: Iterable[Invariant]) -> OracleReport:
    """Run an invariant pack over a trace in one pass.

    Builds a kind -> subscribers dispatch table (prefix subscriptions are
    resolved against the kinds the trace actually recorded), walks the
    subscribed entries once in capture order, and collects every
    violation, ending with each invariant's :meth:`~Invariant.finish`.
    """
    pack = list(invariants)
    recorded = trace.count_by_kind()
    dispatch: Dict[str, List[Invariant]] = {}
    for invariant in pack:
        subscribed = set(invariant.kinds)
        for prefix in invariant.prefixes:
            subscribed.update(kind for kind in recorded
                              if kind.startswith(prefix))
        for kind in subscribed:
            dispatch.setdefault(kind, []).append(invariant)

    violations: List[Violation] = []
    scanned = 0
    for entry in trace.iter_subscribed(dispatch):
        scanned += 1
        for invariant in dispatch[entry.kind]:
            found = invariant.on_entry(entry)
            if found:
                violations.extend(found)
    for invariant in pack:
        found = invariant.finish()
        if found:
            violations.extend(found)
    return OracleReport(violations=violations,
                        invariant_codes=tuple(inv.code for inv in pack),
                        entries_scanned=scanned,
                        trace_entries=len(trace))


def describe(invariants: Iterable[Invariant]) -> Iterator[Tuple[str, str]]:
    """``(code, description)`` pairs for a pack (docs/CLI listings)."""
    for invariant in invariants:
        yield invariant.code, invariant.description
