"""repro.obs: the unified observability layer.

The paper derives every result from monitoring -- "each packet was logged
with a timestamp by the receive filter script" is the entire evidence
pipeline -- and this package is that pipeline grown up.  It threads four
capabilities through every layer of the toolchain:

- :mod:`~repro.obs.metrics` -- a labelled counter/gauge/histogram
  registry that supersedes the bare ``stats`` dicts on ``PFILayer``,
  ``Interp`` and ``Scheduler``; snapshotable per run and mergeable
  across campaign workers;
- :mod:`~repro.obs.lineage` -- causal parent->child message derivation
  reconstructed from a trace (duplicates, injections, retransmits), so
  "where did this packet come from?" has an answer;
- :mod:`~repro.obs.profiler` -- an opt-in tclish script profiler
  reporting per-command and per-script wall time, hooked into the
  compiled execution path;
- :mod:`~repro.obs.telemetry` -- per-configuration campaign timing
  (wall/virtual-time ratio, event counts) rendered as a scorecard;
- :mod:`~repro.obs.chrometrace` / :mod:`~repro.obs.report` -- exporters:
  Chrome-trace/Perfetto JSON and the ``repro report`` text rendering.

Everything here is read-side or explicitly opt-in: with no trace bound
and no profiler attached the instrumented hot paths stay guard-only
(one ``is not None`` test, no allocation).
"""

from repro.obs.chrometrace import chrome_trace, dump_chrome_trace
from repro.obs.lineage import Lineage, LineageNode
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import ScriptProfiler
from repro.obs.report import render_report
from repro.obs.telemetry import RunTelemetry, render_scorecard

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Lineage",
    "LineageNode",
    "MetricsRegistry",
    "RunTelemetry",
    "ScriptProfiler",
    "chrome_trace",
    "dump_chrome_trace",
    "render_report",
    "render_scorecard",
]
