"""Failure-model fault injectors (paper §2.2).

Each factory below builds a filter script (or filter pair) that makes a
protocol participant misbehave according to one of the classic distributed
failure models.  The models, in the paper's order of increasing severity:

1. **process crash** -- halt prematurely, then do nothing;
2. **link crash** -- a link stops transporting messages (no corruption);
3. **send omission** -- intermittently omit sends;
4. **receive omission** -- intermittently omit receives;
5. **general omission** -- send and/or receive omission;
6. **timing/performance** -- violate timing bounds (too slow or too fast);
7. **arbitrary/byzantine** -- anything: spurious messages, corruption,
   reordering, false claims.

The severity lattice ("Model B is more severe than model A if the set of
faulty behavior allowed by A is a proper subset allowed by B") is encoded
in :data:`SEVERITY_ORDER` / :func:`is_at_least_as_severe` and
property-tested in ``tests/core/test_faults.py``.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Tuple

from repro.core.context import ScriptContext
from repro.core.script import PythonFilter


class FailureModel(enum.Enum):
    """The failure models of paper §2.2."""

    PROCESS_CRASH = "process_crash"
    LINK_CRASH = "link_crash"
    SEND_OMISSION = "send_omission"
    RECEIVE_OMISSION = "receive_omission"
    GENERAL_OMISSION = "general_omission"
    TIMING = "timing"
    BYZANTINE = "byzantine"


#: Total severity order, least to most severe (the paper presents the
#: models "in the order of severity").
SEVERITY_ORDER = (
    FailureModel.PROCESS_CRASH,
    FailureModel.LINK_CRASH,
    FailureModel.SEND_OMISSION,
    FailureModel.RECEIVE_OMISSION,
    FailureModel.GENERAL_OMISSION,
    FailureModel.TIMING,
    FailureModel.BYZANTINE,
)

#: Strict subset relations between behaviour sets: each model maps to the
#: models whose faulty behaviours it includes.  Tolerating the superset
#: model implies tolerating every model it covers.
COVERS: Dict[FailureModel, Tuple[FailureModel, ...]] = {
    FailureModel.PROCESS_CRASH: (),
    FailureModel.LINK_CRASH: (),
    FailureModel.SEND_OMISSION: (FailureModel.PROCESS_CRASH,),
    FailureModel.RECEIVE_OMISSION: (FailureModel.PROCESS_CRASH,),
    FailureModel.GENERAL_OMISSION: (
        FailureModel.SEND_OMISSION, FailureModel.RECEIVE_OMISSION,
        FailureModel.LINK_CRASH, FailureModel.PROCESS_CRASH),
    FailureModel.TIMING: (
        FailureModel.GENERAL_OMISSION, FailureModel.SEND_OMISSION,
        FailureModel.RECEIVE_OMISSION, FailureModel.LINK_CRASH,
        FailureModel.PROCESS_CRASH),
    FailureModel.BYZANTINE: (
        FailureModel.TIMING, FailureModel.GENERAL_OMISSION,
        FailureModel.SEND_OMISSION, FailureModel.RECEIVE_OMISSION,
        FailureModel.LINK_CRASH, FailureModel.PROCESS_CRASH),
}


def is_at_least_as_severe(a: FailureModel, b: FailureModel) -> bool:
    """True if model ``a`` covers all the faulty behaviours of ``b``."""
    return a == b or b in COVERS[a]


def tolerance_implied(tolerated: FailureModel) -> Tuple[FailureModel, ...]:
    """Models a protocol provably tolerates given it tolerates ``tolerated``.

    "A protocol implementation that tolerates failures of type B also
    tolerates those of type A" when A's behaviours are a subset of B's.
    """
    return (tolerated,) + COVERS[tolerated]


# ----------------------------------------------------------------------
# fault factories
# ----------------------------------------------------------------------

Predicate = Callable[[ScriptContext], bool]


def _always(_ctx: ScriptContext) -> bool:
    return True


def crash_after(n_messages: int = 0, *,
                when: Optional[Predicate] = None) -> PythonFilter:
    """Process/link crash: behave correctly, then drop everything forever.

    The crash trips after ``n_messages`` have passed (or when the optional
    predicate first holds), matching "before stopping, however, it behaves
    correctly".
    """
    def fn(ctx: ScriptContext) -> None:
        if ctx.state.get("crashed"):
            ctx.drop()
            return
        seen = ctx.state.get("seen", 0) + 1
        ctx.state["seen"] = seen
        triggered = (when(ctx) if when is not None else seen > n_messages)
        if triggered:
            ctx.state["crashed"] = True
            ctx.drop()
    return PythonFilter(fn, name=f"crash_after_{n_messages}")


def crash_at(time: float) -> PythonFilter:
    """Crash at a fixed virtual time instead of a message count."""
    def fn(ctx: ScriptContext) -> None:
        if ctx.now >= time:
            ctx.drop()
    return PythonFilter(fn, name=f"crash_at_{time}")


def send_omission(p: float) -> PythonFilter:
    """Send omission: each outgoing message is dropped with probability p.

    Install as a **send filter**.
    """
    def fn(ctx: ScriptContext) -> None:
        if ctx.dist.chance(p):
            ctx.drop()
    return PythonFilter(fn, name=f"send_omission_{p}")


def receive_omission(p: float) -> PythonFilter:
    """Receive omission: each incoming message dropped with probability p.

    Install as a **receive filter**.
    """
    def fn(ctx: ScriptContext) -> None:
        if ctx.dist.chance(p):
            ctx.drop()
    return PythonFilter(fn, name=f"receive_omission_{p}")


def general_omission(p_send: float, p_receive: float) -> Tuple[PythonFilter, PythonFilter]:
    """General omission: a (send_filter, receive_filter) pair."""
    return send_omission(p_send), receive_omission(p_receive)


def timing_failure(delay: float = 0.0, *,
                   jitter_var: float = 0.0,
                   when: Optional[Predicate] = None) -> PythonFilter:
    """Timing failure: messages are transported slower than specified.

    Adds ``delay`` (plus an optional normal jitter) to each message for
    which ``when`` holds (all messages by default).
    """
    def fn(ctx: ScriptContext) -> None:
        if when is not None and not when(ctx):
            return
        extra = delay
        if jitter_var > 0:
            extra = max(0.0, extra + ctx.dist.dst_normal(0.0, jitter_var))
        if extra > 0:
            ctx.delay(extra)
    return PythonFilter(fn, name=f"timing_{delay}s")


def byzantine_corruption(mutate: Callable[[ScriptContext], None], *,
                         p: float = 1.0) -> PythonFilter:
    """Byzantine fault: arbitrarily modify message content.

    ``mutate(ctx)`` performs the corruption (usually via
    ``ctx.set_field``); it runs on each message with probability ``p``.
    """
    def fn(ctx: ScriptContext) -> None:
        if p >= 1.0 or ctx.dist.chance(p):
            mutate(ctx)
    return PythonFilter(fn, name="byzantine_corruption")


def byzantine_spurious(type_name: str, *, every_n: int = 1,
                       direction: Optional[str] = None,
                       **fields) -> PythonFilter:
    """Byzantine fault: generate spurious messages of a stub type.

    Injects one generated message per ``every_n`` intercepted messages.
    """
    def fn(ctx: ScriptContext) -> None:
        count = ctx.state.get("count", 0) + 1
        ctx.state["count"] = count
        if count % every_n == 0:
            ctx.inject(type_name, direction=direction, **fields)
    return PythonFilter(fn, name=f"byzantine_spurious_{type_name}")


def byzantine_reorder(window: int = 2) -> PythonFilter:
    """Byzantine fault: reorder messages by holding then releasing batches.

    Every ``window`` messages, the held batch is released after the newest
    message, inverting arrival order pairwise.
    """
    if window < 2:
        raise ValueError("reorder window must be >= 2")

    def fn(ctx: ScriptContext) -> None:
        pending = ctx.state.get("pending", 0)
        if pending < window - 1:
            ctx.state["pending"] = pending + 1
            ctx.hold("reorder")
        else:
            ctx.state["pending"] = 0
            ctx.release("reorder", delay=0.0)
            # current message passes immediately; held ones follow, so the
            # receiver observes the last-sent message first
    return PythonFilter(fn, name=f"byzantine_reorder_{window}")


def drop_by_type(*type_names: str) -> PythonFilter:
    """Deterministic filter dropping every message of the given types."""
    wanted = set(type_names)

    def fn(ctx: ScriptContext) -> None:
        if ctx.msg_type() in wanted:
            ctx.drop()
    return PythonFilter(fn, name=f"drop_{'_'.join(sorted(wanted))}")


def delay_by_type(seconds: float, *type_names: str) -> PythonFilter:
    """Deterministic filter delaying every message of the given types."""
    wanted = set(type_names)

    def fn(ctx: ScriptContext) -> None:
        if ctx.msg_type() in wanted:
            ctx.delay(seconds)
    return PythonFilter(fn, name=f"delay_{seconds}s")
