"""The shared result store: ``RunCache`` promoted to a fabric-wide sink.

A :class:`ResultStore` is a :class:`~repro.core.orchestrator.RunCache`
directory that many processes -- fabric workers, the coordinator, and
plain in-process ``Campaign.run(cache=...)`` sweeps -- read and write
concurrently.  Content addressing does the heavy lifting: a key fully
determines its value (the body's bytecode, seed, config and options are
all hashed in), so two workers racing to store the same key write
byte-identical pickles and either winner is correct.  The store only has
to make each write atomic and collision-free, which it does with
per-writer temp names and ``os.replace``.

Resume semantics fall out for free: a completed row exists under its
key, an incomplete one does not.  The coordinator derives a sweep's
remaining work by probing :meth:`has` for every configuration -- no
progress ledger to keep consistent, no way for a SIGKILL to leave the
store claiming work it does not hold.
"""

from __future__ import annotations

import itertools
import os
import pickle
from pathlib import Path
from typing import List, Union

from repro.core.orchestrator import RunCache, RunResult


class ResultStore(RunCache):
    """A multi-writer, crash-safe, content-addressed result directory."""

    def __init__(self, root: Union[str, Path]):
        super().__init__(root)
        # distinct temp names per writer *and* per write: concurrent
        # workers (and a worker respawned with a recycled pid) can never
        # clobber each other's in-flight temp file
        self._tmp_seq = itertools.count()

    def has(self, key: str) -> bool:
        """True when a completed result exists (no hit/miss accounting)."""
        return self._path(key).exists()

    def put(self, key: str, result: RunResult) -> bool:
        """Store one result; atomic and safe against concurrent writers."""
        try:
            blob = pickle.dumps(result)
        except Exception:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(self._tmp_seq)}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return True

    def missing(self, keys: List[str]) -> List[int]:
        """Indices of ``keys`` with no stored result (the sweep's todo)."""
        return [index for index, key in enumerate(keys)
                if not self.has(key)]

    def load_all(self, keys: List[str]) -> List[RunResult]:
        """Every key's result, in order; raises if any is missing.

        The coordinator calls this only after the lease board reports
        every shard done, so a miss here means a worker acknowledged a
        shard without having persisted all its rows -- corruption worth
        failing loudly on, not papering over.
        """
        results = []
        for index, key in enumerate(keys):
            result = self.get(key)
            if result is None:
                raise RuntimeError(
                    f"result store {self.root} is missing row {index} "
                    f"(key {key[:12]}...) after all shards completed")
            results.append(result)
        return results
