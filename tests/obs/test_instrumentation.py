"""Instrumentation threaded through the layers: PFI registry, scheduler
and interpreter gauges, protocol retransmit lineage edges."""

from repro.core.pfi import PFILayer
from repro.core.tclish import Interp
from repro.obs.lineage import Lineage
from repro.obs.metrics import MetricsRegistry

from tests.core.conftest import simple_stubs


class TestPFIMetrics:
    def test_stats_property_mirrors_registry(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.drop())
        harness.send_down("DATA")
        assert harness.pfi.stats["dropped"] == 1
        assert harness.pfi.stats["send_seen"] == 1
        counter = harness.pfi.metrics.counter("pfi_dropped",
                                              node="testnode")
        assert counter.value == 1

    def test_shared_registry_aggregates_layers(self, harness):
        shared = MetricsRegistry()
        pfi_a = PFILayer("a", harness.env.scheduler, simple_stubs(),
                         node="m1", metrics=shared)
        pfi_b = PFILayer("b", harness.env.scheduler, simple_stubs(),
                         node="m2", metrics=shared)
        assert pfi_a.metrics is pfi_b.metrics
        snap = shared.snapshot()
        assert "pfi_dropped{node=m1}" in snap
        assert "pfi_dropped{node=m2}" in snap

    def test_release_entries_carry_queue_position(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.hold("q"))
        harness.send_down("DATA")
        harness.send_down("DATA")
        harness.pfi.set_send_filter(lambda ctx: ctx.release("q"))
        harness.send_down("DATA")
        releases = harness.env.trace.entries("pfi.release")
        assert [e["position"] for e in releases] == [0, 1]


class TestSubsystemGauges:
    def test_scheduler_fill_metrics(self, harness):
        harness.env.scheduler.schedule(1.0, lambda: None)
        harness.run(2.0)
        registry = MetricsRegistry()
        harness.env.scheduler.fill_metrics(registry, node="m1")
        snap = registry.snapshot()
        assert snap["scheduler_now_s{node=m1}"] == 2.0
        assert snap["scheduler_dispatched{node=m1}"] == 1
        assert snap["scheduler_pending{node=m1}"] == 0

    def test_interp_fill_metrics(self):
        interp = Interp()
        interp.eval("set x 1")
        interp.eval("set x 1")
        registry = MetricsRegistry()
        interp.fill_metrics(registry, filter="send")
        snap = registry.snapshot()
        assert snap["tclish_eval_count{filter=send}"] == 2
        assert snap["tclish_cache_hits{filter=send}"] >= 1


class TestProtocolLineage:
    def test_tcp_retransmission_records_lineage_edge(self):
        from repro.experiments.tcp_common import (build_tcp_testbed,
                                                  open_connection,
                                                  stream_from_vendor)
        from repro.tcp.vendors import VENDORS
        testbed = build_tcp_testbed(VENDORS["SunOS 4.1.3"])
        client, _server = open_connection(testbed)
        # drop everything reaching the x-kernel side: every data segment
        # the vendor sends will be retransmitted
        testbed.pfi.set_receive_filter(lambda ctx: ctx.drop())
        stream_from_vendor(testbed, client, segments=1, interval=0.5)
        testbed.env.run_until(30.0)
        edges = testbed.trace.entries("tcp.lineage")
        assert edges, "expected retransmissions to record lineage edges"
        lineage = Lineage.from_trace(testbed.trace)
        first = edges[0]
        assert first["relation"] == "retransmit"
        assert lineage.parent_of(first["uid"]) == (first["parent"],
                                                   "retransmit")
        # every retransmission of the same range chains to one root
        roots = {lineage.root_of(e["uid"]) for e in edges
                 if e["conn"] == first["conn"] and e["seq"] == first["seq"]}
        assert len(roots) == 1

    def test_reliable_channel_retransmit_edge(self):
        from repro.gmp.reliable import ReliableChannel
        from repro.netsim.scheduler import Scheduler
        from repro.netsim.trace import TraceRecorder
        from repro.xkernel.message import Message
        from repro.xkernel.protocol import Protocol
        from repro.xkernel.stack import ProtocolStack

        scheduler = Scheduler()
        trace = TraceRecorder(clock=lambda: scheduler.now)

        class Sink(Protocol):
            def __init__(self):
                super().__init__("sink")

            def push(self, msg):
                pass  # never ACKs -> the channel keeps retrying

        channel = ReliableChannel(1, scheduler, trace=trace)
        ProtocolStack().build(channel, Sink())
        msg = Message(payload=b"x")
        msg.meta["dst"] = 2
        channel.push(msg)
        scheduler.run_until(10.0)
        retries = trace.entries("rel.retransmit")
        assert retries
        lineage = Lineage.from_trace(trace)
        for entry in retries:
            assert lineage.parent_of(entry["uid"]) == (entry["parent"],
                                                       "retransmit")
