"""Metrics registry: get-or-create, labels, snapshots, merging."""

import pickle

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestGetOrCreate:
    def test_same_name_and_labels_share_one_counter(self):
        registry = MetricsRegistry()
        a = registry.counter("pfi_dropped", node="m1")
        b = registry.counter("pfi_dropped", node="m1")
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", node="m1", direction="send")
        b = registry.counter("x", direction="send", node="m1")
        assert a is b

    def test_different_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("pfi_dropped", node="m1")
        b = registry.counter("pfi_dropped", node="m2")
        assert a is not b
        a.inc(3)
        assert b.value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", node="m1")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x", node="m1")


class TestValues:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_sets(self):
        gauge = Gauge("g")
        gauge.set(7.5)
        gauge.set(2)
        assert gauge.value == 2

    def test_histogram_summary(self):
        hist = Histogram("h")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0


class TestSnapshot:
    def test_snapshot_keys_carry_labels(self):
        registry = MetricsRegistry()
        registry.counter("pfi_dropped", node="m1").inc(2)
        registry.gauge("now").set(1.5)
        snap = registry.snapshot()
        assert snap["pfi_dropped{node=m1}"] == 2
        assert snap["now"] == 1.5

    def test_histogram_snapshot_is_summary_dict(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.25)
        snap = registry.snapshot()["lat"]
        assert snap == {"count": 1, "total": 0.25, "mean": 0.25,
                        "min": 0.25, "max": 0.25}

    def test_render_is_prefix_filterable(self):
        registry = MetricsRegistry()
        registry.counter("pfi_dropped", node="m1").inc()
        registry.gauge("scheduler_now_s").set(3.0)
        text = registry.render(prefix="pfi_")
        assert "pfi_dropped{node=m1}" in text
        assert "scheduler_now_s" not in text


class TestMerge:
    def test_counters_add_and_gauges_overwrite(self):
        ours = MetricsRegistry()
        ours.counter("c", node="m1").inc(2)
        ours.gauge("g").set(1)
        theirs = MetricsRegistry()
        theirs.counter("c", node="m1").inc(5)
        theirs.gauge("g").set(9)
        ours.merge(theirs)
        assert ours.counter("c", node="m1").value == 7
        assert ours.gauge("g").value == 9

    def test_merge_creates_missing_series(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        theirs.counter("only_there", node="m2").inc(3)
        ours.merge(theirs)
        assert ours.counter("only_there", node="m2").value == 3
        # the merged-in metric is a clone, not a shared object
        theirs.counter("only_there", node="m2").inc()
        assert ours.counter("only_there", node="m2").value == 3

    def test_histograms_merge_bounds(self):
        ours = MetricsRegistry()
        ours.histogram("h").observe(2.0)
        theirs = MetricsRegistry()
        theirs.histogram("h").observe(10.0)
        ours.merge(theirs)
        hist = ours.histogram("h")
        assert hist.count == 2
        assert (hist.min, hist.max) == (2.0, 10.0)

    def test_merge_kind_conflict_raises(self):
        ours = MetricsRegistry()
        ours.counter("x")
        theirs = MetricsRegistry()
        theirs.gauge("x")
        with pytest.raises(TypeError, match="cannot merge"):
            ours.merge(theirs)

    def test_registry_pickles_across_processes(self):
        # campaign workers ship their registries back pickled
        registry = MetricsRegistry()
        registry.counter("c", node="w0").inc(4)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
