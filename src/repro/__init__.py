"""repro: script-driven probing and fault injection of protocol implementations.

A full reproduction of Dawson & Jahanian, "Probing and Fault Injection of
Protocol Implementations" (ICDCS 1995): the PFI tool, an x-Kernel-style
protocol stack, a deterministic network simulator, a from-scratch TCP with
four vendor behaviour profiles, a strong group membership protocol with its
historical bugs, and the experiment harness that regenerates every table
and figure in the paper's evaluation.

Quick tour::

    from repro.core import PFILayer, PythonFilter, make_env
    from repro.tcp import TCPConnection, VENDORS
    from repro.gmp import Daemon, BugFlags

See ``examples/quickstart.py`` and README.md.
"""

__version__ = "1.0.0"
