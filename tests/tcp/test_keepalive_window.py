"""Unit tests for the keep-alive engine and persist prober."""

import pytest

from repro.netsim.scheduler import Scheduler
from repro.netsim.trace import TraceRecorder
from repro.tcp.keepalive import KeepAliveEngine
from repro.tcp.vendors import SOLARIS_23, SUNOS_413
from repro.tcp.window import PersistProber


def make_keepalive(profile=SUNOS_413):
    sched = Scheduler()
    trace = TraceRecorder(clock=lambda: sched.now)
    probes = []
    deaths = []
    engine = KeepAliveEngine(sched, profile,
                             send_probe=lambda: probes.append(sched.now),
                             on_dead=lambda: deaths.append(sched.now),
                             trace=trace, name="ka")
    return sched, engine, probes, deaths


class TestKeepAliveEngine:
    def test_disabled_by_default(self):
        sched, engine, probes, _ = make_keepalive()
        sched.run_until(20_000.0)
        assert probes == []

    def test_first_probe_at_idle_threshold(self):
        sched, engine, probes, _ = make_keepalive()
        engine.enable()
        sched.run_until(SUNOS_413.ka_idle + 1)
        assert len(probes) == 1
        assert probes[0] == pytest.approx(SUNOS_413.ka_idle)

    def test_traffic_resets_idle_clock(self):
        sched, engine, probes, _ = make_keepalive()
        engine.enable()
        sched.run_until(4000.0)
        engine.on_segment_received()
        sched.run_until(SUNOS_413.ka_idle + 1)
        assert probes == []  # the idle clock restarted at t=4000
        sched.run_until(4000.0 + SUNOS_413.ka_idle + 1)
        assert len(probes) == 1

    def test_bsd_unanswered_probe_schedule(self):
        sched, engine, probes, deaths = make_keepalive(SUNOS_413)
        engine.enable()
        sched.run_until(SUNOS_413.ka_idle + 10 * 75.0)
        # 1 initial + 8 retransmissions at fixed 75 s intervals
        assert len(probes) == 1 + SUNOS_413.ka_probe_retransmits
        intervals = [b - a for a, b in zip(probes, probes[1:])]
        assert all(i == pytest.approx(75.0) for i in intervals)
        assert len(deaths) == 1

    def test_solaris_backoff_schedule(self):
        sched, engine, probes, deaths = make_keepalive(SOLARIS_23)
        engine.enable()
        sched.run_until(SOLARIS_23.ka_idle + 200.0)
        assert len(probes) == 1 + SOLARIS_23.ka_probe_retransmits
        intervals = [b - a for a, b in zip(probes, probes[1:])]
        for prev, cur in zip(intervals, intervals[1:]):
            assert cur >= prev * 1.5  # exponential backoff
        assert len(deaths) == 1

    def test_answered_probes_repeat_at_idle_interval(self):
        sched, engine, probes, deaths = make_keepalive()
        engine.enable()
        for _ in range(3):
            sched.run_until(sched.now + SUNOS_413.ka_idle + 1)
            engine.on_segment_received()  # the probe's ACK came back
        assert len(probes) == 3
        assert deaths == []

    def test_disable_cancels(self):
        sched, engine, probes, _ = make_keepalive()
        engine.enable()
        engine.disable()
        sched.run_until(20_000.0)
        assert probes == []


def make_prober(profile=SUNOS_413):
    sched = Scheduler()
    trace = TraceRecorder(clock=lambda: sched.now)
    probes = []
    prober = PersistProber(sched, profile,
                           send_probe=lambda: probes.append(sched.now),
                           trace=trace, name="persist")
    return sched, prober, probes


class TestPersistProber:
    def test_inactive_until_started(self):
        sched, prober, probes = make_prober()
        sched.run_until(1000.0)
        assert probes == []

    def test_backoff_to_cap(self):
        sched, prober, probes = make_prober(SUNOS_413)
        prober.start()
        sched.run_until(600.0)
        intervals = [b - a for a, b in zip(probes, probes[1:])]
        assert max(intervals) == pytest.approx(SUNOS_413.persist_max)
        # doubling until the cap
        for prev, cur in zip(intervals, intervals[1:]):
            assert cur == pytest.approx(min(prev * 2, SUNOS_413.persist_max))

    def test_solaris_caps_at_56(self):
        sched, prober, probes = make_prober(SOLARIS_23)
        prober.start()
        sched.run_until(600.0)
        intervals = [b - a for a, b in zip(probes, probes[1:])]
        assert max(intervals) == pytest.approx(56.0)

    def test_never_gives_up(self):
        sched, prober, probes = make_prober()
        prober.start()
        sched.run_until(100_000.0)
        assert prober.active
        assert len(probes) > 1000 / 60

    def test_stop_halts_probing(self):
        sched, prober, probes = make_prober()
        prober.start()
        sched.run_until(100.0)
        count = len(probes)
        prober.stop()
        sched.run_until(10_000.0)
        assert len(probes) == count

    def test_restart_resets_backoff(self):
        sched, prober, probes = make_prober()
        prober.start()
        sched.run_until(500.0)
        prober.stop()
        probes.clear()
        prober.start()
        sched.run_until(sched.now + SUNOS_413.persist_initial + 0.1)
        assert len(probes) == 1

    def test_start_idempotent(self):
        sched, prober, probes = make_prober()
        prober.start()
        prober.start()
        sched.run_until(SUNOS_413.persist_initial + 0.1)
        assert len(probes) == 1
