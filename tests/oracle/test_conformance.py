"""No-false-positive conformance suite.

Every stock experiment module exports ``invariants()`` and
``conformance_runs(seed)``; under the full packs each representative
trace must be violation-free.  This is the anchor that keeps the oracle
honest: a new invariant that flags conformant behaviour fails here
before it can pollute fuzzing verdicts, and the fuzzer's premise -- that
its targets are clean at rest -- is pinned by the same runs.
"""

import pytest

from repro.experiments import (gmp_packet_interruption, gmp_partition,
                               gmp_proclaim, gmp_timer, tcp_delayed_ack,
                               tcp_keepalive, tcp_reordering,
                               tcp_retransmission, tcp_zero_window)
from repro.oracle import check_module

MODULES = [tcp_retransmission, tcp_delayed_ack, tcp_keepalive,
           tcp_zero_window, tcp_reordering, gmp_packet_interruption,
           gmp_partition, gmp_proclaim, gmp_timer]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__.rsplit(".", 1)[-1]
                              for m in MODULES])
def test_stock_experiments_are_conformant(module):
    labels = []
    for label, report in check_module(module, seed=0):
        labels.append(label)
        assert report.ok(), (
            f"{label}: {len(report.violations)} violation(s):\n"
            + "\n".join(str(v) for v in report.violations[:10]))
        assert report.entries_scanned > 0, (
            f"{label}: oracle saw no subscribed entries -- the pack is "
            f"not actually checking this trace")
    assert labels, f"{module.__name__} yielded no conformance runs"


def test_conformance_runs_are_distinctly_labelled():
    seen = set()
    for module in MODULES:
        for label, _trace in module.conformance_runs(0):
            assert label not in seen, f"duplicate label {label}"
            seen.add(label)
