"""Pass 2 (SC1xx determinism linter): every code against seeded sources.

The mutation tests at the bottom are the acceptance-criteria ones: a
clean template plus one seeded violation must yield exactly the
expected diagnostic, nothing else.
"""

import textwrap

import pytest

from repro.staticcheck import check_source, precheck_body
from repro.staticcheck.determinism import audit_pending


def codes(report):
    return [d.code for d in report.sorted()]


def check(source):
    return check_source(textwrap.dedent(source), source_name="t.py")


class TestSC101Closures:
    def test_lambda_scheduled(self):
        report = check("""
            def body(env):
                env.scheduler.schedule(1.0, lambda: None)
        """)
        assert codes(report) == ["SC101"]

    def test_nested_closure_scheduled(self):
        report = check("""
            def body(env, config):
                state = {}
                def tick():
                    state["x"] = config["y"]
                env.scheduler.schedule(1.0, tick)
        """)
        d = report.sorted()[0]
        assert d.code == "SC101"
        assert "tick" in d.message and "captures" in d.message

    def test_schedule_at_and_timer_register_covered(self):
        report = check("""
            def body(env, timers):
                env.scheduler.schedule_at(2.0, lambda: None)
                timers.register("hb", 1, 0.5, lambda: None)
        """)
        assert codes(report) == ["SC101", "SC101"]

    def test_bound_method_is_clean(self):
        report = check("""
            def body(env, daemon):
                env.scheduler.schedule(1.0, daemon.start)
        """)
        assert report.ok(severity="info")

    def test_nested_function_without_free_names_is_clean(self):
        report = check("""
            def body(env):
                def noop():
                    return 1
                env.scheduler.schedule(1.0, noop)
        """)
        assert "SC101" not in codes(report)

    def test_callable_class_is_clean(self):
        report = check("""
            class Ticker:
                def __call__(self):
                    pass
            def body(env):
                env.scheduler.schedule(0.0, Ticker())
        """)
        assert report.ok(severity="info")


class TestSC102Defaults:
    def test_mutable_default_on_scheduled_function(self):
        report = check("""
            def cb(bucket=[]):
                bucket.append(1)
            def body(env):
                env.scheduler.schedule(1.0, cb)
        """)
        assert codes(report) == ["SC102"]

    def test_atomic_defaults_are_clean(self):
        report = check("""
            def cb(n=0, label="x", ratio=-1.5, flag=None):
                return n
            def body(env):
                env.scheduler.schedule(1.0, cb)
        """)
        assert report.ok(severity="info")


class TestSC103WallClock:
    def test_time_time(self):
        report = check("""
            import time
            def body(env):
                return time.time()
        """)
        assert codes(report) == ["SC103"]

    def test_from_import_perf_counter(self):
        report = check("""
            from time import perf_counter
            def body(env):
                return perf_counter()
        """)
        assert codes(report) == ["SC103"]

    def test_datetime_now(self):
        report = check("""
            import datetime
            def body(env):
                return datetime.datetime.now()
        """)
        assert codes(report) == ["SC103"]

    def test_virtual_clock_is_clean(self):
        report = check("""
            def body(env):
                return env.scheduler.now
        """)
        assert report.ok(severity="info")


class TestSC104Random:
    def test_module_level_random(self):
        report = check("""
            import random
            def body(env):
                return random.random()
        """)
        assert codes(report) == ["SC104"]

    def test_seeded_instance_is_clean(self):
        report = check("""
            import random
            def body(env, seed):
                rng = random.Random(seed)
                return rng.random()
        """)
        assert report.ok(severity="info")

    def test_from_import_choice(self):
        report = check("""
            from random import choice
            def body(env, items):
                return choice(items)
        """)
        assert codes(report) == ["SC104"]


class TestSC105SetIteration:
    def test_set_call_feeding_trace(self):
        report = check("""
            def body(trace, items):
                for item in set(items):
                    trace.record("x.y", item=item)
        """)
        assert codes(report) == ["SC105"]

    def test_set_typed_local(self):
        report = check("""
            def body(trace):
                peers = {1, 2, 3}
                for peer in peers:
                    trace.record("x.y", peer=peer)
        """)
        assert codes(report) == ["SC105"]

    def test_set_typed_self_attribute(self):
        report = check("""
            class Daemon:
                def __init__(self):
                    self.suspected = set()
                def sweep(self):
                    for peer in self.suspected:
                        self._record("gmp.x", peer=peer)
        """)
        assert codes(report) == ["SC105"]

    def test_sorted_iteration_is_clean(self):
        report = check("""
            def body(trace, items):
                for item in sorted(set(items)):
                    trace.record("x.y", item=item)
        """)
        assert report.ok(severity="info")

    def test_set_iteration_without_trace_is_clean(self):
        report = check("""
            def body(items):
                total = 0
                for item in set(items):
                    total += item
                return total
        """)
        assert report.ok(severity="info")


class TestSC106IdInHash:
    def test_id_in_hash(self):
        report = check("""
            def body(obj):
                return hash(id(obj))
        """)
        assert codes(report) == ["SC106"]

    def test_id_in_digest_update(self):
        report = check("""
            import hashlib
            def body(obj):
                digest = hashlib.sha256()
                digest.update(str(id(obj)).encode())
                return digest.hexdigest()
        """)
        assert codes(report) == ["SC106"]

    def test_id_in_fingerprint_function(self):
        report = check("""
            def fingerprint(world):
                return str(id(world))
        """)
        assert codes(report) == ["SC106"]

    def test_plain_id_elsewhere_is_clean(self):
        report = check("""
            def body(a, b):
                return id(a) == id(b)
        """)
        assert report.ok(severity="info")


class TestSyntaxAndShape:
    def test_python_syntax_error_is_sl000(self):
        report = check("def broken(:\n    pass")
        assert codes(report) == ["SL000"]

    def test_positions_are_one_based(self):
        report = check("""
            import time
            def body(env):
                return time.time()
        """)
        d = report.sorted()[0]
        assert d.line == 4
        assert d.col >= 1


class TestPrecheckBody:
    def test_real_fuzz_body_is_clean(self):
        # run_fuzz uses perf_counter in the same module; the reachable
        # set of fuzz_body must not include it
        from repro.oracle.fuzz import fuzz_body
        assert len(precheck_body(fuzz_body)) == 0

    def test_reachability_excludes_unrelated_functions(self, tmp_path):
        module = tmp_path / "bodymod.py"
        module.write_text(textwrap.dedent("""
            import time
            def helper(env):
                return env.scheduler.now
            def clean_body(env, config):
                return helper(env)
            def dirty_driver():
                return time.time()
        """))
        import importlib.util
        spec = importlib.util.spec_from_file_location("bodymod", module)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert len(precheck_body(mod.clean_body)) == 0
        report = precheck_body(mod.dirty_driver)
        assert codes(report) == ["SC103"]

    def test_unresolvable_bodies_are_skipped(self):
        assert len(precheck_body(lambda env, config: None)) == 0


class TestCampaignPreflight:
    def test_campaign_refuses_hazardous_body(self, tmp_path):
        import importlib.util
        module = tmp_path / "hazmod.py"
        module.write_text(textwrap.dedent("""
            import random
            def hazardous_body(env, config):
                return random.random()
        """))
        spec = importlib.util.spec_from_file_location("hazmod", module)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        from repro.core.orchestrator import Campaign, CampaignScriptError
        campaign = Campaign(mod.hazardous_body, seed=1)
        with pytest.raises(CampaignScriptError) as excinfo:
            campaign.run([{}])
        assert "SC104" in str(excinfo.value)

    def test_lint_off_skips_precheck(self, tmp_path):
        import importlib.util
        module = tmp_path / "hazmod2.py"
        module.write_text(textwrap.dedent("""
            import random
            def hazardous_body(env, config):
                random.random()
                return 1
        """))
        spec = importlib.util.spec_from_file_location("hazmod2", module)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        from repro.core.orchestrator import Campaign
        results = Campaign(mod.hazardous_body, seed=1,
                           lint="off").run([{}])
        assert results[0].result == 1


class TestAuditPending:
    def make_scheduler(self):
        from repro.netsim.scheduler import Scheduler
        return Scheduler()

    def test_lambda_on_heap_is_pinned_to_source(self):
        scheduler = self.make_scheduler()
        scheduler.schedule(1.0, lambda: None)
        findings = audit_pending(scheduler)
        assert len(findings) == 1
        path, diag = findings[0]
        assert diag.code == "SC101"
        assert path.endswith("test_determinism.py")
        assert diag.line > 1

    def test_closure_on_heap(self):
        scheduler = self.make_scheduler()
        world = {"x": 1}

        def leaky():
            return world["x"]

        scheduler.schedule(1.0, leaky)
        findings = audit_pending(scheduler)
        assert [d.code for _p, d in findings] == ["SC101"]
        assert "world" in findings[0][1].message

    def test_mutable_default_on_heap(self):
        scheduler = self.make_scheduler()
        scheduler.schedule(1.0, _module_cb_with_default)
        findings = audit_pending(scheduler)
        assert [d.code for _p, d in findings] == ["SC102"]

    def test_bound_methods_and_instances_are_clean(self):
        scheduler = self.make_scheduler()
        scheduler.schedule(1.0, scheduler.compact)
        findings = audit_pending(scheduler)
        assert findings == []

    def test_capture_reports_static_audit_first(self):
        from repro.core.checkpoint import Checkpoint, CheckpointError
        from repro.core.orchestrator import make_env
        env = make_env(seed=0)
        env.scheduler.schedule(5.0, lambda: None)
        with pytest.raises(CheckpointError) as excinfo:
            Checkpoint.capture(env)
        text = str(excinfo.value)
        assert "static audit" in text
        assert "SC101" in text


def _module_cb_with_default(bucket={}):
    bucket["hit"] = True
