"""Trace export/import: JSON-lines dumps for external analysis.

Experiments produce :class:`~repro.netsim.trace.TraceRecorder` objects;
this module serializes them to the JSON-lines format (one entry per line)
so runs can be archived, diffed between versions, or analyzed with
external tooling, and loads them back for offline queries.

Non-JSON-native attribute values (tuples, sets, bytes) are converted to
JSON-friendly forms on export; tuples come back as lists, which the
comparison helpers normalize.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, Iterable, Optional, Union

from repro.netsim.trace import TraceEntry, TraceRecorder


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {k: _from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


#: attributes that are process-global bookkeeping rather than experiment
#: state: message uids keep counting across runs in one process, so two
#: otherwise-identical runs differ in them.  ``original`` and ``parent``
#: are lineage edges (uid-valued) and share the same volatility.
VOLATILE_ATTRS = ("uid", "original", "parent")


def entry_to_dict(entry: TraceEntry, *,
                  exclude_attrs: Iterable[str] = ()) -> Dict[str, Any]:
    """One trace entry as a plain JSON-compatible dict."""
    excluded = set(exclude_attrs)
    return {"t": entry.time, "kind": entry.kind,
            "attrs": {k: _jsonable(v) for k, v in entry.attrs.items()
                      if k not in excluded}}


def dump_trace(trace: Iterable[TraceEntry],
               fp: Optional[IO[str]] = None, *,
               exclude_attrs: Iterable[str] = ()) -> str:
    """Serialize a trace to JSON lines; returns the text (and writes to
    ``fp`` if given).

    ``exclude_attrs`` drops named attributes from every entry; pass
    :data:`VOLATILE_ATTRS` when the dump is for run-to-run comparison.
    """
    exclude = tuple(exclude_attrs)
    lines = [json.dumps(entry_to_dict(entry, exclude_attrs=exclude),
                        sort_keys=True)
             for entry in trace]
    text = "\n".join(lines)
    if fp is not None:
        fp.write(text)
        if lines:
            fp.write("\n")
    return text


def stream_trace(trace: Iterable[TraceEntry], fp: IO[str], *,
                 exclude_attrs: Iterable[str] = (),
                 buffer_lines: int = 1024) -> int:
    """Write a trace to ``fp`` as JSON lines without building the full text.

    Lines are flushed in batches of ``buffer_lines``, so exporting a
    million-entry campaign trace holds at most one batch of rendered lines
    in memory instead of the whole dump (:func:`dump_trace` materializes
    everything because it also returns the text).  The byte output is
    identical to ``dump_trace(trace, fp)``.  Returns the entry count.
    """
    exclude = tuple(exclude_attrs)
    buffer: list = []
    count = 0
    for entry in trace:
        buffer.append(json.dumps(entry_to_dict(entry, exclude_attrs=exclude),
                                 sort_keys=True))
        count += 1
        if len(buffer) >= buffer_lines:
            fp.write("\n".join(buffer))
            fp.write("\n")
            buffer.clear()
    if buffer:
        fp.write("\n".join(buffer))
        fp.write("\n")
    return count


def export_trace(trace: Iterable[TraceEntry], path: Union[str, Path], *,
                 exclude_attrs: Iterable[str] = ()) -> int:
    """Stream a trace to a JSONL file on disk; returns the entry count."""
    with open(path, "w", encoding="utf-8") as fp:
        return stream_trace(trace, fp, exclude_attrs=exclude_attrs)


def load_trace(source: Union[str, IO[str]]) -> TraceRecorder:
    """Parse JSON lines back into a queryable TraceRecorder."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source
    trace = TraceRecorder(clock=lambda: 0.0)
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        attrs = {k: _from_jsonable(v)
                 for k, v in record.get("attrs", {}).items()}
        trace.record(record["kind"], t=record["t"], **attrs)
    return trace


def traces_equal(a: Iterable[TraceEntry], b: Iterable[TraceEntry]) -> bool:
    """Compare two traces modulo JSON round-trip normalization.

    Useful for regression pinning: run an experiment twice (or across
    versions) and assert the traces match exactly.
    """
    norm_a = [json.dumps(entry_to_dict(e), sort_keys=True) for e in a]
    norm_b = [json.dumps(entry_to_dict(e), sort_keys=True) for e in b]
    return norm_a == norm_b
