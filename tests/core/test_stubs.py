"""Unit tests for packet recognition/generation stubs."""

import pytest

from repro.core.stubs import PacketStubs, StubError, UNKNOWN_TYPE
from repro.xkernel.message import Message


@pytest.fixture
def stubs():
    return PacketStubs()


class TestRecognition:
    def test_unknown_without_recognizers(self, stubs):
        assert stubs.msg_type(Message()) == UNKNOWN_TYPE

    def test_first_non_none_wins(self, stubs):
        stubs.register_recognizer(lambda m: None)
        stubs.register_recognizer(lambda m: "SECOND")
        stubs.register_recognizer(lambda m: "THIRD")
        assert stubs.msg_type(Message()) == "SECOND"

    def test_recognizer_sees_message(self, stubs):
        stubs.register_recognizer(
            lambda m: "TAGGED" if m.meta.get("tag") else None)
        assert stubs.msg_type(Message(meta={"tag": 1})) == "TAGGED"
        assert stubs.msg_type(Message()) == UNKNOWN_TYPE


class TestGeneration:
    def test_generate_calls_factory(self, stubs):
        stubs.register_generator(
            "ACK", lambda **f: Message(payload=dict(f)))
        msg = stubs.generate("ACK", seq=7)
        assert msg.payload == {"seq": 7}

    def test_generated_messages_marked(self, stubs):
        stubs.register_generator("ACK", lambda **f: Message())
        msg = stubs.generate("ACK")
        assert msg.meta["injected"] is True
        assert msg.meta["injected_type"] == "ACK"

    def test_unknown_generator_raises_with_known_list(self, stubs):
        stubs.register_generator("ACK", lambda **f: Message())
        with pytest.raises(StubError, match="ACK"):
            stubs.generate("NOPE")

    def test_generator_names_sorted(self, stubs):
        stubs.register_generator("ZZZ", lambda **f: Message())
        stubs.register_generator("AAA", lambda **f: Message())
        assert stubs.generator_names() == ["AAA", "ZZZ"]


class ObjHeader:
    def __init__(self, seq):
        self.seq = seq


class TestFieldAccess:
    def test_get_from_dict_header(self, stubs):
        msg = Message()
        msg.push_header({"seq": 42})
        assert stubs.get_field(msg, "seq") == 42

    def test_get_from_object_header(self, stubs):
        msg = Message()
        msg.push_header(ObjHeader(seq=7))
        assert stubs.get_field(msg, "seq") == 7

    def test_outermost_header_wins(self, stubs):
        msg = Message()
        msg.push_header({"seq": 1})
        msg.push_header({"seq": 2})
        assert stubs.get_field(msg, "seq") == 2

    def test_get_from_dict_payload(self, stubs):
        msg = Message(payload={"window": 0})
        assert stubs.get_field(msg, "window") == 0

    def test_get_from_object_payload(self, stubs):
        msg = Message(payload=ObjHeader(seq=3))
        assert stubs.get_field(msg, "seq") == 3

    def test_missing_field_raises(self, stubs):
        with pytest.raises(StubError):
            stubs.get_field(Message(), "nothing")

    def test_set_on_dict_header(self, stubs):
        msg = Message()
        msg.push_header({"seq": 1})
        stubs.set_field(msg, "seq", 9)
        assert msg.headers[0]["seq"] == 9

    def test_set_on_object_header(self, stubs):
        msg = Message()
        header = ObjHeader(seq=1)
        msg.push_header(header)
        stubs.set_field(msg, "seq", 9)
        assert header.seq == 9

    def test_set_on_object_payload(self, stubs):
        payload = ObjHeader(seq=1)
        stubs.set_field(Message(payload=payload), "seq", 5)
        assert payload.seq == 5

    def test_set_missing_raises(self, stubs):
        with pytest.raises(StubError):
            stubs.set_field(Message(), "ghost", 1)

    def test_bytes_payload_not_probed(self, stubs):
        with pytest.raises(StubError):
            stubs.get_field(Message(b"raw"), "decode")
