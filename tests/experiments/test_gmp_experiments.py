"""Shape assertions for the GMP experiments (paper Tables 5-8)."""

import pytest

from repro.experiments import (gmp_packet_interruption, gmp_partition,
                               gmp_proclaim, gmp_timer)

pytestmark = pytest.mark.experiment


class TestTable5PacketInterruption:
    def test_self_death_bug_found(self):
        result = gmp_packet_interruption.run_self_death(bugs_on=True)
        assert result.self_death_bug_fired
        assert result.stayed_in_old_group     # "instead of forming a
        assert not result.formed_singleton    # singleton group..."
        assert result.forward_param_bug_fired

    def test_self_death_fixed_recovers(self):
        result = gmp_packet_interruption.run_self_death(bugs_on=False)
        assert not result.self_death_bug_fired
        assert result.formed_singleton
        assert result.rejoined

    def test_suspend_shows_identical_bug(self):
        """"Identical behavior was observed when a gmd was suspended."""
        result = gmp_packet_interruption.run_self_death(bugs_on=True,
                                                        via_suspend=True)
        assert result.self_death_bug_fired
        assert result.stayed_in_old_group

    def test_kick_rejoin_cycle(self):
        result = gmp_packet_interruption.run_kick_rejoin_cycle()
        assert result.cycled
        assert result.times_kicked_out >= 2
        assert result.times_rejoined >= 1

    def test_ack_drop_never_admitted(self):
        result = gmp_packet_interruption.run_ack_drop()
        assert not result.joiner_ever_committed
        assert result.joiner_mc_timeouts >= 1
        assert result.joiner_kept_proclaiming
        assert result.others_formed_group_without_joiner

    def test_commit_drop_stuck_in_transition_then_kicked(self):
        result = gmp_packet_interruption.run_commit_drop()
        assert result.joiner_entered_transition
        assert not result.joiner_ever_stable_in_group
        assert result.others_committed_joiner
        assert result.joiner_kicked_after_commit


class TestTable6Partitions:
    def test_oscillating_partition_cycles(self):
        result = gmp_partition.run_oscillating_partition()
        assert result.disjoint_groups_formed
        assert result.merged_after_heal
        assert result.cycles_observed >= 2

    def test_leader_detects_first_path(self):
        result = gmp_partition.run_leader_prince_separation(
            first_detector="leader")
        assert result.first_mover == 1
        assert result.end_state_matches_paper

    def test_prince_detects_first_path(self):
        result = gmp_partition.run_leader_prince_separation(
            first_detector="prince")
        assert result.first_mover == 2
        assert result.end_state_matches_paper

    def test_both_orderings_reach_same_end_state(self):
        """"There were two courses of action, but the result was the
        same for both."""
        leader_path = gmp_partition.run_leader_prince_separation(
            first_detector="leader")
        prince_path = gmp_partition.run_leader_prince_separation(
            first_detector="prince")
        assert leader_path.crown_prince_singleton
        assert prince_path.crown_prince_singleton
        assert leader_path.leader_group == prince_path.leader_group


class TestTable7ProclaimForwarding:
    def test_buggy_forwarding_loops(self):
        result = gmp_proclaim.run_proclaim_forwarding(bugs_on=True)
        assert result.proclaim_loop_detected
        assert not result.newcomer_received_reply
        assert not result.newcomer_admitted

    def test_fixed_forwarding_admits_newcomer(self):
        result = gmp_proclaim.run_proclaim_forwarding(bugs_on=False)
        assert not result.proclaim_loop_detected
        assert result.newcomer_received_reply
        assert result.newcomer_admitted

    def test_loop_volume_dwarfs_fixed_traffic(self):
        buggy = gmp_proclaim.run_proclaim_forwarding(bugs_on=True,
                                                     observe_for=5.0)
        fixed = gmp_proclaim.run_proclaim_forwarding(bugs_on=False,
                                                     observe_for=5.0)
        assert buggy.leader_prince_proclaims > \
            100 * max(1, fixed.leader_prince_proclaims)


class TestTable8TimerTest:
    def test_buggy_leaves_heartbeat_timer_armed(self):
        result = gmp_timer.run_timer_test(bugs_on=True)
        assert result.second_change_received
        assert result.spurious_heartbeat_timeout
        assert any(s.startswith("heartbeat_expect")
                   for s in result.timers_armed_in_transition)

    def test_buggy_survivor_is_leader_timer(self):
        result = gmp_timer.run_timer_test(bugs_on=True)
        assert "heartbeat_expect/1" in result.timers_armed_in_transition

    def test_fixed_unsets_all_but_mc_timer(self):
        result = gmp_timer.run_timer_test(bugs_on=False)
        assert result.second_change_received
        assert not result.spurious_heartbeat_timeout
        non_mc = [s for s in result.timers_armed_in_transition
                  if not s.startswith("mc_timeout")]
        assert non_mc == []

    def test_mc_timer_survives_in_both(self):
        for bugs_on in (True, False):
            result = gmp_timer.run_timer_test(bugs_on=bugs_on)
            assert result.mc_timer_survived
