"""Replay the committed regression corpus.

Every ``*.json`` file beside this test is a shrunk reproduction artifact
written by ``repro fuzz --save-repro tests/regressions``: a minimal
fault script, its placement, the campaign seed, and the frozen verdict
(violation codes, count, fingerprint prefix).  Replaying re-runs the
simulation from the artifact alone and diffs the verdict byte-for-byte,
so any behavioural drift in the simulator, the PFI layer, the GMP bug
models, or the oracle packs fails here with the exact scenario that
regressed.
"""

from pathlib import Path

import pytest

from repro.oracle.shrink import ReproArtifact, replay_artifact

CORPUS = sorted(Path(__file__).parent.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS, ("the committed corpus vanished; regenerate with "
                    "`repro fuzz --save-repro tests/regressions`")


@pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
def test_artifact_replays_byte_identically(path):
    artifact = ReproArtifact.load(path)
    result = replay_artifact(artifact)
    assert result.ok, (
        f"{path.name} no longer reproduces its recorded verdict:\n"
        + "\n".join(result.mismatches))
    assert artifact.code in result.observed_codes


@pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
def test_corpus_reshrinks_identically_through_checkpoints(path):
    """Checkpointed ddmin must regenerate the committed corpus.

    Each artifact's case is pushed back through :func:`shrink_case`
    with checkpointed probes (the default); the already-minimal cases
    must come out unchanged -- same clauses, same seed, same frozen
    verdict -- proving the checkpoint layer cannot alter what the
    shrinker commits.
    """
    from repro.oracle.shrink import artifact_name, make_artifact, shrink_case
    artifact = ReproArtifact.load(path)
    shrunk, stats = shrink_case(artifact.case, artifact.code,
                                campaign_seed=artifact.campaign_seed,
                                checkpoint=True)
    assert [c.text for c in shrunk.script.clauses] \
        == [c.text for c in artifact.case.script.clauses]
    assert shrunk.case_seed == artifact.case.case_seed
    assert stats.clauses_after == stats.clauses_before
    refrozen = make_artifact(shrunk, artifact.code,
                             campaign_seed=artifact.campaign_seed)
    assert refrozen.codes == artifact.codes
    assert refrozen.violation_count == artifact.violation_count
    assert refrozen.fingerprints == artifact.fingerprints
    assert artifact_name(refrozen) == path.name
