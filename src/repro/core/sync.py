"""Cross-node script synchronization.

The paper lists "synchronizing scripts executed by PFI layers running on
different nodes" among the predefined library facilities.  In a
single-process discrete-event simulation, synchronization cannot block --
every filter invocation runs to completion -- so the primitives here are
the non-blocking shapes that cover the paper's uses:

- **flags**: named booleans/values any script can set and any script can
  read ("the send filter might set a variable in the receive interpreter
  which tells the receive filter to start dropping messages" -- across
  nodes rather than across interpreters);
- **mailboxes**: named FIFO queues of values;
- **barriers**: named counters that trip a callback once N parties arrive,
  used by experiments to coordinate phase changes across machines;
- **waiters**: callbacks fired when a flag is first set to a given value.

One :class:`ScriptSync` instance is shared by every PFI layer in an
experiment.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple


class ScriptSync:
    """Shared synchronization state for all filter scripts in a run."""

    def __init__(self):
        self._flags: Dict[str, Any] = {}
        self._mailboxes: Dict[str, Deque[Any]] = defaultdict(deque)
        self._barriers: Dict[str, Tuple[int, set, List[Callable[[], None]]]] = {}
        self._waiters: Dict[str, List[Tuple[Any, Callable[[], None]]]] = defaultdict(list)

    # ------------------------------------------------------------------
    # flags
    # ------------------------------------------------------------------

    def set_flag(self, name: str, value: Any = True) -> None:
        """Set a named flag, firing any waiters registered for this value."""
        self._flags[name] = value
        pending = self._waiters.pop(name, [])
        still_waiting = []
        for expected, callback in pending:
            if expected == value or expected is _ANY:
                callback()
            else:
                still_waiting.append((expected, callback))
        if still_waiting:
            self._waiters[name] = still_waiting

    def get_flag(self, name: str, default: Any = None) -> Any:
        """Read a named flag."""
        return self._flags.get(name, default)

    def on_flag(self, name: str, callback: Callable[[], None],
                value: Any = None) -> None:
        """Invoke ``callback`` when the flag is next set (to ``value`` if
        given, to anything otherwise).  Fires immediately if already set."""
        expected = _ANY if value is None else value
        current = self._flags.get(name, _UNSET)
        if current is not _UNSET and (expected is _ANY or current == expected):
            callback()
            return
        self._waiters[name].append((expected, callback))

    # ------------------------------------------------------------------
    # mailboxes
    # ------------------------------------------------------------------

    def put(self, mailbox: str, value: Any) -> None:
        """Append a value to a named mailbox."""
        self._mailboxes[mailbox].append(value)

    def take(self, mailbox: str) -> Optional[Any]:
        """Pop the oldest value from a mailbox, or None when empty."""
        queue = self._mailboxes.get(mailbox)
        if queue:
            return queue.popleft()
        return None

    def mailbox_size(self, mailbox: str) -> int:
        """Number of values waiting in a mailbox."""
        return len(self._mailboxes.get(mailbox, ()))

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------

    def barrier(self, name: str, parties: int,
                callback: Optional[Callable[[], None]] = None) -> None:
        """Create (or reset) a barrier expecting ``parties`` distinct arrivals."""
        callbacks = [callback] if callback else []
        self._barriers[name] = (parties, set(), callbacks)

    def arrive(self, name: str, party: Any) -> bool:
        """Register a party's arrival.  Returns True when the barrier trips."""
        if name not in self._barriers:
            raise KeyError(f"no barrier named {name!r}")
        parties, arrived, callbacks = self._barriers[name]
        arrived.add(party)
        if len(arrived) >= parties:
            for callback in callbacks:
                callback()
            self.set_flag(f"barrier:{name}", True)
            return True
        return False

    def barrier_tripped(self, name: str) -> bool:
        """True once the barrier has seen all its parties."""
        return bool(self.get_flag(f"barrier:{name}", False))


class _AnyType:
    def __repr__(self):
        return "<any>"


class _UnsetType:
    def __repr__(self):
        return "<unset>"


_ANY = _AnyType()
_UNSET = _UnsetType()
