"""GMP timer table, including the inverted-unregister bug.

The protocol "uses timers extensively.  There are timers set for sending
and receiving heartbeats, sending proclaim messages, joining groups, and
preparing to commit new groups, among others."

The paper's Experiment 4 found: "In the procedure [that unregisters
timeouts], if an argument is NULL, all timeouts of the same type are
unregistered.  If the argument is non-NULL, only the first is
unregistered.  It worked the opposite of how it should have because of a
logic error."

:class:`GmpTimerTable` implements both semantics behind the
``inverted_unregister`` flag:

- **correct**: ``unregister(kind)`` removes *all* timers of that kind;
  ``unregister(kind, key)`` removes just that one;
- **buggy**: ``unregister(kind)`` removes only the *first-registered*
  timer of the kind; ``unregister(kind, key)`` removes all of the kind.

The consequence the PFI tool observed -- a heartbeat-expect timer left
armed while the daemon was IN_TRANSITION -- falls out of the buggy
``unregister("heartbeat_expect")`` call removing only one of several
per-member timers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, List, Optional

from repro.netsim.scheduler import Scheduler
from repro.netsim.timer import Timer


class GmpTimerTable:
    """Keyed timers with correct or historically buggy unregistration."""

    def __init__(self, scheduler: Scheduler, *, inverted_unregister: bool = False):
        self._scheduler = scheduler
        self.inverted_unregister = inverted_unregister
        self._timers: "OrderedDict[Tuple[str, Hashable], Timer]" = OrderedDict()

    def register(self, kind: str, key: Hashable, delay: float,
                 callback: Callable[[], None]) -> Timer:
        """Create (or re-arm) the timer for ``(kind, key)``.

        Re-registering an existing timer keeps its position in the table:
        "the first" timer the buggy unregister removes is the first one
        *created*, not the most recently re-armed -- matching a timer
        table that updates entries in place.
        """
        existing = self._timers.get((kind, key))
        if existing is not None:
            existing.stop()
            timer = Timer(self._scheduler, callback, name=f"{kind}/{key}")
            self._timers[(kind, key)] = timer  # same slot, same order
            timer.start(delay)
            return timer
        timer = Timer(self._scheduler, callback, name=f"{kind}/{key}")
        self._timers[(kind, key)] = timer
        timer.start(delay)
        return timer

    def unregister(self, kind: str, key: Optional[Hashable] = None) -> int:
        """Remove timers of ``kind`` (all, or just ``key``'s).

        Under ``inverted_unregister`` the two cases are swapped, exactly
        like the bug the paper found.  Returns the number removed.
        """
        remove_all = key is None
        if self.inverted_unregister:
            remove_all = not remove_all
        if remove_all:
            victims = [entry for entry in self._timers if entry[0] == kind]
        else:
            if key is None:
                # buggy path: NULL argument removes only the first of kind
                victims = [entry for entry in self._timers
                           if entry[0] == kind][:1]
            else:
                victims = [(kind, key)] if (kind, key) in self._timers else []
        for entry in victims:
            self._timers.pop(entry).stop()
        return len(victims)

    def armed(self, kind: str, key: Optional[Hashable] = None) -> bool:
        """Is any matching timer armed?"""
        if key is not None:
            timer = self._timers.get((kind, key))
            return timer is not None and timer.armed
        return any(t.armed for (k, _), t in self._timers.items() if k == kind)

    def armed_kinds(self) -> List[str]:
        """Sorted distinct kinds with at least one armed timer."""
        return sorted({k for (k, _), t in self._timers.items() if t.armed})

    def armed_keys(self, kind: str) -> List[Hashable]:
        """Keys of armed timers of one kind, in registration order."""
        return [key for (k, key), t in self._timers.items()
                if k == kind and t.armed]

    def stop_all(self) -> None:
        """Disarm everything (daemon shutdown)."""
        for timer in self._timers.values():
            timer.stop()
        self._timers.clear()

    def __len__(self) -> int:
        return len(self._timers)
