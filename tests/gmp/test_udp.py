"""Unit tests for the UDP layer."""

import pytest

from repro.core import make_env
from repro.gmp.udp import UDPHeader, UDPProtocol
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.xkernel.stack import NodeAnchor, ProtocolStack


class TopSink(Protocol):
    def __init__(self):
        super().__init__("sink")
        self.got = []

    def pop(self, msg):
        self.got.append(msg)


class TestUDPExplicit:
    def setup_method(self):
        self.env = make_env()
        self.tops = {}
        self.udps = {}
        for addr in (1, 2):
            node = self.env.network.add_node(f"h{addr}", addr)
            top = TopSink()
            udp = UDPProtocol(addr)
            ProtocolStack(f"s{addr}").build(top, udp, NodeAnchor(node))
            self.tops[addr] = top
            self.udps[addr] = udp

    def push(self, src, dst, payload):
        msg = Message(payload=payload)
        msg.meta["dst"] = dst
        self.udps[src].push(msg)

    def test_delivery(self):
        self.push(1, 2, "ping")
        self.env.run_until(1.0)
        assert [m.payload for m in self.tops[2].got] == ["ping"]

    def test_header_stripped_on_delivery(self):
        self.push(1, 2, "clean")
        self.env.run_until(1.0)
        assert self.tops[2].got[0].headers == []

    def test_src_meta_set(self):
        self.push(1, 2, "who")
        self.env.run_until(1.0)
        assert self.tops[2].got[0].meta["src"] == 1

    def test_wrong_port_dropped(self):
        msg = Message(payload="stray")
        msg.push_header(UDPHeader(src_port=9, dst_port=9999))
        self.udps[2].pop(msg)
        assert self.tops[2].got == []

    def test_push_without_dst_raises(self):
        with pytest.raises(ValueError):
            self.udps[1].push(Message(payload="lost"))

    def test_counters(self):
        self.push(1, 2, "a")
        self.push(1, 2, "b")
        self.env.run_until(1.0)
        assert self.udps[1].sent_count == 2
        assert self.udps[2].received_count == 2

    def test_non_udp_message_ignored_on_pop(self):
        self.udps[2].pop(Message(payload="raw, no header"))
        assert self.tops[2].got == []
