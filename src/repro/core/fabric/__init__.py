"""``repro.core.fabric``: the distributed, resumable campaign fabric.

Grows :meth:`Campaign.run <repro.core.orchestrator.Campaign.run>` past
one host's process pool: a coordinator serves work-stealing shard leases
to worker processes over a length-prefixed JSON socket protocol, every
completed row lands in a shared content-addressed
:class:`~repro.core.fabric.store.ResultStore`, and per-shard journals
merge into the one scorecard a serial run would have printed.  SIGKILL
any worker -- or the coordinator -- and ``repro sweep --resume`` picks
the sweep up where the store says it stopped.  See ``docs/fabric.md``
for the protocol, the lease/heartbeat contract and the failure matrix;
``tests/fabric/`` is the chaos harness every backend must pass.
"""

from repro.core.fabric.backends import (BACKENDS, resolve_backend,
                                        run_sockets_campaign)
from repro.core.fabric.coordinator import (FabricCoordinator, FabricError,
                                           run_sockets)
from repro.core.fabric.merge import campaign_journals, merge_campaign_dir
from repro.core.fabric.protocol import (MAX_FRAME_BYTES, ProtocolError,
                                        recv_message, request,
                                        send_message)
from repro.core.fabric.shards import LeaseBoard, Shard, partition_shards
from repro.core.fabric.spec import SpecError, SweepSpec
from repro.core.fabric.store import ResultStore

__all__ = [
    "BACKENDS", "FabricCoordinator", "FabricError", "LeaseBoard",
    "MAX_FRAME_BYTES", "ProtocolError", "ResultStore", "Shard",
    "SpecError", "SweepSpec", "campaign_journals", "merge_campaign_dir",
    "partition_shards", "recv_message", "request", "resolve_backend",
    "run_sockets", "run_sockets_campaign", "send_message",
]
