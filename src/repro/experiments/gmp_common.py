"""The GMP test rig of Figure 5.

Each machine runs the stack::

    +-----------+
    |    gmd    |   group membership daemon
    +-----------+
    | reliable  |   retransmission timers + sequence numbers
    +-----------+
    |    PFI    |   <- filter scripts (one per machine)
    +-----------+
    |    UDP    |
    +-----------+
    |  anchor   |

matching the paper: "we inserted the PFI tool into the communication
interface code where udp send and receive calls were made."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core import PFILayer, make_env
from repro.core.orchestrator import ExperimentEnv
from repro.gmp import (BugFlags, Daemon, FIXED, GmpTiming, ReliableChannel,
                       UDPProtocol, gmp_stubs)
from repro.xkernel.stack import NodeAnchor, ProtocolStack


@dataclass
class GmpCluster:
    """A set of GMP machines sharing one simulated network."""

    env: ExperimentEnv
    daemons: Dict[int, Daemon]
    pfis: Dict[int, PFILayer]
    world: List[int]

    @property
    def trace(self):
        return self.env.trace

    @property
    def scheduler(self):
        return self.env.scheduler

    def start(self, *addresses: int, stagger: float = 0.05) -> None:
        """Start daemons now (staggered to keep event ordering stable)."""
        targets = addresses or tuple(self.world)
        for i, address in enumerate(targets):
            self.scheduler.schedule(i * stagger,
                                    self.daemons[address].start)

    def views(self) -> Dict[int, tuple]:
        """Current member tuples per daemon."""
        return {a: d.view.members for a, d in self.daemons.items()}

    def run_until(self, deadline: float, **kw) -> None:
        self.env.run_until(deadline, **kw)

    def all_in_one_group(self, *addresses: int) -> bool:
        """True if the given daemons share one view containing them all."""
        targets = addresses or tuple(self.world)
        expected = tuple(sorted(targets))
        return all(self.daemons[a].view.members == expected
                   for a in targets)


def build_gmp_cluster(world: Sequence[int], *,
                      bugs: Optional[Dict[int, BugFlags]] = None,
                      default_bugs: BugFlags = FIXED,
                      timing: GmpTiming = GmpTiming(),
                      seed: int = 0,
                      latency: float = 0.001,
                      env: ExperimentEnv = None) -> GmpCluster:
    """Wire up one machine per world address.

    ``bugs`` overrides the bug flags per machine; everyone else gets
    ``default_bugs``.  ``env`` reuses an existing environment (e.g. the
    one a :class:`~repro.core.orchestrator.Campaign` hands its body)
    instead of building a private one.
    """
    if env is None:
        env = make_env(seed=seed, default_latency=latency)
    stubs = gmp_stubs()
    daemons: Dict[int, Daemon] = {}
    pfis: Dict[int, PFILayer] = {}
    for address in sorted(world):
        node = env.network.add_node(f"compsun{address}", address)
        machine_bugs = (bugs or {}).get(address, default_bugs)
        daemon = Daemon(address, env.scheduler, world, bugs=machine_bugs,
                        timing=timing, trace=env.trace)
        reliable = ReliableChannel(address, env.scheduler, trace=env.trace)
        pfi = PFILayer(f"pfi{address}", env.scheduler, stubs, trace=env.trace,
                       sync=env.sync, dist=env.dist("pfi", address),
                       node=f"compsun{address}")
        ProtocolStack(f"stack{address}").build(
            daemon, reliable, pfi, UDPProtocol(address), NodeAnchor(node))
        daemons[address] = daemon
        pfis[address] = pfi
    return GmpCluster(env=env, daemons=daemons, pfis=pfis,
                      world=sorted(world))
