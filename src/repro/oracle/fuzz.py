"""Coverage-guided fault-scenario fuzzing with the oracle as the verdict.

The loop is classic greybox fuzzing, transplanted to fault injection:

1. draw fault scripts from the grammar (:mod:`repro.oracle.grammar`),
   or mutate scripts already in the corpus;
2. run each case through the parallel :class:`~repro.core.orchestrator
   .Campaign` engine with the protocol's invariant pack installed as the
   campaign oracle;
3. keep a case in the corpus when its trace reaches coverage (trace
   kinds, TCP state transitions, GMP message kinds) no earlier case
   reached;
4. report any case whose oracle verdict is non-empty as a *finding*,
   ready for the shrinker (:mod:`repro.oracle.shrink`).

Targets: for TCP the four vendor profiles of the paper; for GMP the
single-bug daemon variants (one historical bug armed at a time, the
rest fixed).  Both are conformant at rest -- the no-false-positive
conformance suite pins that -- so a finding always names a (variant,
script, seed) triple where the injected faults made a latent bug
observable, exactly the paper's probing workflow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import (TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional,
                    Tuple)

from repro.core.distributions import derive_seed
from repro.core.orchestrator import (Campaign, CampaignScriptError,
                                     PrefixedBody, RunResult)
from repro.netsim import kinds as K
from repro.obs.journal import Journal
from repro.obs.progress import ProgressRenderer

if TYPE_CHECKING:
    from repro.core.checkpoint import Checkpoint, CheckpointPool
from repro.oracle.grammar import (FuzzScript, generate_script, mutate_script,
                                  trial_seed)
from repro.oracle.invariants import Violation

#: virtual-time horizon of one fuzz run, per protocol
HORIZONS = {"tcp": 30.0, "gmp": 30.0}

#: GMP runs let the group form before the filter arms, so faults hit a
#: committed view instead of an empty network
GMP_INSTALL_AT = 8.0
GMP_WORLD = (1, 2, 3)
GMP_TARGET = 2

#: GMP single-bug variants the fuzzer explores.  ``reply_to_sender`` is
#: deliberately absent: that daemon already violates GMP-PROCLAIM-REPLY
#: during unfaulted group formation (the forwarding loop needs no help),
#: so as a fuzz target it would make every case a trivial finding -- the
#: known-bug detection tests cover it instead.
GMP_VARIANTS = ("self_death", "forward_param", "inverted_timer")

TCP_SEGMENTS = 10
TCP_SEGMENT_INTERVAL = 0.4

#: default filter-install times, per protocol.  These are where the
#: fuzzed script arms in a stock run -- and therefore also the deepest
#: script-free prefix a checkpoint can reuse across trials.  TCP arms
#: its filter before the handshake (t=0), GMP after group formation.
DEFAULT_DEPTHS = {"tcp": 0.0, "gmp": GMP_INSTALL_AT}


# ----------------------------------------------------------------------
# campaign bodies (module-level: the parallel path needs them picklable)
#
# Each body is split into a *prefix* (everything before the fuzzed
# filter script arms: rig construction plus the script-free warmup) and
# a *continuation* (install the script, run the workload to the
# horizon).  The cold path runs prefix+continuation back to back; the
# checkpointed path (:class:`ForkEngine`) captures one prefix per
# target and re-runs only continuations.  Keeping both paths on the
# same two functions is what makes forked trials byte-identical to cold
# ones by construction.
# ----------------------------------------------------------------------

def _gmp_bug_flags(variant: str):
    from repro.gmp import BugFlags, FIXED
    if variant == "fixed":
        return FIXED
    flags = {"self_death": BugFlags(self_death=True),
             "forward_param": BugFlags(proclaim_forward_param=True),
             "reply_to_sender": BugFlags(proclaim_reply_to_sender=True),
             "inverted_timer": BugFlags(inverted_timer_unregister=True)}
    return flags[variant]


def _script_filter(config):
    from repro.core.script import TclishFilter
    return TclishFilter(config["script"], init_script=config["init_script"],
                        name="fuzz")


def _install_filter(pfi, config):
    script = _script_filter(config)
    if config["direction"] == "send":
        pfi.set_send_filter(script)
    else:
        pfi.set_receive_filter(script)


def fuzz_body(env, config):
    """One fuzz case: build the rig, arm the script, run the workload.

    ``config["install_at"]`` (optional) moves the filter-install time;
    absent, the protocol's :data:`DEFAULT_DEPTHS` entry applies and the
    run is identical to what this body always produced.
    """
    protocol = config["protocol"]
    depth = config.get("install_at", DEFAULT_DEPTHS[protocol])
    if protocol == "tcp":
        state = _tcp_prefix(env, config, depth)
        return _tcp_continue(env, state, config)
    state = _gmp_prefix(env, config, depth)
    return _gmp_continue(env, state, config)


def _tcp_prefix(env, config, depth):
    """The script-free head of a TCP fuzz run, up to virtual ``depth``.

    At the default depth 0.0 this is rig construction only (the stock
    rig arms its filter before the handshake); deeper prefixes open the
    connection and run the stream schedule up to the install point.
    """
    from repro.experiments.tcp_common import (SERVER_PORT, CLIENT_PORT,
                                              XKERNEL_ADDR,
                                              build_tcp_testbed,
                                              stream_from_vendor)
    from repro.tcp import VENDORS
    testbed = build_tcp_testbed(VENDORS[config["target"]], env=env)
    state = {"testbed": testbed}
    if depth <= 0.0:
        return state
    testbed.xkernel_tcp.listen(SERVER_PORT)
    client = testbed.vendor_tcp.open_connection(
        local_port=CLIENT_PORT, remote_address=XKERNEL_ADDR,
        remote_port=SERVER_PORT)
    client.connect()
    state["client"] = client
    if depth < 1.0:
        env.run_until(depth)
    else:
        env.run_until(1.0)
        stream_from_vendor(testbed, client, segments=TCP_SEGMENTS,
                           interval=TCP_SEGMENT_INTERVAL)
        env.run_until(depth)
    return state


def _tcp_continue(env, state, config):
    """Arm the script and run a TCP case from its prefix to the horizon."""
    from repro.experiments.tcp_common import (SERVER_PORT, CLIENT_PORT,
                                              XKERNEL_ADDR,
                                              stream_from_vendor)
    testbed = state["testbed"]
    _install_filter(testbed.pfi, config)
    client = state.get("client")
    if client is None:
        # default depth: filter armed before the handshake, stock order
        testbed.xkernel_tcp.listen(SERVER_PORT)
        client = testbed.vendor_tcp.open_connection(
            local_port=CLIENT_PORT, remote_address=XKERNEL_ADDR,
            remote_port=SERVER_PORT)
        client.connect()
    if env.scheduler.now < 1.0:
        env.run_until(1.0)
        stream_from_vendor(testbed, client, segments=TCP_SEGMENTS,
                           interval=TCP_SEGMENT_INTERVAL)
    env.run_until(HORIZONS["tcp"])
    return {"established": client.established, "final_state": client.state}


def _gmp_prefix(env, config, depth):
    """The script-free head of a GMP fuzz run: group formation."""
    from repro.experiments.gmp_common import build_gmp_cluster
    cluster = build_gmp_cluster(
        list(GMP_WORLD), default_bugs=_gmp_bug_flags(config["target"]),
        env=env)
    cluster.start()
    cluster.run_until(depth)
    return {"cluster": cluster}


def _gmp_continue(env, state, config):
    """Arm the script and run a GMP case from its prefix to the horizon."""
    cluster = state["cluster"]
    _install_filter(cluster.pfis[GMP_TARGET], config)
    cluster.run_until(HORIZONS["gmp"])
    return {"views": {a: list(v) for a, v in cluster.views().items()}}


def _continue_body(env, state, config):
    """Dispatch a forked continuation by protocol."""
    if config["protocol"] == "tcp":
        return _tcp_continue(env, state, config)
    return _gmp_continue(env, state, config)


def _fuzz_prefix(env, config):
    """The script-free head of a fuzz run, as a prefix stage."""
    protocol = config["protocol"]
    depth = config.get("install_at", DEFAULT_DEPTHS[protocol])
    if protocol == "tcp":
        return _tcp_prefix(env, config, depth)
    return _gmp_prefix(env, config, depth)


def _fuzz_prefix_key(config):
    """Prefix identity of one fuzz config: (protocol, target, depth).

    Every config sharing this key runs the same script-free,
    zero-draw head -- the fuzzed script only differs downstream of the
    install point -- so the grouped campaign dispatcher may warm the
    prefix once and fork it per case.
    """
    protocol = config["protocol"]
    depth = config.get("install_at", DEFAULT_DEPTHS[protocol])
    return (protocol, config["target"], depth)


#: :func:`fuzz_body` as a split body: cold calls are prefix+continuation
#: back to back (byte-identical to ``fuzz_body`` by construction), while
#: a prefix-grouped :meth:`Campaign.run <repro.core.orchestrator
#: .Campaign.run>` captures one warm prefix per (protocol, target,
#: depth) group and forks it per case.  Module-level and picklable.
prefixed_fuzz_body = PrefixedBody(_fuzz_prefix, _continue_body,
                                  key=_fuzz_prefix_key)


def pack_for(protocol: str):
    """The (picklable) oracle factory for one protocol's fuzz runs."""
    from repro.oracle import gmp_pack, tcp_pack
    if protocol == "tcp":
        return tcp_pack
    if protocol == "gmp":
        return gmp_pack
    raise ValueError(f"unknown protocol {protocol!r}")


# ----------------------------------------------------------------------
# cases and coverage
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzCase:
    """One executable fuzz input: script + placement + seeds."""

    script: FuzzScript
    target: str                 # vendor name (tcp) / bug-variant (gmp)
    case_seed: int

    @property
    def protocol(self) -> str:
        return self.script.protocol

    def config(self) -> Dict[str, object]:
        """The campaign configuration this case runs as.

        Deliberately excludes the script's display name: the campaign
        derives each run's seed from the config repr, and a rename (the
        shrinker suffixes ``_min``) must not change the simulation.
        """
        return {"protocol": self.protocol,
                "target": self.target, "direction": self.script.direction,
                "script": self.script.source,
                "init_script": self.script.init,
                "case_seed": self.case_seed}

    def to_dict(self) -> Dict[str, object]:
        return {"script": self.script.to_dict(), "target": self.target,
                "case_seed": self.case_seed}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCase":
        return cls(script=FuzzScript.from_dict(data["script"]),
                   target=data["target"], case_seed=data["case_seed"])


def coverage_keys(trace) -> FrozenSet[Tuple]:
    """The coverage signature of one trace.

    Trace kinds give breadth (which mechanisms ran at all); TCP state
    transitions and GMP message kinds give depth within the protocol
    state machines -- the "state-transition coverage" the fuzzer steers
    by.
    """
    keys = {("kind", kind) for kind in trace.count_by_kind()}
    for entry in trace.entries("tcp.state"):
        keys.add(("tcp.state", entry.get("old"), entry.get("new")))
    for entry in trace.entries("gmp.send"):
        keys.add(("gmp.send", entry.get("msg_kind")))
    return frozenset(keys)


@dataclass
class Finding:
    """One violating case, before shrinking."""

    case: FuzzCase
    codes: List[str]
    violation_count: int
    example: Optional[Violation] = None


@dataclass
class FuzzReport:
    """What one fuzzing session did."""

    protocol: str
    seed: int
    budget: int
    executed: int = 0
    corpus: List[FuzzCase] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    coverage: FrozenSet[Tuple] = frozenset()
    #: overall execution rate (virtual trials per wall second)
    trials_per_sec: float = 0.0
    #: prefix depth when the checkpointed engine ran; None = cold path
    checkpoint_depth: Optional[float] = None
    #: fraction of trials served by forking an existing checkpoint
    checkpoint_hit_rate: Optional[float] = None

    def render(self) -> str:
        lines = [f"fuzz {self.protocol}: {self.executed}/{self.budget} "
                 f"cases, coverage {len(self.coverage)} keys, "
                 f"corpus {len(self.corpus)}, "
                 f"findings {len(self.findings)}"]
        if self.trials_per_sec:
            speed = f"  {self.trials_per_sec:.1f} trials/s"
            if self.checkpoint_depth is not None:
                speed += (f" (checkpointed @ depth "
                          f"{self.checkpoint_depth:g}, hit-rate "
                          f"{self.checkpoint_hit_rate:.0%})")
            lines.append(speed)
        for finding in self.findings:
            lines.append(
                f"  {finding.case.script.name} "
                f"[target={finding.case.target} "
                f"seed={finding.case.case_seed}] -> "
                f"{','.join(finding.codes)} "
                f"({finding.violation_count} violations)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# checkpointed execution
# ----------------------------------------------------------------------

class ForkEngine:
    """Executes fuzz cases by forking per-target prefix checkpoints.

    One warmed-up, script-free prefix is captured per fuzz target
    (vendor profile / bug variant) at the configured depth; every trial
    against that target then forks the checkpoint, re-seeds the fork to
    the trial's run seed, and runs only the continuation.  Because the
    cold path (:func:`fuzz_body`) is built from the same
    prefix/continuation functions, a forked trial is byte-identical to
    the cold run of the same configuration -- the property suite pins
    this, and it is why engine results are interchangeable with
    :class:`~repro.core.orchestrator.Campaign` results.

    ``depth`` defaults to the protocol's stock install time
    (:data:`DEFAULT_DEPTHS`), in which case engine configs carry no
    ``install_at`` key and run seeds match the legacy path exactly.  A
    non-default depth is recorded in each config (changing its run
    seed): those are *different* experiments, not cheaper replays of
    the stock ones.
    """

    def __init__(self, protocol: str, *, campaign_seed: int = 0,
                 depth: Optional[float] = None,
                 journal: Optional[Journal] = None,
                 pool: Optional["CheckpointPool"] = None):
        if protocol not in DEFAULT_DEPTHS:
            raise ValueError(f"unknown protocol {protocol!r}")
        from repro.core.checkpoint import CheckpointPool
        self.protocol = protocol
        self.campaign_seed = campaign_seed
        self.depth = (DEFAULT_DEPTHS[protocol] if depth is None
                      else float(depth))
        #: prefix snapshots, keyed ``(protocol, target, depth)`` --
        #: pass a shared :class:`CheckpointPool` to let several engines
        #: (fuzz loop, per-finding shrinkers) reuse one another's
        #: captures instead of re-simulating the same warmup
        self.pool = pool if pool is not None else CheckpointPool()
        #: flight recorder each prefix capture is reported to (optional)
        self.journal = journal
        #: trials served by forking (every trial is one fork)
        self.forks = 0
        #: prefix simulations actually run (one per distinct target)
        self.captures = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of trials that reused an already-captured prefix."""
        if not self.forks:
            return 0.0
        return (self.forks - self.captures) / self.forks

    def config_for(self, case: FuzzCase) -> Dict[str, object]:
        """The campaign config this engine runs ``case`` as.

        Adds ``install_at`` only at non-default depths, so default-depth
        engine runs share run seeds (and results) with the cold path.
        """
        config = case.config()
        if self.depth != DEFAULT_DEPTHS[self.protocol]:
            config["install_at"] = self.depth
        return config

    def checkpoint_for(self, target: str) -> "Checkpoint":
        """The (lazily captured, pooled) prefix checkpoint for one target."""
        key = (self.protocol, target, self.depth)
        checkpoint = self.pool.get(key)
        if checkpoint is None:
            from repro.core.checkpoint import Checkpoint
            from repro.core.orchestrator import make_env
            env = make_env(seed=0)
            config = {"protocol": self.protocol, "target": target}
            if self.protocol == "tcp":
                roots = _tcp_prefix(env, config, self.depth)
            else:
                roots = _gmp_prefix(env, config, self.depth)
            checkpoint = Checkpoint.capture(
                env, roots,
                label=f"{self.protocol}/{target}@{self.depth:g}")
            self.pool.put(key, checkpoint)
            self.captures += 1
            if self.journal is not None:
                self.journal.record(K.CAMPAIGN_CHECKPOINT_CAPTURE,
                                    target=target, depth=self.depth,
                                    label=checkpoint.label,
                                    identity=checkpoint.identity)
        return checkpoint

    def run_config(self, config: Dict[str, object], *, oracle=None,
                   cache=None) -> RunResult:
        """Execute one configuration from its prefix checkpoint.

        Matches :func:`~repro.core.orchestrator._execute_config`'s
        seeding exactly: the fork is re-seeded to the run seed a cold
        campaign would derive for this config.  ``cache`` (a
        :class:`~repro.core.orchestrator.RunCache`) keys entries with
        the checkpoint identity mixed in, so results from a different
        prefix can never be returned for this one.
        """
        checkpoint = self.checkpoint_for(config["target"])
        key = None
        if cache is not None:
            key = cache.key(fuzz_body, self.campaign_seed, config,
                            telemetry=False, oracle=oracle,
                            checkpoint=checkpoint.identity)
            cached = cache.get(key)
            if cached is not None:
                return cached
        run_seed = derive_seed(self.campaign_seed,
                               repr(sorted(config.items())))
        forked = checkpoint.fork(seed=run_seed)
        self.forks += 1
        env = forked.env
        result = _continue_body(env, forked.roots, dict(config))
        violations = None
        if oracle is not None:
            from repro.oracle import evaluate
            violations = evaluate(env.trace, oracle()).violations
        run_result = RunResult(config=dict(config), result=result,
                               trace=env.trace, violations=violations)
        if cache is not None:
            cache.put(key, run_result)
        return run_result

    def run_case(self, case: FuzzCase, *, oracle=None,
                 cache=None) -> RunResult:
        """Convenience: :meth:`config_for` + :meth:`run_config`."""
        return self.run_config(self.config_for(case), oracle=oracle,
                               cache=cache)


# ----------------------------------------------------------------------
# the fuzzing loop
# ----------------------------------------------------------------------

def _targets(protocol: str) -> Tuple[str, ...]:
    if protocol == "tcp":
        from repro.tcp import VENDORS
        return tuple(VENDORS)
    return GMP_VARIANTS


def _draw_case(rng: random.Random, protocol: str, corpus: List[FuzzCase],
               index: int, campaign_seed: int) -> FuzzCase:
    if corpus and rng.random() < 0.5:
        parent = corpus[rng.randrange(len(corpus))]
        script = mutate_script(rng, parent.script, index=index)
        target = parent.target
    else:
        script = generate_script(rng, protocol, index=index)
        target = rng.choice(_targets(protocol))
    return FuzzCase(script=script, target=target,
                    case_seed=trial_seed(campaign_seed, script.name))


def run_fuzz(protocol: str = "gmp", *, seed: int = 0, budget: int = 24,
             workers: int = 1, batch: int = 0,
             checkpoint_depth: Optional[float] = None,
             pool: Optional["CheckpointPool"] = None,
             progress: Optional[Callable[[str], None]] = None,
             journal=None) -> FuzzReport:
    """Fuzz one protocol's rig for ``budget`` cases.

    Fully deterministic in ``seed``: case generation, per-case seeds,
    and the simulations themselves all derive from it, and the parallel
    campaign path returns results in input order, so ``workers`` does
    not perturb the outcome.

    ``checkpoint_depth`` switches execution to the :class:`ForkEngine`:
    one script-free prefix per target is simulated once, every trial
    forks it.  Passing the protocol's stock install time
    (:data:`DEFAULT_DEPTHS`) -- or any value at the default-depth rigs'
    defaults -- produces the *same* report the cold path produces, just
    faster; other depths are distinct experiments (the ``install_at``
    config key changes every run seed).  ``progress`` (e.g. ``print``)
    receives one status line per batch (shared renderer format) with
    the trial rate, coverage, findings and, on the engine path, the
    checkpoint hit-rate.

    ``journal`` (a :class:`~repro.obs.journal.Journal` or a path)
    attaches the campaign flight recorder: every executed case appends
    a crash-safe ``campaign.run_end`` event carrying its verdict codes
    and coverage delta, so a sweep killed mid-run still reproduces its
    exact partial scorecard from the journal (``repro report
    --campaign``).  Off by default; the hook is a single ``is not
    None`` guard per case.

    ``pool`` (a :class:`~repro.core.checkpoint.CheckpointPool`) backs
    the engine path's prefix snapshots; share one pool across sweeps
    and the subsequent finding shrinkers (``repro fuzz --save-repro``
    does) and the warmup is simulated once per target for the whole
    session, not once per consumer.
    """
    if batch <= 0:
        batch = max(4, workers * 2)
    journal_obj, journal_owned = Journal.ensure(journal)
    try:
        return _run_fuzz_journaled(
            protocol, journal_obj, seed=seed, budget=budget,
            workers=workers, batch=batch,
            checkpoint_depth=checkpoint_depth, pool=pool,
            progress=progress)
    finally:
        if journal_owned:
            journal_obj.close()


def _run_fuzz_journaled(protocol: str, journal: Optional[Journal], *,
                        seed: int, budget: int, workers: int, batch: int,
                        checkpoint_depth: Optional[float],
                        pool: Optional["CheckpointPool"],
                        progress: Optional[Callable[[str], None]]
                        ) -> FuzzReport:
    report = FuzzReport(protocol=protocol, seed=seed, budget=budget)
    coverage: set = set()
    campaign = Campaign(fuzz_body, seed=seed, lint="error")
    engine = None
    if checkpoint_depth is not None:
        engine = ForkEngine(protocol, campaign_seed=seed,
                            depth=checkpoint_depth, journal=journal,
                            pool=pool)
        report.checkpoint_depth = engine.depth
    if journal is not None:
        journal.start("fuzz", protocol=protocol, seed=seed, budget=budget,
                      workers=workers, batch=batch,
                      checkpoint_depth=report.checkpoint_depth)
    renderer = (ProgressRenderer(f"fuzz {protocol}", total=budget,
                                 unit="trials", sink=progress)
                if progress is not None else None)
    batch_index = 0
    started = perf_counter()
    status = "ok"
    try:
        while report.executed < budget:
            count = min(batch, budget - report.executed)
            rng = random.Random(derive_seed(seed, "fuzz-batch", batch_index))
            cases = [_draw_case(rng, protocol, report.corpus,
                                report.executed + i, seed)
                     for i in range(count)]
            if engine is not None:
                # the engine path bypasses Campaign.run, so it repeats the
                # same pre-flight: body precheck once, script lint per batch
                configs = [engine.config_for(case) for case in cases]
                failing = campaign.precheck_body() if batch_index == 0 else []
                failing += campaign.validate_scripts(configs)
                if journal is not None and batch_index == 0:
                    journal.record(K.CAMPAIGN_PREFLIGHT, ok=not failing,
                                   failing=len(failing))
                if failing:
                    raise CampaignScriptError(failing)
                oracle = pack_for(protocol)
                results = [engine.run_config(config, oracle=oracle)
                           for config in configs]
            else:
                results = campaign.run([case.config() for case in cases],
                                       workers=workers, telemetry=False,
                                       oracle=pack_for(protocol))
                if journal is not None and batch_index == 0:
                    journal.record(K.CAMPAIGN_PREFLIGHT, ok=True,
                                   failing=0)
            for case, result in zip(cases, results):
                index = report.executed
                report.executed += 1
                keys = coverage_keys(result.trace)
                fresh = len(keys - coverage)
                in_corpus = False
                if fresh:
                    coverage |= keys
                    report.corpus.append(case)
                    in_corpus = True
                codes: List[str] = []
                if result.violations:
                    codes = sorted({v.code for v in result.violations})
                    report.findings.append(Finding(
                        case=case, codes=codes,
                        violation_count=len(result.violations),
                        example=result.violations[0]))
                if journal is not None:
                    journal.record(
                        K.CAMPAIGN_RUN_END, index=index,
                        label=case.script.name, case=case.script.name,
                        target=case.target, case_seed=case.case_seed,
                        ok=not codes, codes=codes,
                        violations=len(result.violations or ()),
                        new_coverage=fresh, coverage_total=len(coverage),
                        corpus=in_corpus)
            batch_index += 1
            elapsed = perf_counter() - started
            report.trials_per_sec = (report.executed / elapsed if elapsed
                                     else 0.0)
            if engine is not None:
                report.checkpoint_hit_rate = engine.hit_rate
            if renderer is not None:
                renderer.update(
                    report.executed,
                    coverage=len(coverage),
                    findings=len(report.findings),
                    checkpoint_hit_rate=(f"{engine.hit_rate:.0%}"
                                         if engine is not None else None))
    except BaseException:
        status = "failed"
        raise
    finally:
        if journal is not None:
            journal.record(
                K.CAMPAIGN_END, status=status, executed=report.executed,
                findings=len(report.findings), coverage=len(coverage),
                corpus=len(report.corpus),
                trials_per_sec=round(report.trials_per_sec, 3),
                checkpoint_hit_rate=report.checkpoint_hit_rate)
    report.coverage = frozenset(coverage)
    return report


def run_case(case: FuzzCase, *, campaign_seed: int = 0) -> RunResult:
    """Execute one case exactly as the fuzz loop would (serial)."""
    campaign = Campaign(fuzz_body, seed=campaign_seed, lint="error")
    [result] = campaign.run([case.config()], telemetry=False,
                            oracle=pack_for(case.protocol))
    return result
