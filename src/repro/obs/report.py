"""``repro report``: the text rendering of an archived run.

Given any trace -- live, or loaded back from a JSON-lines archive with
:func:`repro.analysis.export.load_trace` -- this module produces the
run's scorecard in four sections:

1. **summary**: entry count, virtual-time span, distinct nodes;
2. **metrics**: per-kind event counts plus the PFI action counters
   reconstructed from the trace itself (drops, delays, duplicates,
   holds, releases, injections, per node);
3. **conformance** (with ``--oracle``): the invariant-pack verdict over
   the trace (see :mod:`repro.oracle`);
4. **lineage**: every derivation tree with at least one parent->child
   edge (see :mod:`repro.obs.lineage`);
5. **timeline**: the trace tail, one line per entry.

Everything is computed from the trace alone, so a run archived last
month reports identically to the live object it came from.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.netsim.trace import TraceEntry, TraceRecorder
from repro.obs.lineage import Lineage
from repro.obs.metrics import MetricsRegistry

#: pfi trace kind -> counter name recovered from an archived run
_PFI_KIND_COUNTERS = {
    "pfi.drop": "pfi_dropped",
    "pfi.delay": "pfi_delayed",
    "pfi.duplicate": "pfi_duplicated",
    "pfi.hold": "pfi_held",
    "pfi.release": "pfi_released",
    "pfi.inject": "pfi_injected",
    "pfi.killed_drop": "pfi_killed_drops",
    "pfi.log": "pfi_logged",
}


def trace_metrics(trace: Iterable[TraceEntry]) -> MetricsRegistry:
    """Reconstruct a metrics registry from trace entries alone.

    Produces ``trace_entries{kind=...}`` counters for every kind plus the
    per-node PFI action counters for ``pfi.*`` entries, which is the same
    shape a live :class:`~repro.core.pfi.PFILayer` registry exposes.
    """
    registry = MetricsRegistry()
    for entry in trace:
        registry.counter("trace_entries", kind=entry.kind).inc()
        counter = _PFI_KIND_COUNTERS.get(entry.kind)
        if counter is not None:
            registry.counter(counter,
                             node=entry.get("node", "unknown")).inc()
    return registry


def _section(title: str) -> str:
    return f"{title}\n{'-' * len(title)}"


def _summary(entries: List[TraceEntry]) -> str:
    if not entries:
        return "empty trace"
    t0 = min(e.time for e in entries)
    t1 = max(e.time for e in entries)
    nodes = sorted({str(e.get("node")) for e in entries
                    if e.get("node") is not None})
    kinds = {e.kind for e in entries}
    lines = [f"entries       : {len(entries)}",
             f"virtual span  : {t0:.3f} .. {t1:.3f} s "
             f"({t1 - t0:.3f} s)",
             f"event kinds   : {len(kinds)}"]
    if nodes:
        lines.append(f"nodes         : {', '.join(nodes)}")
    return "\n".join(lines)


def _timeline(entries: List[TraceEntry], tail: int) -> str:
    shown = entries[-tail:] if tail and len(entries) > tail else entries
    lines = []
    if len(shown) < len(entries):
        lines.append(f"... {len(entries) - len(shown)} earlier "
                     f"entries elided (--tail to widen)")
    lines.extend(repr(e) for e in shown)
    return "\n".join(lines) if lines else "(no entries)"


def render_report(trace: TraceRecorder, *, tail: int = 40,
                  kind_prefix: str = "",
                  max_lineage_roots: int = 20,
                  oracle=None) -> str:
    """The full text report for one run's trace.

    ``oracle`` (a list of :class:`~repro.oracle.Invariant` instances,
    e.g. from :func:`repro.oracle.packs_by_name`) adds a **conformance**
    section: the oracle verdict over the full trace, plus
    ``oracle_violations{code=...}`` counters in the metrics section.
    Evaluation always sees the unfiltered trace -- ``kind_prefix``
    narrows what is *displayed*, not what the invariants check.
    """
    entries = [e for e in trace if e.kind.startswith(kind_prefix)]
    lineage = Lineage.from_trace(entries)
    registry = trace_metrics(entries)

    oracle_block: Optional[Tuple[str, str]] = None
    if oracle is not None:
        from repro.oracle import evaluate
        report = evaluate(trace, oracle)
        report.fill_metrics(registry)
        oracle_block = ("conformance", report.render())

    blocks: List[Tuple[str, str]] = [("run summary", _summary(entries)),
                                     ("metrics", registry.render())]
    if oracle_block is not None:
        blocks.append(oracle_block)

    roots = lineage.roots()
    if roots:
        shown = roots[:max_lineage_roots]
        body = "\n".join(lineage.render(root) for root in shown)
        if len(roots) > len(shown):
            body += (f"\n... {len(roots) - len(shown)} more derivation "
                     f"tree(s)")
        header = (f"message lineage ({len(roots)} derivation root(s), "
                  f"{lineage.derived_count()} edge(s))")
        blocks.append((header, body))
    else:
        blocks.append(("message lineage",
                       "(no derived messages in this trace)"))

    blocks.append((f"timeline (last {min(tail, len(entries))} of "
                   f"{len(entries)} entries)", _timeline(entries, tail)))

    return "\n\n".join(f"{_section(title)}\n{body}"
                       for title, body in blocks)


def lineage_of(trace: TraceRecorder,
               uid: Optional[int] = None) -> str:
    """Convenience: just the lineage section (``repro report --uid``)."""
    lineage = Lineage.from_trace(trace)
    if uid is not None:
        root = lineage.root_of(uid)
        return lineage.render(root)
    return lineage.render()


def kind_counts(trace: Iterable[TraceEntry]) -> Dict[str, int]:
    """``{kind: count}`` over a trace, sorted by kind."""
    counts: Dict[str, int] = {}
    for entry in trace:
        counts[entry.kind] = counts.get(entry.kind, 0) + 1
    return dict(sorted(counts.items()))
