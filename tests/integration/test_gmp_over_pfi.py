"""Integration tests: GMP clusters under scripted fault injection."""


from repro.core import TclishFilter
from repro.core.faults import drop_by_type, send_omission
from repro.experiments.gmp_common import build_gmp_cluster
from repro.gmp import GmpTiming


def test_cluster_forms_through_full_stacks():
    cluster = build_gmp_cluster([1, 2, 3])
    cluster.start()
    cluster.run_until(10.0)
    assert cluster.all_in_one_group()


def test_heartbeats_flow_through_pfi():
    cluster = build_gmp_cluster([1, 2])
    cluster.start()
    cluster.run_until(10.0)
    assert cluster.pfis[1].stats["send_seen"] > 5


def test_tclish_heartbeat_drop_kicks_member():
    """Table 5's drop-most-heartbeats, written as a tclish script."""
    cluster = build_gmp_cluster([1, 2, 3])
    cluster.start()
    cluster.run_until(10.0)
    assert cluster.all_in_one_group()
    # drop every outgoing heartbeat (self included) -- the harsher case;
    # the fixed daemon then cycles kicked-out / singleton / rejoined, so
    # assert the churn rather than the instantaneous view
    cluster.pfis[3].set_send_filter(TclishFilter("""
        if {[msg_type cur_msg] eq "HEARTBEAT"} { xDrop cur_msg }
    """))
    cluster.run_until(40.0)
    kicked_views = [e for e in cluster.trace.entries("gmp.view_adopted",
                                                     node=1)
                    if e.time > 10.0 and 3 not in e.get("members")]
    assert kicked_views, "member dropping heartbeats was never kicked"
    assert cluster.trace.count("gmp.self_restart", node=3) >= 1


def test_send_omission_probability_causes_churn_but_recovers():
    cluster = build_gmp_cluster([1, 2, 3], seed=11)
    cluster.start()
    cluster.run_until(10.0)
    cluster.pfis[3].set_send_filter(send_omission(0.4))
    cluster.run_until(120.0)
    cluster.pfis[3].clear_filters()
    cluster.run_until(200.0)
    assert cluster.all_in_one_group()


def test_drop_by_type_commit_blocks_membership():
    cluster = build_gmp_cluster([1, 2, 3])
    cluster.start(1, 2)
    cluster.run_until(8.0)
    cluster.pfis[3].set_receive_filter(drop_by_type("COMMIT"))
    cluster.start(3)
    cluster.run_until(40.0)
    assert 3 not in cluster.daemons[3].views_adopted[-1].members \
        or cluster.daemons[3].view.is_singleton


def test_network_partition_via_netsim_primitive():
    """partition() at the network layer, not PFI scripts."""
    cluster = build_gmp_cluster([1, 2, 3, 4])
    cluster.start()
    cluster.run_until(10.0)
    cluster.env.network.partition([1, 2], [3, 4])
    cluster.run_until(60.0)
    assert cluster.daemons[1].view.members == (1, 2)
    assert cluster.daemons[3].view.members == (3, 4)
    cluster.env.network.heal()
    cluster.run_until(120.0)
    assert cluster.all_in_one_group()


def test_byzantine_dead_report_injection():
    """Inject a forged DEAD_REPORT: the leader kicks a healthy member,
    which then rejoins -- the system self-heals from one byzantine lie."""
    cluster = build_gmp_cluster([1, 2, 3])
    cluster.start()
    cluster.run_until(10.0)
    forged = cluster.pfis[1].stubs.generate(
        "DEAD_REPORT", sender=2, subject=3)
    cluster.pfis[1].inject(forged, "receive")
    cluster.run_until(12.0)
    assert 3 not in cluster.daemons[1].view.members
    cluster.run_until(60.0)
    assert cluster.all_in_one_group()


def test_custom_timing_profile():
    fast = GmpTiming(heartbeat_interval=0.2, heartbeat_timeout=0.7,
                     proclaim_interval=0.4, ack_collect_timeout=0.3,
                     mc_timeout=1.0)
    cluster = build_gmp_cluster([1, 2, 3], timing=fast)
    cluster.start()
    cluster.run_until(3.0)
    assert cluster.all_in_one_group()


def test_deterministic_across_runs():
    views = []
    for _ in range(2):
        cluster = build_gmp_cluster([1, 2, 3], seed=42)
        cluster.start()
        cluster.run_until(30.0)
        views.append(tuple(sorted(cluster.views().items())))
    assert views[0] == views[1]
