"""Protocol stack assembly and layer splicing.

A :class:`ProtocolStack` holds layers ordered top (application side) to
bottom (wire side) and keeps the ``above``/``below`` references consistent.
Its distinguishing operation is :meth:`insert_below` /
:meth:`insert_above`: splicing a new layer next to an existing one without
the neighbours noticing, which is how a PFI layer is installed beneath a
target protocol ("the PFI layer is inserted between any two consecutive
layers in a protocol stack").

The bottom of a stack is typically an adapter layer that hands messages to
the network simulator (see :class:`NodeAnchor`).
"""

from __future__ import annotations

from typing import Any, List

from repro.netsim.node import Node
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol


class ProtocolStack:
    """An ordered stack of protocol layers."""

    def __init__(self, name: str = "stack"):
        self.name = name
        self._layers: List[Protocol] = []

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def _rewire(self) -> None:
        for i, layer in enumerate(self._layers):
            layer.above = self._layers[i - 1] if i > 0 else None
            layer.below = self._layers[i + 1] if i < len(self._layers) - 1 else None
        for layer in self._layers:
            layer.attached()

    def build(self, *layers: Protocol) -> "ProtocolStack":
        """Set the stack contents, top to bottom.  Returns self."""
        self._layers = list(layers)
        self._names_must_be_unique()
        self._rewire()
        return self

    def _names_must_be_unique(self) -> None:
        names = [layer.name for layer in self._layers]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate layer names in stack: {names}")

    def insert_below(self, target_name: str, layer: Protocol) -> Protocol:
        """Splice ``layer`` immediately below the named layer."""
        index = self._index_of(target_name)
        self._layers.insert(index + 1, layer)
        self._names_must_be_unique()
        self._rewire()
        return layer

    def insert_above(self, target_name: str, layer: Protocol) -> Protocol:
        """Splice ``layer`` immediately above the named layer."""
        index = self._index_of(target_name)
        self._layers.insert(index, layer)
        self._names_must_be_unique()
        self._rewire()
        return layer

    def remove(self, name: str) -> Protocol:
        """Remove and return a layer; its neighbours are re-joined."""
        index = self._index_of(name)
        layer = self._layers.pop(index)
        layer.above = layer.below = None
        self._rewire()
        return layer

    def _index_of(self, name: str) -> int:
        for i, layer in enumerate(self._layers):
            if layer.name == name:
                return i
        raise KeyError(f"no layer named {name!r} in stack {self.name!r}")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def layer(self, name: str) -> Protocol:
        """Look up a layer by name."""
        return self._layers[self._index_of(name)]

    def layers(self) -> List[Protocol]:
        """Layers top to bottom (a copy)."""
        return list(self._layers)

    @property
    def top(self) -> Protocol:
        """The application-most layer."""
        if not self._layers:
            raise IndexError("empty stack")
        return self._layers[0]

    @property
    def bottom(self) -> Protocol:
        """The wire-most layer."""
        if not self._layers:
            raise IndexError("empty stack")
        return self._layers[-1]

    def __contains__(self, name: str) -> bool:
        return any(layer.name == name for layer in self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __repr__(self) -> str:
        names = " / ".join(layer.name for layer in self._layers)
        return f"ProtocolStack({self.name}: {names})"


class NodeAnchor(Protocol):
    """Bottom-of-stack adapter connecting a stack to a simulated node.

    Pushes become node transmissions; node receptions become pops.  The
    destination address is read from ``msg.meta['dst']`` (set by whatever
    network-level layer sits above, e.g. :class:`repro.tcp.ip.IPProtocol`),
    and the source address of received messages is recorded into
    ``msg.meta['src']``.
    """

    def __init__(self, node: Node, name: str = "anchor"):
        super().__init__(name)
        self.node = node
        node.on_receive(self._on_node_receive)

    def push(self, msg: Message) -> None:
        dst = msg.meta.get("dst")
        if dst is None:
            raise ValueError("message reached the anchor without meta['dst']")
        # the wire is a serialization boundary: the receiver must get its
        # own copy, so that corrupting a received header (byzantine fault
        # injection) can never reach back into the sender's state, e.g.
        # its retransmission queue
        self.node.transmit(msg.copy(), dst)

    def _on_node_receive(self, payload: Any, src_address: int) -> None:
        if not isinstance(payload, Message):
            payload = Message(payload)
        payload.meta["src"] = src_address
        self.send_up(payload)
