"""Shared fixtures for core-layer tests: a tiny two-layer harness with a
PFI layer in the middle."""

import pytest

from repro.core import PFILayer, PacketStubs, make_env
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol
from repro.xkernel.stack import ProtocolStack


class CaptureTop(Protocol):
    """Records everything popped up to it."""

    def __init__(self):
        super().__init__("top")
        self.received = []

    def pop(self, msg):
        self.received.append(msg)


class CaptureBottom(Protocol):
    """Records everything pushed down to it."""

    def __init__(self):
        super().__init__("bottom")
        self.received = []

    def push(self, msg):
        self.received.append(msg)


def simple_stubs():
    """Type = the message's meta['type'] (or payload dict 'type')."""
    stubs = PacketStubs()
    stubs.register_recognizer(lambda msg: msg.meta.get("type"))

    def generate(**fields):
        msg = Message(payload=dict(fields))
        msg.meta["type"] = "PROBE"
        return msg

    stubs.register_generator("PROBE", generate)
    return stubs


class Harness:
    def __init__(self, seed=0):
        self.env = make_env(seed=seed)
        self.stubs = simple_stubs()
        self.top = CaptureTop()
        self.bottom = CaptureBottom()
        self.pfi = PFILayer("pfi", self.env.scheduler, self.stubs,
                            trace=self.env.trace, sync=self.env.sync,
                            node="testnode")
        ProtocolStack().build(self.top, self.pfi, self.bottom)

    def send_down(self, msg_type="DATA", **meta):
        msg = Message(b"payload", meta={"type": msg_type, **meta})
        self.pfi.push(msg)
        return msg

    def send_up(self, msg_type="DATA", **meta):
        msg = Message(b"payload", meta={"type": msg_type, **meta})
        self.pfi.pop(msg)
        return msg

    def run(self, until=10.0):
        self.env.run_until(until)


@pytest.fixture
def harness():
    return Harness()
