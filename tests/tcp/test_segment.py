"""Unit tests for the TCP segment wire format."""

import pytest

from repro.tcp.segment import (ACK, FIN, PSH, RST, SEQ_MOD, SYN, Segment,
                               classify, seq_add, seq_leq, seq_lt, seq_sub)


def make(flags=ACK, seq=100, ack=200, payload=b"", window=4096):
    return Segment(src_port=1000, dst_port=80, seq=seq, ack=ack,
                   flags=flags, window=window, payload=payload)


class TestFlags:
    def test_flag_predicates(self):
        assert make(SYN).is_syn
        assert make(SYN | ACK).is_ack
        assert make(FIN).is_fin
        assert make(RST).is_rst
        assert not make(ACK).is_syn

    def test_flag_names(self):
        assert make(SYN | ACK).flag_names() == "SYN|ACK"
        assert make(0).flag_names() == "NONE"


class TestSequenceSpace:
    def test_seg_len_counts_payload(self):
        assert make(payload=b"abcd").seg_len == 4

    def test_syn_fin_consume_sequence(self):
        assert make(SYN).seg_len == 1
        assert make(FIN).seg_len == 1
        assert make(SYN | FIN, payload=b"xy").seg_len == 4

    def test_end_seq_wraps(self):
        seg = make(seq=SEQ_MOD - 2, payload=b"abcd")
        assert seg.end_seq == 2

    def test_seq_normalized_modulo(self):
        assert make(seq=SEQ_MOD + 5).seq == 5

    def test_seq_comparisons(self):
        assert seq_lt(1, 2)
        assert not seq_lt(2, 1)
        assert seq_lt(SEQ_MOD - 1, 5)   # wraparound
        assert seq_leq(7, 7)
        assert seq_add(SEQ_MOD - 1, 2) == 1
        assert seq_sub(1, SEQ_MOD - 1) == 2


class TestSerialization:
    def test_roundtrip(self):
        seg = make(SYN | ACK, seq=12345, ack=67890, payload=b"hello")
        parsed = Segment.from_bytes(seg.to_bytes())
        assert parsed.seq == 12345
        assert parsed.ack == 67890
        assert parsed.flags == SYN | ACK
        assert parsed.payload == b"hello"
        assert parsed.src_port == 1000
        assert parsed.dst_port == 80

    def test_empty_payload_roundtrip(self):
        parsed = Segment.from_bytes(make().to_bytes())
        assert parsed.payload == b""

    def test_corruption_detected(self):
        data = bytearray(make(payload=b"data!").to_bytes())
        data[-1] ^= 0xFF
        with pytest.raises(ValueError, match="checksum"):
            Segment.from_bytes(bytes(data))

    def test_corruption_ignored_without_verify(self):
        data = bytearray(make(payload=b"data!").to_bytes())
        data[-1] ^= 0xFF
        seg = Segment.from_bytes(bytes(data), verify=False)
        assert seg.payload != b"data!"

    def test_short_data_rejected(self):
        with pytest.raises(ValueError, match="short"):
            Segment.from_bytes(b"tiny")

    def test_window_survives(self):
        parsed = Segment.from_bytes(make(window=1234).to_bytes())
        assert parsed.window == 1234


class TestCopy:
    def test_copy_independent(self):
        seg = make(seq=1)
        clone = seg.copy()
        clone.seq = 99
        assert seg.seq == 1


class TestClassify:
    @pytest.mark.parametrize("flags,payload,expected", [
        (SYN, b"", "SYN"),
        (SYN | ACK, b"", "SYNACK"),
        (FIN | ACK, b"", "FIN"),
        (RST, b"", "RST"),
        (RST | ACK, b"", "RST"),
        (ACK, b"", "ACK"),
        (ACK | PSH, b"data", "DATA"),
        (ACK, b"x", "DATA"),
    ])
    def test_classification(self, flags, payload, expected):
        assert classify(make(flags, payload=payload)) == expected
