"""Unit tests for RTT estimation and RTO computation."""

import pytest

from repro.tcp.rtt import (JacobsonKarnEstimator, NaiveEstimator,
                           make_estimator)
from repro.tcp.vendors import SOLARIS_23, SUNOS_413, VendorProfile


class TestJacobsonKarn:
    def test_initial_rto_before_samples(self):
        est = JacobsonKarnEstimator(SUNOS_413)
        assert est.rto_for(0) == SUNOS_413.initial_rto

    def test_first_sample_seeds_srtt(self):
        est = JacobsonKarnEstimator(SUNOS_413)
        est.sample(2.0)
        assert est.srtt == 2.0
        assert est.rttvar == 1.0

    def test_converges_to_constant_rtt(self):
        est = JacobsonKarnEstimator(SUNOS_413)
        for _ in range(100):
            est.sample(3.0)
        assert abs(est.srtt - 3.0) < 0.01

    def test_rto_above_srtt(self):
        est = JacobsonKarnEstimator(SUNOS_413)
        for _ in range(30):
            est.sample(3.0)
        assert est.rto_for(0) > 3.0

    def test_rto_clamped_to_min(self):
        est = JacobsonKarnEstimator(SUNOS_413)
        for _ in range(30):
            est.sample(0.001)
        assert est.rto_for(0) >= SUNOS_413.min_rto

    def test_backoff_doubles_and_caps(self):
        est = JacobsonKarnEstimator(SUNOS_413)
        est.sample(0.001)
        base = est.rto_for(0)
        assert est.rto_for(1) == pytest.approx(2 * base)
        assert est.rto_for(2) == pytest.approx(4 * base)
        assert est.rto_for(20) == SUNOS_413.max_rto

    def test_quantized_to_tick(self):
        est = JacobsonKarnEstimator(SUNOS_413)
        for _ in range(30):
            est.sample(3.0)
        rto = est.rto_for(0)
        assert abs(rto / SUNOS_413.timer_tick
                   - round(rto / SUNOS_413.timer_tick)) < 1e-9

    def test_var_floor_spreads_vendors(self):
        """Same samples, different vendor floors: AIX > SunOS > NeXT."""
        rtos = {}
        for profile in (SUNOS_413,
                        VendorProfile(name="AIX-like", var_floor_frac=0.42),
                        VendorProfile(name="NeXT-like", var_floor_frac=0.17)):
            est = JacobsonKarnEstimator(profile)
            for _ in range(200):
                est.sample(3.0)
            rtos[profile.var_floor_frac] = est.rto_for(0)
        assert rtos[0.42] > rtos[0.29] > rtos[0.17]

    def test_karn_flag(self):
        assert JacobsonKarnEstimator(SUNOS_413).karn is True


class TestNaive:
    def test_weak_adaptation(self):
        est = NaiveEstimator(SOLARIS_23)
        est.sample(0.01)
        for _ in range(30):
            est.sample(3.0)
        # after 30 samples of 3 s the naive estimator still sits far below
        assert est.srtt < 1.5

    def test_rto_floor(self):
        est = NaiveEstimator(SOLARIS_23)
        est.sample(0.001)
        assert est.rto_for(0) >= SOLARIS_23.min_rto

    def test_timeout_reset_quirk(self):
        """First timeout at ~2*srtt, then backoff restarts from srtt."""
        est = NaiveEstimator(SOLARIS_23)
        for _ in range(200):
            est.sample(2.0)
        first = est.rto_for(0)
        second = est.rto_for(1)
        third = est.rto_for(2)
        assert first == pytest.approx(2 * second, rel=0.1)
        assert third == pytest.approx(2 * second, rel=0.1)

    def test_no_reset_quirk_without_flag(self):
        profile = VendorProfile(name="plain-naive", uses_jacobson=False,
                                naive_timeout_resets_to_srtt=False)
        est = NaiveEstimator(profile)
        est.sample(1.0)
        assert est.rto_for(1) == pytest.approx(2 * est.rto_for(0), rel=0.01)

    def test_caps_at_max(self):
        est = NaiveEstimator(SOLARIS_23)
        est.sample(10.0)
        assert est.rto_for(30) == SOLARIS_23.max_rto

    def test_karn_flag(self):
        assert NaiveEstimator(SOLARIS_23).karn is False


class TestFactory:
    def test_profile_selects_estimator(self):
        assert isinstance(make_estimator(SUNOS_413), JacobsonKarnEstimator)
        assert isinstance(make_estimator(SOLARIS_23), NaiveEstimator)
