"""Message logging (the paper's ``msg_log`` utility).

"In order to monitor the retransmission behavior ... each packet was logged
with a timestamp by the receive filter script before it was dropped."  The
experiments derive every table from these logs, so the logger doubles as a
structured trace writer: each ``msg_log`` call produces both a formatted
line and a trace entry (kind ``pfi.log``) carrying the message type and the
header fields the stubs can read.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.stubs import PacketStubs, StubError
from repro.netsim.trace import TraceRecorder
from repro.xkernel.message import Message
from repro.netsim import kinds as K

_COMMON_FIELDS = ("seq", "ack", "flags", "window", "kind", "sender",
                  "originator", "group_id")

# trace-attribute names the logger itself writes; snapshot fields that
# collide are prefixed so neither side clobbers the other
_RESERVED = frozenset({"kind", "t", "node", "direction", "msg_type",
                       "note", "uid"})


class MessageLog:
    """Formats and records intercepted messages."""

    __slots__ = ("_stubs", "_trace", "_node", "lines", "_logged")

    def __init__(self, stubs: PacketStubs, trace: Optional[TraceRecorder] = None,
                 node: str = "", metrics=None):
        self._stubs = stubs
        self._trace = trace
        self._node = node
        self.lines: List[str] = []
        # one counter handle, created up front (see repro.obs.metrics);
        # None keeps the logger registry-free for standalone use
        self._logged = (metrics.counter("pfi_logged", node=node)
                        if metrics is not None else None)

    def log(self, msg: Message, *, t: float, direction: str,
            note: str = "") -> str:
        """Record one message; returns the formatted line."""
        if self._logged is not None:
            self._logged.inc()
        msg_type = self._stubs.msg_type(msg)
        fields = self._snapshot_fields(msg)
        detail = " ".join(f"{k}={v}" for k, v in fields.items())
        prefix = f"[{t:12.3f}] {self._node:>10} {direction:<7} {msg_type:<18}"
        line = f"{prefix} {detail}".rstrip()
        if note:
            line = f"{line}  # {note}"
        self.lines.append(line)
        if self._trace is not None:
            attrs = {(f"payload_{k}" if k in _RESERVED else k): v
                     for k, v in fields.items()}
            self._trace.record(
                K.PFI_LOG, t=t, node=self._node, direction=direction,
                msg_type=msg_type, note=note, uid=msg.uid, **attrs)
        return line

    def _snapshot_fields(self, msg: Message) -> Dict[str, Any]:
        fields: Dict[str, Any] = {}
        for name in _COMMON_FIELDS:
            try:
                fields[name] = self._stubs.get_field(msg, name)
            except StubError:
                continue
        return fields

    def dump(self) -> str:
        """All formatted lines joined by newlines."""
        return "\n".join(self.lines)

    def __len__(self) -> int:
        return len(self.lines)
