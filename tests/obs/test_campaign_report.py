"""Journal -> summary -> scorecard/ranking/report fidelity."""

import json

from repro.netsim import kinds as K
from repro.obs.campaign_report import (CampaignSummary, rank_scenarios,
                                       render_html, render_text,
                                       summarize_journal, summary_to_json)
from repro.obs.journal import Journal, SCHEMA_VERSION, replay_journal
from repro.obs.telemetry import RunTelemetry


def _write_sweep(path, *, budget=6, end=True):
    """A fuzz-shaped journal: one finding, one corpus promotion."""
    with Journal(path) as journal:
        journal.start("fuzz", protocol="gmp", seed=0, budget=budget,
                      checkpoint_depth=8)
        journal.record(K.CAMPAIGN_PREFLIGHT, ok=True)
        journal.record(K.CAMPAIGN_CHECKPOINT_CAPTURE, target="m0",
                       depth=8, label="gmp@8")
        rows = [
            ("fuzz_0", [], 0, 3, True, None),
            ("fuzz_1", ["GMP-SELF-DEATH"], 2, 1, False, "dead"),
            ("fuzz_2", [], 0, 0, False, None),
            ("fuzz_3", [], 0, 0, False, None),
        ]
        coverage = 0
        journal.record(K.CAMPAIGN_PHASE_START, name="dispatch")
        for index, (label, codes, violations, fresh,
                    corpus, outcome) in enumerate(rows[:budget]):
            coverage += fresh
            journal.record(K.CAMPAIGN_RUN_END, index=index, label=label,
                           target="m0", ok=not codes, codes=codes,
                           violations=violations, new_coverage=fresh,
                           coverage_total=coverage, corpus=corpus,
                           outcome=outcome)
        if end:  # a killed sweep never closes its phase span
            journal.record(K.CAMPAIGN_PHASE_END, name="dispatch")
            journal.record(K.CAMPAIGN_END, status="ok",
                           executed=min(budget, len(rows)), findings=1)
    return path


class TestSummarize:
    def test_complete_sweep(self, tmp_path):
        summary = summarize_journal(_write_sweep(tmp_path / "j.jsonl"))
        assert summary.engine == "fuzz"
        assert summary.schema == SCHEMA_VERSION
        assert summary.completed
        assert summary.executed == 4
        assert summary.total == 6
        assert [row.label for row in summary.findings] == ["fuzz_1"]
        assert summary.coverage_total == 4
        assert summary.corpus_size == 1
        assert summary.codes_histogram() == {"GMP-SELF-DEATH": 1}
        assert len(summary.checkpoints) == 1

    def test_interrupted_sweep_reports_partial_scorecard(self, tmp_path):
        path = _write_sweep(tmp_path / "j.jsonl", end=False)
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])  # tear the final run_end line
        summary = summarize_journal(path)
        assert not summary.completed
        assert summary.torn_tail_bytes > 0
        assert summary.executed == 3  # the torn fourth row is not invented
        assert len(summary.findings) == 1

    def test_last_start_segment_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_sweep(path, budget=6)
        with Journal(path) as journal:  # append a second flight
            journal.start("shrink", code="GMP-SELF-DEATH")
            journal.record(K.CAMPAIGN_SHRINK_STEP, probe=1,
                           still_violates=True)
            journal.record(K.CAMPAIGN_END, status="ok")
        summary = summarize_journal(path)
        assert summary.engine == "shrink"
        assert summary.executed == 0
        assert summary.shrink_steps == 1

    def test_replay_object_accepted(self, tmp_path):
        replay = replay_journal(_write_sweep(tmp_path / "j.jsonl"))
        assert summarize_journal(replay).executed == 4

    def test_fingerprint_pairs_same_experiment(self, tmp_path):
        full = summarize_journal(_write_sweep(tmp_path / "a.jsonl"))
        partial_path = _write_sweep(tmp_path / "b.jsonl", end=False)
        partial = summarize_journal(partial_path)
        other = summarize_journal(
            _write_sweep(tmp_path / "c.jsonl", budget=3))
        assert full.fingerprint() == partial.fingerprint()
        assert full.fingerprint() != other.fingerprint()


class TestRanking:
    def test_violations_dominate_then_coverage_then_rarity(self, tmp_path):
        summary = summarize_journal(_write_sweep(tmp_path / "j.jsonl"))
        ranked = rank_scenarios(summary)
        assert ranked[0].row.label == "fuzz_1"  # 2 violations -> score > 20
        assert ranked[0].score == 2 * 10 + 1 + 1.0  # unique signature
        assert ranked[1].row.label == "fuzz_0"  # 3 coverage keys
        # clean runs share a signature -> rarity 1/3 each, index ties
        assert [r.row.label for r in ranked[2:]] == ["fuzz_2", "fuzz_3"]
        assert ranked[2].rarity == 1 / 3

    def test_limit(self, tmp_path):
        summary = summarize_journal(_write_sweep(tmp_path / "j.jsonl"))
        assert len(rank_scenarios(summary, limit=2)) == 2

    def test_deterministic_across_replays(self, tmp_path):
        path = _write_sweep(tmp_path / "j.jsonl")
        first = [(r.row.label, r.score)
                 for r in rank_scenarios(summarize_journal(path))]
        second = [(r.row.label, r.score)
                  for r in rank_scenarios(summarize_journal(path))]
        assert first == second


class TestRenderers:
    def test_text_scorecard(self, tmp_path):
        summary = summarize_journal(_write_sweep(tmp_path / "j.jsonl"))
        text = render_text(summary)
        assert "campaign flight record: fuzz" in text
        assert "protocol=gmp" in text and "seed=0" in text
        assert "completed" in text
        assert "executed 4/6 runs" in text
        assert "coverage 4 keys" in text
        assert "findings 1" in text
        assert "GMP-SELF-DEATH" in text
        assert "top scenarios by bug yield:" in text
        assert "checkpoints captured: gmp@8" in text

    def test_text_marks_interruption(self, tmp_path):
        path = _write_sweep(tmp_path / "j.jsonl", end=False)
        path.write_bytes(path.read_bytes()[:-7])
        text = render_text(summarize_journal(path))
        assert "INTERRUPTED" in text
        assert "torn tail" in text

    def test_json_shape(self, tmp_path):
        summary = summarize_journal(_write_sweep(tmp_path / "j.jsonl"))
        payload = summary_to_json(summary)
        json.dumps(payload)  # must be serializable as-is
        assert payload["engine"] == "fuzz"
        assert payload["executed"] == 4 and payload["total"] == 6
        assert payload["findings"] == 1
        assert payload["codes"] == {"GMP-SELF-DEATH": 1}
        assert len(payload["runs"]) == 4
        assert payload["ranking"][0]["label"] == "fuzz_1"
        assert payload["fingerprint"] == summary.fingerprint()

    def test_html_is_self_contained(self, tmp_path):
        summary = summarize_journal(_write_sweep(tmp_path / "j.jsonl"))
        page = render_html(summary)
        assert page.startswith("<!DOCTYPE html>")
        assert "GMP-SELF-DEATH" in page
        assert "fuzz_1" in page
        assert "src=" not in page and "href=" not in page  # no assets
        assert "<style>" in page

    def test_telemetry_rows_reproduce_live_scorecard(self, tmp_path):
        """Replayed telemetry renders the exact table a live run prints."""
        from repro.obs.telemetry import render_scorecard_rows
        telemetry = RunTelemetry(wall_s=2.0, events=100, virtual_s=500.0,
                                 trace_entries=7)
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.start("campaign", seed=7, configs=1)
            journal.record(K.CAMPAIGN_RUN_END, index=0, label="cfg_a",
                           ok=True, telemetry=telemetry.as_dict())
            journal.record(K.CAMPAIGN_END, status="ok")
        text = render_text(summarize_journal(path))
        live = render_scorecard_rows([("cfg_a", telemetry)])
        assert live in text

    def test_empty_summary_renders(self):
        text = render_text(CampaignSummary(path=None))
        assert "executed 0 runs" in text


class TestPrefixSharing:
    def _write_grouped(self, path):
        with Journal(path) as journal:
            journal.start("campaign", seed=5, configs=4)
            journal.record(K.CAMPAIGN_CHECKPOINT_CAPTURE, prefix="warm-a",
                           label="campaign/warm-a", identity="abc",
                           time=5.0, entries=10, configs=3)
            for index, (prefix, forked, cached) in enumerate(
                    [("warm-a", True, False), ("warm-a", True, False),
                     ("warm-a", False, False), ("warm-b", False, True)]):
                journal.record(K.CAMPAIGN_RUN_END, index=index,
                               label=f"cfg{index}", ok=True, codes=[],
                               prefix=prefix, forked=forked, cached=cached)
            journal.record(K.CAMPAIGN_END, status="ok", executed=4,
                           prefix_captures=1, prefix_forks=2,
                           prefix_fallbacks=1)
        return path

    def test_sharing_folds_groups(self, tmp_path):
        summary = summarize_journal(self._write_grouped(tmp_path / "j.jsonl"))
        sharing = summary.prefix_sharing()
        assert sharing["captures"] == 1
        assert sharing["forks"] == 2
        assert sharing["fallbacks"] == 1
        assert sharing["groups"]["warm-a"] == {
            "captures": 1, "runs": 3, "forks": 2, "cached": 0}
        assert sharing["groups"]["warm-b"] == {
            "captures": 0, "runs": 1, "forks": 0, "cached": 1}

    def test_sharing_renders_in_text_json_and_html(self, tmp_path):
        summary = summarize_journal(self._write_grouped(tmp_path / "j.jsonl"))
        text = render_text(summary)
        assert "prefix sharing: 1 captures, 2 forked runs, " \
            "1 cold fallbacks" in text
        assert "capture hits / forks" in text
        assert "warm-a" in text
        payload = summary_to_json(summary)
        assert payload["prefix_sharing"]["forks"] == 2
        json.dumps(payload)  # stays serializable
        html = render_html(summary)
        assert "Prefix sharing" in html and "warm-b" in html

    def test_ungrouped_journal_has_no_sharing(self, tmp_path):
        summary = summarize_journal(_write_sweep(tmp_path / "j.jsonl"))
        assert summary.prefix_sharing() is None
        assert "prefix sharing" not in render_text(summary)
        assert summary_to_json(summary)["prefix_sharing"] is None
        assert "Prefix sharing" not in render_html(summary)
