"""Known-bug detection: every seeded historical bug trips its invariant.

The complement of the no-false-positive suite: each of the four
switchable bugs in :mod:`repro.gmp.bugs` -- the ones the paper's PFI
experiments originally uncovered -- must be flagged by the GMP pack with
its expected violation code when armed.  Together the two suites pin the
oracle's discrimination: silent on the fixed daemon, loud on each bug.
"""

import pytest

from repro.experiments.gmp_common import build_gmp_cluster
from repro.experiments.gmp_packet_interruption import execute_self_death
from repro.experiments.gmp_proclaim import execute_proclaim_forwarding
from repro.experiments.gmp_timer import execute_timer_test
from repro.gmp import BugFlags
from repro.oracle import evaluate, gmp_pack


def test_self_death_bug_is_flagged():
    # the drop-all-heartbeats scenario with the as-delivered daemon:
    # the machine proclaims its own death (GMP-SELF-DEATH) and, while
    # self-"dead", mangles the forwarded PROCLAIM (GMP-FWD-PARAM)
    cluster = execute_self_death(bugs_on=True, seed=0)
    report = evaluate(cluster.trace, gmp_pack())
    assert "GMP-SELF-DEATH" in report.codes()
    assert "GMP-FWD-PARAM" in report.codes()


def test_proclaim_reply_bug_is_flagged():
    cluster, _start = execute_proclaim_forwarding(bugs_on=True, seed=0)
    report = evaluate(cluster.trace, gmp_pack())
    assert report.codes() == ("GMP-PROCLAIM-REPLY",)


def test_inverted_timer_bug_is_flagged():
    cluster, _start, _armed = execute_timer_test(bugs_on=True, seed=0)
    report = evaluate(cluster.trace, gmp_pack())
    assert report.codes() == ("GMP-TIMER",)


def test_reply_to_sender_bug_fires_without_any_faults():
    # this is why the fuzzer excludes the variant from its target list
    # (see GMP_VARIANTS in repro.oracle.fuzz): plain group formation is
    # enough to start the proclaim loop, no injected fault required
    cluster = build_gmp_cluster(
        [1, 2, 3], default_bugs=BugFlags(proclaim_reply_to_sender=True))
    cluster.start()
    cluster.run_until(15.0)
    report = evaluate(cluster.trace, gmp_pack())
    assert "GMP-PROCLAIM-REPLY" in report.codes()


@pytest.mark.parametrize("bug,code", [
    ("self_death", "GMP-SELF-DEATH"),
    ("proclaim_reply_to_sender", "GMP-PROCLAIM-REPLY"),
    ("inverted_timer_unregister", "GMP-TIMER"),
])
def test_every_bug_flag_has_a_dedicated_code(bug, code):
    # documentation-grade mapping check: the flag exists on BugFlags and
    # its code is registered in the pack
    assert hasattr(BugFlags(), bug)
    assert code in {inv.code for inv in gmp_pack()}


def test_forward_param_code_is_registered():
    # proclaim_forward_param only manifests while self-"dead", so its
    # end-to-end detection rides test_self_death_bug_is_flagged above
    assert "GMP-FWD-PARAM" in {inv.code for inv in gmp_pack()}
    assert hasattr(BugFlags(), "proclaim_forward_param")
