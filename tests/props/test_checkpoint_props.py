"""The checkpoint engine's contract: forked continuations are
byte-identical to cold replays.

Every property here compares a run that forked a warmed prefix
checkpoint against the same configuration replayed cold from t=0 --
trace (canonically dumped, volatile message uids excluded), run result,
and oracle verdicts all have to match exactly, across every TCP vendor
profile and GMP bug variant.  This equality is what licenses the
fuzzer, the shrinker and the explorer to substitute forks for cold
starts: they are not approximations of the old behavior, they *are*
the old behavior, reached faster.
"""

import copy
import random

import pytest

from repro.analysis.export import VOLATILE_ATTRS, dump_trace
from repro.core.checkpoint import Checkpoint
from repro.core.distributions import DistributionSet
from repro.core.orchestrator import make_env
from repro.oracle import evaluate
from repro.oracle.fuzz import (GMP_VARIANTS, _continue_body, _gmp_prefix,
                               _tcp_prefix, fuzz_body, pack_for, run_fuzz)
from repro.oracle.grammar import generate_script
from repro.tcp import VENDORS


def canon(trace) -> str:
    return dump_trace(trace, exclude_attrs=VOLATILE_ATTRS)


def _config(protocol: str, target: str, depth: float, index: int = 0):
    script = generate_script(random.Random(index), protocol, index=index)
    return {"protocol": protocol, "target": target,
            "script": script.source, "init_script": script.init,
            "direction": script.direction, "install_at": depth}


def _cold(config, seed: int):
    env = make_env(seed=seed)
    result = fuzz_body(env, config)
    return env, result


def _forked(config, seed: int, depth: float):
    env = make_env(seed=seed)
    prefix = (_tcp_prefix if config["protocol"] == "tcp"
              else _gmp_prefix)
    roots = prefix(env, config, depth)
    checkpoint = Checkpoint.capture(env, roots)
    forked = checkpoint.fork()
    result = _continue_body(forked.env, forked.roots, dict(config))
    return forked.env, result


def _assert_identical(config, seed: int, depth: float, oracle):
    cold_env, cold_result = _cold(config, seed)
    fork_env, fork_result = _forked(config, seed, depth)
    assert fork_result == cold_result
    assert canon(fork_env.trace) == canon(cold_env.trace)
    cold_verdict = evaluate(cold_env.trace, oracle()).violations
    fork_verdict = evaluate(fork_env.trace, oracle()).violations
    assert ([v.fingerprint() for v in fork_verdict]
            == [v.fingerprint() for v in cold_verdict])


@pytest.mark.parametrize("vendor", sorted(VENDORS))
def test_tcp_fork_byte_identical_to_cold(vendor):
    # depth 5.0 checkpoints mid-stream: handshake done, segments and
    # their retransmission timers in flight
    config = _config("tcp", vendor, 5.0)
    _assert_identical(config, seed=42, depth=5.0,
                      oracle=pack_for("tcp"))


@pytest.mark.parametrize("variant", GMP_VARIANTS + ("fixed",))
def test_gmp_fork_byte_identical_to_cold(variant):
    config = _config("gmp", variant, 8.0, index=1)
    _assert_identical(config, seed=7, depth=8.0,
                      oracle=pack_for("gmp"))


def test_reseeded_fork_matches_cold_run_of_that_seed():
    # one captured prefix serves many run seeds: fork(seed=s) must land
    # byte-identically on the cold run under s, for every s
    config = _config("gmp", "self_death", 8.0)
    env = make_env(seed=0)
    roots = _gmp_prefix(env, config, 8.0)
    checkpoint = Checkpoint.capture(env, roots)
    for seed in (0, 7, 123456789):
        forked = checkpoint.fork(seed=seed)
        fork_result = _continue_body(forked.env, forked.roots,
                                     dict(config))
        cold_env, cold_result = _cold(config, seed)
        assert fork_result == cold_result, seed
        assert canon(forked.env.trace) == canon(cold_env.trace), seed


def test_fork_determinism_fork_vs_fork():
    config = _config("gmp", "inverted_timer", 8.0)
    env = make_env(seed=5)
    roots = _gmp_prefix(env, config, 8.0)
    checkpoint = Checkpoint.capture(env, roots)

    def run_one():
        forked = checkpoint.fork()
        _continue_body(forked.env, forked.roots, dict(config))
        return canon(forked.env.trace)

    assert run_one() == run_one()


# ----------------------------------------------------------------------
# RNG stream restore determinism
# ----------------------------------------------------------------------

def test_distribution_deepcopy_resumes_mid_stream():
    stream = DistributionSet(5, labels=("a",))
    consumed = [stream.dst_uniform(0, 1) for _ in range(3)]
    clone = copy.deepcopy(stream)
    assert clone.draws == stream.draws == 3
    assert clone.labels == ("a",) and clone.seed == 5
    # both continue the stream identically, independently
    assert [clone.dst_uniform(0, 1) for _ in range(5)] \
        == [stream.dst_uniform(0, 1) for _ in range(5)]
    assert consumed  # the prefix draws were real


def test_distribution_reseed_restarts_stream():
    stream = DistributionSet(5)
    first = stream.dst_normal(0, 1)
    stream.dst_normal(0, 1)
    stream.reseed(5)
    assert stream.draws == 0
    assert stream.dst_normal(0, 1) == first


def test_link_deepcopy_shares_rng_state():
    from repro.netsim.link import Link
    from repro.netsim.scheduler import Scheduler
    sched = Scheduler()
    link = Link(sched, lambda payload: None, jitter=0.01,
                rng=random.Random(3))
    for _ in range(4):
        link.send(b"x")
    clone = copy.deepcopy(link)
    assert clone.rng_draws == link.rng_draws == 4
    assert clone._rng.getstate() == link._rng.getstate()
    assert clone._rng is not link._rng


# ----------------------------------------------------------------------
# consumer equivalence: fuzzing and shrinking
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fuzz_pair():
    legacy = run_fuzz("gmp", seed=3, budget=12)
    engine = run_fuzz("gmp", seed=3, budget=12, checkpoint_depth=8.0)
    return legacy, engine


def test_run_fuzz_engine_reports_match_legacy(fuzz_pair):
    legacy, engine = fuzz_pair
    assert engine.executed == legacy.executed
    assert engine.coverage == legacy.coverage
    assert [c.script.name for c in engine.corpus] \
        == [c.script.name for c in legacy.corpus]
    assert [(f.case.script.name, f.codes, f.violation_count)
            for f in engine.findings] \
        == [(f.case.script.name, f.codes, f.violation_count)
            for f in legacy.findings]


def test_run_fuzz_engine_reports_speed_and_hit_rate(fuzz_pair):
    _legacy, engine = fuzz_pair
    assert engine.checkpoint_depth == 8.0
    assert engine.trials_per_sec > 0
    # 12 trials over at most 4 targets: most trials reuse a capture
    assert engine.checkpoint_hit_rate is not None
    assert engine.checkpoint_hit_rate >= 0.5
    assert "checkpointed @ depth 8" in engine.render()


def test_shrink_probes_checkpointed_equals_cold(fuzz_pair):
    from repro.oracle.shrink import shrink_case
    legacy, _engine = fuzz_pair
    finding = legacy.findings[0]
    code = finding.codes[0]
    warm, warm_stats = shrink_case(finding.case, code, campaign_seed=3,
                                   checkpoint=True)
    cold, cold_stats = shrink_case(finding.case, code, campaign_seed=3,
                                   checkpoint=False)
    assert warm.script.source == cold.script.source
    assert warm.case_seed == cold.case_seed
    assert warm_stats.runs == cold_stats.runs
    assert warm_stats.clauses_after == cold_stats.clauses_after
