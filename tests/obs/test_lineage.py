"""Causal message lineage reconstructed from PFI traces."""

from repro.analysis.export import dump_trace, load_trace
from repro.netsim.trace import TraceRecorder
from repro.obs.lineage import Lineage


def delay_dup_filter(ctx):
    """First message: delay + duplicate + inject a probe."""
    if not ctx.state.get("fired"):
        ctx.state["fired"] = True
        ctx.delay(0.5)
        ctx.duplicate(1)
        ctx.inject("PROBE", direction="send", x=1)


class TestEdgesFromHarness:
    def test_duplicate_edge_points_at_original(self, harness):
        harness.pfi.set_send_filter(delay_dup_filter)
        msg = harness.send_down("DATA")
        harness.run(2.0)
        lineage = Lineage.from_trace(harness.env.trace)
        dup = harness.env.trace.first("pfi.duplicate")
        assert lineage.parent_of(dup["uid"]) == (msg.uid, "duplicate")

    def test_inject_edge_names_triggering_message(self, harness):
        harness.pfi.set_send_filter(delay_dup_filter)
        msg = harness.send_down("DATA")
        harness.run(2.0)
        lineage = Lineage.from_trace(harness.env.trace)
        inj = harness.env.trace.first("pfi.inject")
        assert lineage.parent_of(inj["uid"]) == (msg.uid, "inject")

    def test_root_of_walks_to_origin(self, harness):
        harness.pfi.set_send_filter(delay_dup_filter)
        msg = harness.send_down("DATA")
        harness.run(2.0)
        lineage = Lineage.from_trace(harness.env.trace)
        for entry in harness.env.trace.entries_with_prefix("pfi."):
            assert lineage.root_of(entry["uid"]) == msg.uid
        assert lineage.roots() == [msg.uid]

    def test_tree_collects_children_and_events(self, harness):
        harness.pfi.set_send_filter(delay_dup_filter)
        msg = harness.send_down("DATA")
        harness.run(2.0)
        tree = Lineage.from_trace(harness.env.trace).tree(msg.uid)
        assert tree.relation == "root"
        assert {child.relation for child in tree.children} == {
            "duplicate", "inject"}
        assert any(e.kind == "pfi.delay" for e in tree.events)
        assert len(list(tree.walk())) == 3


class TestHoldRelease:
    def test_held_then_released_uid_keeps_its_events(self, harness):
        harness.pfi.set_send_filter(lambda ctx: ctx.hold("q"))
        held = harness.send_down("DATA")
        harness.pfi.set_send_filter(lambda ctx: ctx.release("q"))
        harness.send_down("DATA")
        harness.run(1.0)
        lineage = Lineage.from_trace(harness.env.trace)
        kinds = [e.kind for e in lineage.events_of(held.uid)]
        assert kinds == ["pfi.hold", "pfi.release"]


class TestArchivedRuns:
    def test_lineage_survives_export_roundtrip(self, harness):
        """The acceptance path: report from a JSON-lines archive."""
        harness.pfi.set_send_filter(delay_dup_filter)
        msg = harness.send_down("DATA")
        harness.run(2.0)
        loaded = load_trace(dump_trace(harness.env.trace))
        lineage = Lineage.from_trace(loaded)
        assert lineage.roots() == [msg.uid]
        assert lineage.derived_count() == 2

    def test_generic_parent_edge_uses_relation_attr(self):
        trace = TraceRecorder(clock=lambda: 0.0)
        trace.record("rel.retransmit", t=1.0, uid=11, parent=10,
                     relation="retransmit")
        lineage = Lineage.from_trace(trace)
        assert lineage.parent_of(11) == (10, "retransmit")

    def test_cycle_does_not_hang_root_of(self):
        trace = TraceRecorder(clock=lambda: 0.0)
        trace.record("x.edge", t=0.0, uid=1, parent=2)
        trace.record("x.edge", t=0.0, uid=2, parent=1)
        lineage = Lineage.from_trace(trace)
        assert lineage.root_of(1) in (1, 2)


class TestRender:
    def test_render_shows_chain_with_relations(self, harness):
        harness.pfi.set_send_filter(delay_dup_filter)
        msg = harness.send_down("DATA")
        harness.run(2.0)
        text = Lineage.from_trace(harness.env.trace).render(msg.uid)
        assert f"uid {msg.uid}" in text
        assert "[duplicate]" in text
        assert "[inject]" in text
        assert "pfi.delay" in text

    def test_render_empty_lineage(self):
        assert "no derived messages" in Lineage.from_trace([]).render()
