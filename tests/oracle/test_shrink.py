"""Shrinker properties: subsequence, verdict preservation, determinism."""

import pytest

from repro.oracle.fuzz import run_fuzz
from repro.oracle.shrink import (ReproArtifact, artifact_name, ddmin,
                                 make_artifact, replay_artifact,
                                 shrink_case, shrink_finding)


def is_subsequence(shorter, longer):
    it = iter(longer)
    return all(item in it for item in shorter)


# ----------------------------------------------------------------------
# ddmin on plain lists
# ----------------------------------------------------------------------

def test_ddmin_finds_a_minimal_subsequence():
    items = list(range(1, 9))
    result = ddmin(items, lambda cand: {3, 6} <= set(cand))
    assert result == [3, 6]


def test_ddmin_preserves_order():
    items = ["a", "b", "c", "d", "e"]
    result = ddmin(items, lambda cand: "d" in cand and "b" in cand)
    assert result == ["b", "d"]
    assert is_subsequence(result, items)


def test_ddmin_on_singleton_returns_it():
    assert ddmin([1], lambda cand: True) == [1]


def test_ddmin_never_calls_test_with_empty_input():
    calls = []

    def test(cand):
        calls.append(list(cand))
        return 5 in cand

    assert ddmin(list(range(10)), test) == [5]
    assert all(calls), "ddmin probed an empty candidate"


# ----------------------------------------------------------------------
# shrinking real findings (deterministic: seed 0 reaches violations)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def finding():
    report = run_fuzz("gmp", seed=0, budget=24)
    assert report.findings
    return report.findings[0]


def test_shrunk_script_is_a_violating_subsequence(finding):
    shrunk, stats = shrink_case(finding.case, finding.codes[0],
                                campaign_seed=0)
    assert is_subsequence(list(shrunk.script.clauses),
                          list(finding.case.script.clauses))
    assert stats.clauses_after <= stats.clauses_before
    assert stats.runs >= 1
    # the shrunk case still reports the target code
    artifact = make_artifact(shrunk, finding.codes[0], campaign_seed=0)
    assert finding.codes[0] in artifact.codes


def test_shrink_rejects_a_non_reproducing_code(finding):
    with pytest.raises(ValueError, match="does not reproduce"):
        shrink_case(finding.case, "TCP-STATE", campaign_seed=0)


def test_artifact_replays_identically_across_two_runs(finding):
    artifact, _stats = shrink_finding(finding, campaign_seed=0)
    first = replay_artifact(artifact)
    second = replay_artifact(artifact)
    assert first.ok, first.mismatches
    assert second.ok, second.mismatches
    assert first.observed_codes == second.observed_codes


def test_artifact_round_trips_through_json(tmp_path, finding):
    artifact, _stats = shrink_finding(finding, campaign_seed=0)
    path = artifact.save(tmp_path / artifact_name(artifact))
    loaded = ReproArtifact.load(path)
    assert loaded.to_dict() == artifact.to_dict()
    assert replay_artifact(path).ok


def test_artifact_version_is_checked(tmp_path, finding):
    artifact, _stats = shrink_finding(finding, campaign_seed=0)
    data = artifact.to_dict()
    data["version"] = 999
    with pytest.raises(ValueError, match="version"):
        ReproArtifact.from_dict(data)


def test_replay_detects_a_tampered_verdict(finding):
    artifact, _stats = shrink_finding(finding, campaign_seed=0)
    tampered = ReproArtifact(
        case=artifact.case, code=artifact.code,
        campaign_seed=artifact.campaign_seed, codes=artifact.codes,
        violation_count=artifact.violation_count + 1,
        fingerprints=artifact.fingerprints)
    result = replay_artifact(tampered)
    assert not result.ok
    assert any("violation count" in m for m in result.mismatches)


def test_artifact_names_are_content_addressed(finding):
    artifact, _stats = shrink_finding(finding, campaign_seed=0)
    name = artifact_name(artifact)
    assert name == artifact_name(artifact)  # rerun-stable
    assert name.startswith("gmp_")
    assert name.endswith(".json")
    assert artifact.code.lower() in name
