"""Experiment GMP-2 (paper Table 6): network partitions.

Sub-experiment A -- oscillating two-way partition: five machines'
send filters "oscillate between two states": full connectivity, and a
state where compsun{1-3} only reach each other and compsun{4,5} are
similarly isolated.  Expected: during partitioned phases, two separate but
disjoint groups; after healing, one group of all five; repeat.

Sub-experiment B -- leader/crown-prince separation: only the traffic
between the leader and the crown prince is dropped.  Two event orderings
are possible depending on who detects the loss first, but both end in the
same state: "the crown prince was in a singleton group by itself, and
everyone else was in a group with the leader."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core import ScriptContext
from repro.experiments.gmp_common import build_gmp_cluster

WORLD5 = [1, 2, 3, 4, 5]
GROUP_A = (1, 2, 3)
GROUP_B = (4, 5)
PHASE = 30.0  # seconds per oscillation phase


@dataclass
class PartitionResult:
    """Oscillating partition sub-experiment."""

    disjoint_groups_formed: bool
    groups_during_partition: Tuple[Tuple[int, ...], Tuple[int, ...]]
    merged_after_heal: bool
    cycles_observed: int


@dataclass
class SeparationResult:
    """Leader/crown-prince separation sub-experiment."""

    first_mover: int                 # who sent the first MEMBERSHIP_CHANGE
    crown_prince_singleton: bool
    leader_group: Tuple[int, ...]
    end_state_matches_paper: bool


def partition_send_filter(my_side: Set[int]):
    """Send filter: in odd phases, drop traffic leaving my side.

    The phase is derived from virtual time, so all machines' scripts flip
    state simultaneously without explicit synchronization -- scripts can
    also coordinate through ``ctx.sync``, exercised elsewhere.
    """
    def send_filter(ctx: ScriptContext) -> None:
        phase = int(ctx.now / PHASE) % 2
        if phase == 0:
            return
        dst = ctx.msg.meta.get("dst")
        if dst is not None and dst not in my_side:
            ctx.drop()
    return send_filter


def execute_oscillating_partition(*, seed: int = 0, cycles: int = 2):
    """Drive sub-experiment A; returns ``(cluster, split_ok, merged_ok)``
    with the per-cycle phase verdicts sampled while the run advanced."""
    cluster = build_gmp_cluster(WORLD5, seed=seed)
    cluster.start()
    cluster.run_until(PHASE - 5.0)          # settle inside phase 0 (whole)
    assert cluster.all_in_one_group(), "all five should group up first"

    for address in WORLD5:
        side = set(GROUP_A) if address in GROUP_A else set(GROUP_B)
        cluster.pfis[address].set_send_filter(partition_send_filter(side))

    merged_ok: List[bool] = []
    split_ok: List[bool] = []
    for cycle in range(cycles):
        # partitioned phase: sample views near its end
        split_end = (2 * cycle + 2) * PHASE
        cluster.run_until(split_end - 2.0)
        views = cluster.views()
        split_ok.append(
            all(views[a] == GROUP_A for a in GROUP_A)
            and all(views[a] == GROUP_B for a in GROUP_B))
        # healed phase: sample near its end
        heal_end = (2 * cycle + 3) * PHASE
        cluster.run_until(heal_end - 2.0)
        merged_ok.append(cluster.all_in_one_group())
    return cluster, split_ok, merged_ok


def run_oscillating_partition(*, seed: int = 0,
                              cycles: int = 2) -> PartitionResult:
    """Sub-experiment A."""
    _cluster, split_ok, merged_ok = execute_oscillating_partition(
        seed=seed, cycles=cycles)
    return PartitionResult(
        disjoint_groups_formed=all(split_ok),
        groups_during_partition=(GROUP_A, GROUP_B),
        merged_after_heal=all(merged_ok),
        cycles_observed=sum(1 for s, w in zip(split_ok, merged_ok) if s and w),
    )


def separation_filter(other: int, start_at: float):
    """Send filter: from ``start_at`` on, drop everything sent to ``other``."""
    def send_filter(ctx: ScriptContext) -> None:
        if ctx.now >= start_at and ctx.msg.meta.get("dst") == other:
            ctx.drop()
    return send_filter


def execute_leader_prince_separation(*, first_detector: str = "leader",
                                     seed: int = 0):
    """Drive sub-experiment B; returns ``(cluster, cut_time)``."""
    if first_detector not in ("leader", "prince"):
        raise ValueError("first_detector must be 'leader' or 'prince'")
    cluster = build_gmp_cluster(WORLD5, seed=seed)
    cluster.start()
    cluster.run_until(12.0)
    assert cluster.all_in_one_group()

    now = cluster.scheduler.now
    head_start = 1.2  # a heartbeat-and-a-bit: enough to order detection
    if first_detector == "leader":
        prince_cut, leader_cut = now, now + head_start
    else:
        prince_cut, leader_cut = now + head_start, now
    # prince_cut: when 2 stops reaching 1; leader_cut: when 1 stops reaching 2
    cluster.pfis[2].set_send_filter(separation_filter(1, prince_cut))
    cluster.pfis[1].set_send_filter(separation_filter(2, leader_cut))

    cluster.run_until(now + 60.0)
    return cluster, now


def run_leader_prince_separation(*, first_detector: str = "leader",
                                 seed: int = 0) -> SeparationResult:
    """Sub-experiment B, forcing one of the two event orderings.

    ``first_detector`` controls who stops *receiving* first and therefore
    who initiates the membership change first: cutting 2->1 early makes
    the leader (1) miss heartbeats first; cutting 1->2 early favours the
    crown prince (2).
    """
    cluster, now = execute_leader_prince_separation(
        first_detector=first_detector, seed=seed)
    trace = cluster.trace
    mc_events = [e for e in trace.entries("gmp.mc_sent") if e.time > now
                 and e.get("node") in (1, 2)]
    first_mover = mc_events[0].get("node") if mc_events else -1
    prince_view = cluster.daemons[2].view.members
    leader_view = cluster.daemons[1].view.members
    expected_leader_group = (1, 3, 4, 5)
    matches = (prince_view == (2,) and leader_view == expected_leader_group
               and all(cluster.daemons[a].view.members == expected_leader_group
                       for a in (3, 4, 5)))
    return SeparationResult(
        first_mover=first_mover,
        crown_prince_singleton=prince_view == (2,),
        leader_group=leader_view,
        end_state_matches_paper=matches,
    )


def run_all(seed: int = 0) -> Dict[str, object]:
    """Table 6: oscillating partition + both separation orderings."""
    return {
        "oscillating": run_oscillating_partition(seed=seed),
        "leader_detects_first": run_leader_prince_separation(
            first_detector="leader", seed=seed),
        "prince_detects_first": run_leader_prince_separation(
            first_detector="prince", seed=seed),
    }


def invariants():
    """The conformance pack that must hold over this experiment's traces."""
    from repro.oracle import gmp_pack
    return gmp_pack()


def conformance_runs(seed: int = 0):
    """Representative labelled traces for the conformance suite."""
    yield ("partition/oscillating",
           execute_oscillating_partition(seed=seed)[0].trace)
    for who in ("leader", "prince"):
        yield (f"partition/separation_{who}_first",
               execute_leader_prince_separation(
                   first_detector=who, seed=seed)[0].trace)
