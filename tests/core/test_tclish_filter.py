"""Tests for the TclishFilter bridge: the paper's Tcl scripts as filters."""

import pytest

from repro.core import TclishFilter
from repro.core.tclish import TclError


class TestTclishFilterBasics:
    def test_drop_all_acks_script(self, harness):
        script = TclishFilter("""
            set type [msg_type cur_msg]
            if {$type eq "ACK"} {
                xDrop cur_msg
            }
        """)
        harness.pfi.set_receive_filter(script)
        harness.send_up("ACK")
        harness.send_up("DATA")
        assert len(harness.top.received) == 1

    def test_counter_persists_across_messages(self, harness):
        script = TclishFilter("incr seen", init_script="set seen 0")
        harness.pfi.set_send_filter(script)
        for _ in range(7):
            harness.send_down()
        assert script.interp.eval("set seen") == "7"

    def test_pass_n_then_drop_script(self, harness):
        script = TclishFilter("""
            incr seen
            if {$seen > 3} { xDrop cur_msg }
        """, init_script="set seen 0")
        harness.pfi.set_receive_filter(script)
        for _ in range(6):
            harness.send_up()
        assert len(harness.top.received) == 3

    def test_delay_command(self, harness):
        harness.pfi.set_send_filter(TclishFilter("xDelay 2.5"))
        harness.send_down()
        assert harness.bottom.received == []
        harness.run()
        assert len(harness.bottom.received) == 1

    def test_duplicate_command(self, harness):
        harness.pfi.set_send_filter(TclishFilter("xDuplicate cur_msg 2"))
        harness.send_down()
        harness.run()
        assert len(harness.bottom.received) == 3

    def test_hold_and_release(self, harness):
        script = TclishFilter("""
            incr n
            if {$n == 1} {
                xHold cur_msg firstq
            } else {
                xRelease firstq
            }
        """, init_script="set n 0")
        harness.pfi.set_send_filter(script)
        harness.send_down(tag="one")
        harness.send_down(tag="two")
        harness.run()
        tags = [m.meta["tag"] for m in harness.bottom.received]
        assert tags == ["two", "one"]

    def test_held_count_command(self, harness):
        script = TclishFilter("""
            if {[held_count q] == 0} {
                xHold cur_msg q
            }
        """)
        harness.pfi.set_send_filter(script)
        harness.send_down()
        harness.send_down()
        assert harness.pfi.held_count("send", "q") == 1
        assert len(harness.bottom.received) == 1

    def test_inject_command(self, harness):
        script = TclishFilter("""
            if {!$injected} {
                set injected 1
                inject PROBE value 9
            }
        """, init_script="set injected 0")
        harness.pfi.set_send_filter(script)
        harness.send_down()
        harness.run()
        assert len(harness.bottom.received) == 2

    def test_msg_field_access(self, harness):
        from repro.xkernel.message import Message
        script = TclishFilter("""
            if {[msg_field seq] > 100} { xDrop cur_msg }
        """)
        harness.pfi.set_send_filter(script)
        harness.pfi.push(Message(payload={"seq": 50},
                                 meta={"type": "DATA"}))
        harness.pfi.push(Message(payload={"seq": 200},
                                 meta={"type": "DATA"}))
        assert len(harness.bottom.received) == 1
        assert harness.bottom.received[0].payload["seq"] == 50

    def test_msg_set_field(self, harness):
        from repro.xkernel.message import Message
        harness.pfi.set_send_filter(TclishFilter("msg_set_field seq 999"))
        harness.pfi.push(Message(payload={"seq": 1}, meta={"type": "DATA"}))
        assert harness.bottom.received[0].payload["seq"] == 999

    def test_msg_log_and_puts(self, harness):
        script = TclishFilter("""
            puts "saw [msg_type cur_msg] at [now]"
            msg_log cur_msg
        """)
        harness.pfi.set_receive_filter(script)
        harness.send_up("DATA")
        assert "saw DATA" in script.output_lines[0]
        assert len(harness.pfi.msglog) == 1

    def test_peer_communication(self, harness):
        send_script = TclishFilter("""
            incr n
            if {$n >= 2} { peer_set dropping 1 }
        """, init_script="set n 0")
        recv_script = TclishFilter("""
            if {[peer_get dropping 0]} { xDrop cur_msg }
        """)
        harness.pfi.set_send_filter(send_script)
        harness.pfi.set_receive_filter(recv_script)
        harness.send_up()
        harness.send_down()
        harness.send_down()
        harness.send_up()
        assert len(harness.top.received) == 1

    def test_sync_flags_shared_across_layers(self, harness):
        harness.pfi.set_send_filter(TclishFilter("sync_set partition 1"))
        harness.send_down()
        assert harness.env.sync.get_flag("partition") == 1
        harness.pfi.set_receive_filter(TclishFilter("""
            if {[sync_get partition 0]} { xDrop cur_msg }
        """))
        harness.send_up()
        assert harness.top.received == []

    def test_probabilistic_commands(self, harness):
        script = TclishFilter("""
            set draw [dst_uniform 0 1]
            if {$draw < 0} { error "impossible" }
            if {[chance 1.0]} { set always 1 }
            if {[chance 0.0]} { set never 1 }
        """)
        harness.pfi.set_send_filter(script)
        harness.send_down()
        assert script.interp.eval("set always") == "1"
        assert script.interp.eval("info exists never") == "0"

    def test_node_and_direction_commands(self, harness):
        script = TclishFilter('set who "[node_name]/[direction]"')
        harness.pfi.set_send_filter(script)
        harness.send_down()
        assert script.interp.eval("set who") == "testnode/send"

    def test_command_outside_message_context_raises(self):
        script = TclishFilter("xDrop cur_msg")
        with pytest.raises(TclError):
            script.interp.eval("xDrop cur_msg")

    def test_dst_normal_command(self, harness):
        script = TclishFilter("set v [dst_normal 100 1]")
        harness.pfi.set_send_filter(script)
        harness.send_down()
        value = float(script.interp.eval("set v"))
        assert 90 < value < 110

    def test_delay_without_args_is_usage_error(self, harness):
        harness.pfi.set_send_filter(TclishFilter("xDelay"))
        with pytest.raises(TclError, match="usage: xDelay"):
            harness.send_down()

    def test_delay_with_only_msg_token_is_usage_error(self, harness):
        harness.pfi.set_send_filter(TclishFilter("xDelay cur_msg"))
        with pytest.raises(TclError, match="usage: xDelay"):
            harness.send_down()
