"""Tests for post-paper extensions: simultaneous open, graceful leave,
and the TCP sequence-diagram extractor."""

import pytest

from repro.analysis.timeline import tcp_sequence
from repro.experiments.gmp_common import build_gmp_cluster
from repro.experiments.tcp_common import build_tcp_testbed, open_connection
from repro.tcp import SUNOS_413
from tests.tcp.conftest import ConnPair


class TestSimultaneousOpen:
    def test_both_ends_connect_at_once(self):
        pair = ConnPair()
        # neither listens: both actively open toward each other
        pair.a.remote_port = 80
        pair.b.remote_port = 5000
        pair.a.connect()
        pair.b.connect()
        pair.run(5.0)
        assert pair.a.established
        assert pair.b.established

    def test_data_flows_after_simultaneous_open(self):
        pair = ConnPair()
        pair.a.connect()
        pair.b.connect()
        pair.run(5.0)
        pair.a.send(b"simultaneous")
        pair.b.send(b"open")
        pair.run(10.0)
        assert bytes(pair.b.delivered) == b"simultaneous"
        assert bytes(pair.a.delivered) == b"open"


class TestGracefulLeave:
    def test_leave_triggers_prompt_membership_change(self):
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start()
        cluster.run_until(10.0)
        assert cluster.all_in_one_group()
        left_at = cluster.scheduler.now
        cluster.daemons[3].leave()
        cluster.run_until(left_at + 2.0)  # well under the 3.5 s timeout
        assert cluster.daemons[1].view.members == (1, 2)
        assert cluster.daemons[2].view.members == (1, 2)

    def test_leaving_leader_hands_over(self):
        cluster = build_gmp_cluster([1, 2, 3])
        cluster.start()
        cluster.run_until(10.0)
        cluster.daemons[1].leave()
        cluster.run_until(cluster.scheduler.now + 10.0)
        assert cluster.daemons[2].view.members == (2, 3)
        assert cluster.daemons[2].is_leader

    def test_left_daemon_ignores_traffic(self):
        cluster = build_gmp_cluster([1, 2])
        cluster.start()
        cluster.run_until(8.0)
        cluster.daemons[2].leave()
        received_before = cluster.trace.count("gmp.receive", node=2)
        cluster.run_until(cluster.scheduler.now + 10.0)
        assert cluster.trace.count("gmp.receive", node=2) == received_before


class TestTcpSequenceExtraction:
    def test_handshake_ladder(self):
        testbed = build_tcp_testbed(SUNOS_413)
        client, _server = open_connection(testbed)
        diagram = tcp_sequence(
            testbed.trace,
            {"vendor:5000": "vendor", "xkernel:80": "xkernel"})
        text = diagram.render()
        assert "SYN" in text
        assert "SYNACK" in text

    def test_dropped_segments_drawn_lost(self):
        testbed = build_tcp_testbed(SUNOS_413)
        client, _server = open_connection(testbed)
        testbed.pfi.set_receive_filter(lambda ctx: ctx.drop())
        client.send(b"D" * 512)
        testbed.env.run_until(20.0)
        diagram = tcp_sequence(
            testbed.trace,
            {"vendor:5000": "vendor", "xkernel:80": "xkernel"},
            include_acks=False)
        lost = [e for e in diagram.events if e.lost]
        assert lost
        assert any("(rtx)" in e.label for e in lost)

    def test_requires_exactly_two_lanes(self):
        testbed = build_tcp_testbed(SUNOS_413)
        with pytest.raises(ValueError):
            tcp_sequence(testbed.trace, {"a": "A"})
