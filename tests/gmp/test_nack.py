"""Tests for the NACK path of the two-phase membership change."""

from repro.core import ScriptContext
from repro.experiments.gmp_common import build_gmp_cluster
from repro.gmp.messages import GmpMessage, MEMBERSHIP_CHANGE, NACK
from repro.xkernel.message import Message


def test_stale_membership_change_is_nacked():
    cluster = build_gmp_cluster([1, 2])
    cluster.start()
    cluster.run_until(8.0)
    assert cluster.all_in_one_group()
    # forge a MEMBERSHIP_CHANGE with an already-committed (stale) gid and
    # inject it into daemon 2's receive path via the PFI layer
    stale_gid = cluster.daemons[2].view.group_id
    forged = Message(payload=GmpMessage(
        kind=MEMBERSHIP_CHANGE, sender=1, group_id=stale_gid,
        members=(1, 2)))
    forged.meta["dst"] = 2
    forged.meta["src"] = 1
    cluster.pfis[2].inject(forged, "receive")
    cluster.run_until(cluster.scheduler.now + 2.0)
    nacks = cluster.trace.entries("gmp.nack_sent", node=2)
    assert nacks
    assert nacks[0].get("reason") == "stale_gid"


def test_nack_resolves_pending_change_early():
    """A NACK lets the leader conclude phase one without waiting out the
    full ACK-collection timeout for the refusing member."""
    cluster = build_gmp_cluster([1, 2, 3])
    cluster.start(1, 2)
    cluster.run_until(8.0)

    def rewrite_ack_to_nack(ctx: ScriptContext) -> None:
        # byzantine: daemon 3's ACKs are flipped into NACKs in flight
        if ctx.msg_type() == "ACK":
            ctx.set_field("kind", NACK)

    cluster.pfis[3].set_send_filter(rewrite_ack_to_nack)
    cluster.start(3)
    cluster.run_until(60.0)
    # 3 is never committed (its acceptance always arrives as a refusal)
    assert 3 not in cluster.daemons[1].view.members
    # and the leader did receive the NACKs
    assert cluster.trace.count("gmp.receive", node=1, msg_kind="NACK") > 0


def test_in_transition_member_nacks_older_change():
    cluster = build_gmp_cluster([1, 2])
    cluster.start()
    cluster.run_until(8.0)
    daemon = cluster.daemons[2]
    current_gid = daemon.view.group_id
    # put 2 in transition for a high gid
    in_transition = Message(payload=GmpMessage(
        kind=MEMBERSHIP_CHANGE, sender=1, group_id=current_gid + 10,
        members=(1, 2)))
    in_transition.meta.update(dst=2, src=1)
    cluster.pfis[2].inject(in_transition, "receive")
    cluster.run_until(cluster.scheduler.now + 0.5)
    assert daemon.status == "IN_TRANSITION"
    # an older (but not stale-vs-view) change arrives: must be NACKed
    older = Message(payload=GmpMessage(
        kind=MEMBERSHIP_CHANGE, sender=1, group_id=current_gid + 5,
        members=(1, 2)))
    older.meta.update(dst=2, src=1)
    cluster.pfis[2].inject(older, "receive")
    cluster.run_until(cluster.scheduler.now + 0.5)
    reasons = [e.get("reason")
               for e in cluster.trace.entries("gmp.nack_sent", node=2)]
    assert "in_transition" in reasons
