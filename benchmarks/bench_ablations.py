"""Ablation benches: remove one design mechanism, show why it exists.

Four ablations, each isolating a mechanism the paper's experiments
surfaced:

1. **Karn's sample selection** -- feed a Jacobson estimator ambiguous
   samples (the pre-Karn bug) under delayed ACKs: the RTO collapses below
   the real RTT and every segment is retransmitted spuriously, forever.
2. **The Solaris global fault counter** -- under a long transient outage,
   the per-connection counter kills a connection that per-segment
   counting would have carried through.
3. **Out-of-order queueing (RFC-1122 SHOULD)** -- a receiver that drops
   out-of-order segments forces retransmission of data it already saw.
4. **Reliable-layer retransmissions under GMP** -- without them, lossy
   links stall group formation.
"""

import dataclasses
import random

from repro.analysis.tables import render_table
from repro.core import ScriptContext
from repro.experiments.gmp_common import build_gmp_cluster
from repro.experiments.tcp_common import (build_tcp_testbed,
                                          open_connection,
                                          stream_from_vendor)
from repro.tcp import SOLARIS_23, SUNOS_413
from repro.tcp.rtt import JacobsonKarnEstimator

from conftest import emit


# ----------------------------------------------------------------------
# 1. Karn's rule
# ----------------------------------------------------------------------

class JacobsonWithoutKarn(JacobsonKarnEstimator):
    """Jacobson smoothing, pre-Karn sample selection."""

    karn = False


def run_karn_ablation(use_karn: bool):
    testbed = build_tcp_testbed(SUNOS_413, seed=1)
    client, _server = open_connection(testbed)
    if not use_karn:
        ablated = JacobsonWithoutKarn(SUNOS_413)
        client.estimator = ablated
        client.retx.estimator = ablated

    def delay_acks(ctx: ScriptContext) -> None:
        if ctx.msg_type() == "ACK":
            ctx.delay(3.0)

    testbed.pfi.set_send_filter(delay_acks)
    # stop-and-go traffic: one segment every 4 s, so every ACK arrives
    # after the first retransmission and is ambiguous.  Karn retains the
    # backed-off RTO and goes quiet; the pre-Karn estimator samples the
    # ambiguous ACK against the *retransmission* time, underestimates the
    # RTT, resets its backoff, and retransmits spuriously forever.
    stream_from_vendor(testbed, client, segments=15, interval=4.0)
    testbed.env.run_until(70.0)
    retransmissions = testbed.trace.count("tcp.retransmit",
                                          conn="vendor:5000")
    return {
        "karn": use_karn,
        "retransmissions": retransmissions,
        "final_rto": client.retx.current_rto(),
        "survived": client.state != "CLOSED",
    }


def test_ablation_karn_rule(once_benchmark):
    with_karn = once_benchmark(run_karn_ablation, True)
    without = run_karn_ablation(False)
    emit("Ablation 1: Karn's sample selection under 3 s delayed ACKs",
         render_table("spurious retransmissions over an 80 s transfer",
                      ["Estimator", "Retransmissions", "Final RTO",
                       "Survived"],
                      [["Jacobson + Karn", with_karn["retransmissions"],
                        f"{with_karn['final_rto']:.2f} s",
                        with_karn["survived"]],
                       ["Jacobson, no Karn",
                        without["retransmissions"],
                        f"{without['final_rto']:.2f} s",
                        without["survived"]]]))
    # Karn retains its backoff above the delay and goes quiet; the
    # ablated stack keeps retransmitting spuriously
    assert with_karn["final_rto"] > 3.0
    assert without["final_rto"] < with_karn["final_rto"]
    assert without["retransmissions"] > 2 * max(1, with_karn["retransmissions"])


# ----------------------------------------------------------------------
# 2. the global fault counter
# ----------------------------------------------------------------------

def run_fault_counter_ablation(global_counter: bool):
    profile = SOLARIS_23 if global_counter else dataclasses.replace(
        SOLARIS_23, global_fault_threshold=None, max_retransmits=12)
    testbed = build_tcp_testbed(profile, seed=2)
    client, server = open_connection(testbed)

    outage = {"active": False}

    def outage_filter(ctx: ScriptContext) -> None:
        if outage["active"]:
            ctx.drop()

    testbed.pfi.set_receive_filter(outage_filter)
    client.send(b"B" * 512)
    testbed.env.run_until(2.0)
    # a 90-second transient outage, then the network heals
    outage["active"] = True
    client.send(b"C" * 512)
    testbed.scheduler.schedule(90.0, outage.__setitem__, "active", False)
    testbed.env.run_until(400.0)
    return {
        "global_counter": global_counter,
        "survived": client.state != "CLOSED",
        "close_reason": client.close_reason,
        "delivered": len(server.delivered),
    }


def test_ablation_global_fault_counter(once_benchmark):
    with_counter = once_benchmark(run_fault_counter_ablation, True)
    without = run_fault_counter_ablation(False)
    emit("Ablation 2: the Solaris global fault counter vs a 90 s outage",
         render_table("connection fate across a transient outage",
                      ["Counting", "Survived", "Bytes through"],
                      [["global counter (9)", with_counter["survived"],
                        with_counter["delivered"]],
                       ["per-segment (12)", without["survived"],
                        without["delivered"]]]))
    assert not with_counter["survived"], \
        "the global counter should kill the connection mid-outage"
    assert without["survived"], \
        "per-segment counting should ride out the outage"


# ----------------------------------------------------------------------
# 3. out-of-order queueing
# ----------------------------------------------------------------------

def run_ooo_ablation(queue_ooo: bool):
    profile = dataclasses.replace(SUNOS_413, queue_out_of_order=queue_ooo)
    testbed = build_tcp_testbed(profile, seed=3)
    # the vendor is the receiver under test here: x-kernel sends
    server = testbed.vendor_tcp.listen(80)
    client = testbed.xkernel_tcp.open_connection(
        local_port=6000, remote_address=1, remote_port=80)
    client.connect()
    testbed.env.run_until(0.5)

    def swap_pairs(ctx: ScriptContext) -> None:
        if ctx.msg_type() != "DATA":
            return
        seq = ctx.field("seq")
        seen = ctx.state.setdefault("seen", set())
        if seq in seen:
            return  # retransmissions pass straight through
        seen.add(seq)
        if not ctx.state.get("holding"):
            ctx.state["holding"] = True
            ctx.hold("pair")
        else:
            ctx.state["holding"] = False
            ctx.release("pair")

    testbed.pfi.set_send_filter(swap_pairs)
    payload = b"D" * (512 * 8)
    client.send(payload)
    # the drop-policy receiver recovers one gap per (backed-off) RTO
    # cycle, so give the transfer plenty of virtual time
    testbed.env.run_until(500.0)
    return {
        "queue_ooo": queue_ooo,
        "retransmissions": testbed.trace.count("tcp.retransmit",
                                               conn="xkernel:6000"),
        "delivered_ok": bytes(server.delivered) == payload,
        "ooo_dropped": testbed.trace.count("tcp.ooo_dropped",
                                           conn="vendor:80"),
    }


def test_ablation_out_of_order_queueing(once_benchmark):
    queueing = once_benchmark(run_ooo_ablation, True)
    dropping = run_ooo_ablation(False)
    emit("Ablation 3: queueing vs dropping out-of-order segments",
         render_table("8-segment transfer with every pair swapped in flight",
                      ["Receiver policy", "Sender retransmissions",
                       "Delivered intact"],
                      [["queue (RFC-1122 SHOULD)",
                        queueing["retransmissions"],
                        queueing["delivered_ok"]],
                       ["drop", dropping["retransmissions"],
                        dropping["delivered_ok"]]]))
    assert queueing["delivered_ok"] and dropping["delivered_ok"]
    assert dropping["ooo_dropped"] > 0
    assert queueing["retransmissions"] == 0
    assert dropping["retransmissions"] > queueing["retransmissions"], \
        "dropping OOO segments must cost retransmissions (the RFC's point)"


# ----------------------------------------------------------------------
# 4. reliable-layer retransmissions under GMP
# ----------------------------------------------------------------------

def run_reliable_ablation(max_retries: int, seed: int = 5):
    cluster = build_gmp_cluster([1, 2, 3], seed=seed)
    rng = random.Random(seed)
    for address in cluster.world:
        channel = cluster.pfis[address].above  # the reliable layer
        channel.max_retries = max_retries

        def lossy(ctx: ScriptContext, _rng=rng) -> None:
            if _rng.random() < 0.35:
                ctx.drop()
        cluster.pfis[address].set_send_filter(lossy)
    cluster.start()
    cluster.run_until(60.0)
    return {
        "max_retries": max_retries,
        "converged": cluster.all_in_one_group(),
        "views": {a: d.view.members for a, d in cluster.daemons.items()},
    }


def test_ablation_reliable_layer(once_benchmark):
    with_retries = once_benchmark(run_reliable_ablation, 3)
    trials_with = [with_retries] + [run_reliable_ablation(3, seed=s)
                                    for s in (6, 7)]
    trials_without = [run_reliable_ablation(0, seed=s) for s in (5, 6, 7)]
    converged_with = sum(t["converged"] for t in trials_with)
    converged_without = sum(t["converged"] for t in trials_without)
    emit("Ablation 4: the GMP reliable layer under 35% send loss",
         render_table("group convergence within 60 s (3 seeds)",
                      ["Reliable-layer retries", "Converged"],
                      [["3 (as built)", f"{converged_with}/3"],
                       ["0 (ablated)", f"{converged_without}/3"]]))
    assert converged_with > converged_without, \
        "retransmissions must help convergence under loss"
