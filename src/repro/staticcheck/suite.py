"""The ``repro check`` suite: all three static passes over one tree.

Pass 1 (scriptlint with dataflow, SL0xx) covers the tclish corpus:
``.tcl``/``.tclish`` files plus the fault scripts embedded in the
regression-corpus JSON artifacts.  Pass 2 (determinism, SC1xx) covers
the simulation Python (``experiments``, ``gmp``, ``tcp``).  Pass 3
(trace-schema drift, SC2xx) is whole-program over ``src/repro``.

Exit-code contract (shared with ``repro lint``):

====  ==========================================================
 0    clean -- no findings at warning severity or above
 1    findings -- at least one warning/error diagnostic
 2    parse or internal errors -- unreadable files, Python/tclish
      syntax errors (SL000), unparseable corpus artifacts
====  ==========================================================
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.tclish.lint import lint_source
from repro.core.tclish.lint.diagnostics import Diagnostic, LintReport

from repro.staticcheck import determinism, drift

#: directories (relative to the repo root) each pass covers by default
DEFAULT_TCL_DIRS = ("examples/filters",)
DEFAULT_CORPUS_DIRS = ("tests/regressions",)
DEFAULT_PY_DIRS = ("src/repro/experiments", "src/repro/gmp",
                   "src/repro/tcp")
DEFAULT_DRIFT_DIRS = ("src/repro",)


def repo_root() -> str:
    """The checkout root, derived from the installed package location."""
    import repro
    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    return os.path.dirname(os.path.dirname(package_dir))


@dataclass
class SuiteResult:
    """Everything one ``repro check`` invocation produced."""

    reports: List[LintReport] = field(default_factory=list)
    #: unreadable/unparseable inputs -- force exit code 2
    internal_errors: List[str] = field(default_factory=list)
    #: how many sources each pass looked at
    checked: Dict[str, int] = field(default_factory=dict)

    def findings(self) -> List[Tuple[str, Diagnostic]]:
        """(source, diagnostic) pairs at warning severity or above."""
        return [(report.source_name, diag)
                for report in self.reports
                for diag in report.at_least("warning")]

    def parse_errors(self) -> List[Tuple[str, Diagnostic]]:
        return [(report.source_name, diag)
                for report in self.reports
                for diag in report.sorted() if diag.code == "SL000"]

    def exit_code(self) -> int:
        if self.internal_errors or self.parse_errors():
            return 2
        return 1 if self.findings() else 0

    def render_text(self, *, verbose: bool = False) -> str:
        lines: List[str] = []
        for error in self.internal_errors:
            lines.append(f"internal: {error}")
        floor = "info" if verbose else "warning"
        for report in self.reports:
            for diag in sorted(report.at_least(floor),
                               key=lambda d: (d.line, d.col, d.code)):
                lines.append(diag.format(report.source_name))
        checked = ", ".join(f"{count} {what}"
                            for what, count in sorted(self.checked.items()))
        findings = self.findings()
        verdict = ("clean" if not findings and not self.internal_errors
                   else f"{len(findings)} finding(s)")
        lines.append(f"repro check: {verdict} ({checked})")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "exit_code": self.exit_code(),
            "internal_errors": self.internal_errors,
            "checked": self.checked,
            "reports": [
                {"source": report.source_name,
                 "diagnostics": [d.to_dict() for d in report.sorted()]}
                for report in self.reports if report.diagnostics
            ],
        }, indent=2, sort_keys=True)


def _walk_suffix(paths: Sequence[str], suffixes: Tuple[str, ...]
                 ) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in sorted(os.walk(path)):
                dirs.sort()
                out.extend(os.path.join(root, name)
                           for name in sorted(files)
                           if name.endswith(suffixes))
        elif path.endswith(suffixes) and os.path.exists(path):
            out.append(path)
    return out


def _check_tcl(paths: Sequence[str], result: SuiteResult) -> None:
    files = _walk_suffix(paths, (".tcl", ".tclish"))
    result.checked["tclish scripts"] = len(files)
    for path in files:
        try:
            with open(path, encoding="utf-8") as fp:
                source = fp.read()
        except OSError as err:
            result.internal_errors.append(f"{path}: {err}")
            continue
        result.reports.append(lint_source(source, source_name=path))


def _check_corpus(paths: Sequence[str], result: SuiteResult) -> None:
    """Lint the fault scripts embedded in regression JSON artifacts."""
    from repro.oracle.grammar import FuzzScript
    files = _walk_suffix(paths, (".json",))
    result.checked["corpus scripts"] = len(files)
    for path in files:
        try:
            with open(path, encoding="utf-8") as fp:
                data = json.load(fp)
            script = FuzzScript.from_dict(data["case"]["script"])
        except (OSError, ValueError, KeyError, TypeError) as err:
            result.internal_errors.append(
                f"{path}: unreadable corpus artifact ({err})")
            continue
        result.reports.append(lint_source(
            script.source, init_script=script.init,
            source_name=f"{path}[{script.name}]"))


def _check_python(paths: Sequence[str], result: SuiteResult) -> None:
    files = [p for p in _walk_suffix(paths, (".py",))]
    result.checked["python modules"] = len(files)
    for path in files:
        try:
            result.reports.append(determinism.check_file(path))
        except OSError as err:
            result.internal_errors.append(f"{path}: {err}")


def _check_drift(paths: Sequence[str], result: SuiteResult) -> None:
    reports = drift.check_drift(paths)
    result.checked["trace kinds"] = len(
        drift.harvest_paths(paths).emitted_kinds())
    result.reports.extend(reports)


def run_suite(*, root: Optional[str] = None,
              tcl_paths: Optional[Sequence[str]] = None,
              corpus_paths: Optional[Sequence[str]] = None,
              py_paths: Optional[Sequence[str]] = None,
              drift_paths: Optional[Sequence[str]] = None,
              drift_enabled: bool = True) -> SuiteResult:
    """Run the three passes; any ``*_paths`` override replaces defaults.

    With no overrides the suite checks the standard repo layout under
    ``root`` (default: the checkout containing the installed package),
    silently skipping default directories that do not exist so the suite
    also works from an installed wheel.
    """
    base = repo_root() if root is None else root

    def defaults(relative: Sequence[str]) -> List[str]:
        found = [os.path.join(base, rel) for rel in relative]
        return [path for path in found if os.path.exists(path)]

    result = SuiteResult()
    _check_tcl(defaults(DEFAULT_TCL_DIRS) if tcl_paths is None
               else tcl_paths, result)
    _check_corpus(defaults(DEFAULT_CORPUS_DIRS) if corpus_paths is None
                  else corpus_paths, result)
    _check_python(defaults(DEFAULT_PY_DIRS) if py_paths is None
                  else py_paths, result)
    if drift_enabled:
        _check_drift(defaults(DEFAULT_DRIFT_DIRS) if drift_paths is None
                     else drift_paths, result)
    return result
