"""The flight recorder core: crash-safe appends and tolerant replay.

The crash-safety contract is exercised literally: a multi-event journal
is truncated at *every* byte offset and replay must recover exactly the
events whose terminating newline survived, reporting the rest as the
torn tail -- never raising, never inventing an event.
"""

import json
import threading

import pytest

from repro.netsim import kinds as K
from repro.obs.journal import (JOURNAL_KINDS, SCHEMA_VERSION, Journal,
                               follow_journal, replay_journal)


def _sample_journal(path):
    with Journal(path) as journal:
        journal.start("fuzz", protocol="gmp", seed=0, budget=4)
        journal.record(K.CAMPAIGN_PREFLIGHT, ok=True)
        with journal.phase("dispatch"):
            for index in range(4):
                journal.record(K.CAMPAIGN_RUN_END, index=index,
                               label=f"case_{index}", ok=index != 2,
                               codes=[] if index != 2 else ["GMP-X"],
                               violations=0 if index != 2 else 1)
        journal.record(K.CAMPAIGN_END, status="ok", executed=4)
    return path


class TestJournalRecording:
    def test_roundtrip_preserves_kinds_order_and_payloads(self, tmp_path):
        path = _sample_journal(tmp_path / "j.jsonl")
        replay = replay_journal(path)
        assert replay.torn_tail is None
        assert [e.kind for e in replay.events] == [
            K.CAMPAIGN_START, K.CAMPAIGN_PREFLIGHT, K.CAMPAIGN_PHASE_START,
            K.CAMPAIGN_RUN_END, K.CAMPAIGN_RUN_END, K.CAMPAIGN_RUN_END,
            K.CAMPAIGN_RUN_END, K.CAMPAIGN_PHASE_END, K.CAMPAIGN_END]
        assert [e.seq for e in replay.events] == list(range(9))
        bad = replay.of(K.CAMPAIGN_RUN_END)[2]
        assert bad.get("codes") == ["GMP-X"]
        assert bad.get("ok") is False
        assert replay.complete

    def test_start_stamps_schema_version(self, tmp_path):
        path = _sample_journal(tmp_path / "j.jsonl")
        start = replay_journal(path).events[0]
        assert start.get("schema") == SCHEMA_VERSION
        assert start.get("engine") == "fuzz"

    def test_unknown_kind_rejected(self, tmp_path):
        with Journal(tmp_path / "j.jsonl") as journal:
            with pytest.raises(ValueError, match="unknown journal event"):
                journal.record("net.send", uid=1)
            with pytest.raises(ValueError):
                journal.record("campaign.bogus")

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(RuntimeError, match="closed"):
            journal.record(K.CAMPAIGN_END, status="ok")
        journal.close()  # idempotent

    def test_payloads_json_sanitized(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record(K.CAMPAIGN_RUN_END, index=0,
                           codes={"B", "A"}, blob=b"\x00\xff",
                           where=path)
        event = replay_journal(path).events[0]
        assert sorted(event.get("codes")) == ["A", "B"]
        assert event.get("blob") == {"__bytes__": "00ff"}
        assert isinstance(event.get("where"), str)

    def test_each_line_is_one_complete_json_document(self, tmp_path):
        path = _sample_journal(tmp_path / "j.jsonl")
        for line in path.read_bytes().splitlines():
            doc = json.loads(line)
            assert set(doc) == {"kind", "seq", "t", "data"}

    def test_appending_engine_shares_open_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.start("fuzz", seed=0)
            journal.record(K.CAMPAIGN_END, status="ok")
            journal.start("shrink", code="GMP-X")
            journal.record(K.CAMPAIGN_END, status="ok")
        replay = replay_journal(path)
        assert len(replay.of(K.CAMPAIGN_START)) == 2
        assert [e.seq for e in replay.events] == list(range(4))


class TestEnsure:
    def test_none_stays_off(self):
        journal, owned = Journal.ensure(None)
        assert journal is None and owned is False

    def test_path_is_opened_and_owned(self, tmp_path):
        journal, owned = Journal.ensure(tmp_path / "j.jsonl")
        assert isinstance(journal, Journal) and owned is True
        journal.close()

    def test_existing_journal_is_borrowed(self, tmp_path):
        with Journal(tmp_path / "j.jsonl") as original:
            journal, owned = Journal.ensure(original)
            assert journal is original and owned is False


class TestTornTailRecovery:
    def test_missing_trailing_newline_is_torn(self, tmp_path):
        path = _sample_journal(tmp_path / "j.jsonl")
        blob = path.read_bytes()
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(blob[:-10])
        replay = replay_journal(torn)
        assert replay.torn_tail is not None
        assert len(replay.events) == 8
        assert not replay.complete

    def test_truncation_sweep_recovers_every_complete_event(self, tmp_path):
        """Cut at every byte offset: replay = events before the cut."""
        path = _sample_journal(tmp_path / "j.jsonl")
        blob = path.read_bytes()
        newlines = [i for i, b in enumerate(blob) if b == ord("\n")]
        torn = tmp_path / "torn.jsonl"
        for cut in range(len(blob) + 1):
            torn.write_bytes(blob[:cut])
            replay = replay_journal(torn)
            expected = sum(1 for nl in newlines if nl < cut)
            assert len(replay.events) == expected, f"cut at byte {cut}"
            assert [e.seq for e in replay.events] == list(range(expected))
            clean = newlines[expected - 1] + 1 if expected else 0
            assert replay.clean_bytes == clean
            if cut == clean:
                assert replay.torn_tail is None
            else:
                assert replay.torn_tail == blob[clean:cut]

    def test_garbage_line_ends_replay_there(self, tmp_path):
        path = _sample_journal(tmp_path / "j.jsonl")
        blob = path.read_bytes()
        first_nl = blob.index(b"\n") + 1
        mangled = tmp_path / "mangled.jsonl"
        mangled.write_bytes(blob[:first_nl] + b"\xfe\xffnot json\n"
                            + blob[first_nl:])
        replay = replay_journal(mangled)
        assert len(replay.events) == 1
        assert replay.torn_tail.startswith(b"\xfe\xff")

    def test_empty_journal_replays_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        replay = replay_journal(path)
        assert replay.events == [] and replay.torn_tail is None
        assert not replay.complete


class TestFollow:
    def test_follow_stops_at_campaign_end(self, tmp_path):
        path = tmp_path / "j.jsonl"

        def writer():
            with Journal(path) as journal:
                journal.start("fuzz", seed=0)
                journal.record(K.CAMPAIGN_RUN_END, index=0, ok=True)
                journal.record(K.CAMPAIGN_END, status="ok")

        thread = threading.Thread(target=writer)
        thread.start()
        events = list(follow_journal(path, poll=0.01, timeout=5.0))
        thread.join()
        assert [e.kind for e in events] == [
            K.CAMPAIGN_START, K.CAMPAIGN_RUN_END, K.CAMPAIGN_END]

    def test_follow_times_out_on_stalled_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.start("fuzz", seed=0)
        events = list(follow_journal(path, poll=0.01, timeout=0.05))
        assert [e.kind for e in events] == [K.CAMPAIGN_START]


class TestSchemaRegistry:
    def test_journal_kinds_live_in_the_trace_registry(self):
        from repro.netsim.kinds import all_kinds
        assert JOURNAL_KINDS <= set(all_kinds())

    def test_schema_fingerprint_pinned_to_version(self):
        """Changing the journal kind set must bump SCHEMA_VERSION."""
        import hashlib
        blob = ",".join(sorted(JOURNAL_KINDS)).encode()
        fingerprint = hashlib.sha256(blob).hexdigest()[:12]
        pinned = {1: "f26643f04ebc"}
        assert pinned.get(SCHEMA_VERSION) == fingerprint, (
            f"journal schema drifted (fingerprint {fingerprint}); bump "
            f"SCHEMA_VERSION and re-pin")
