"""The work-stealing contract, unit-tested with an injected clock.

The :class:`~repro.core.fabric.shards.LeaseBoard` is pure (callers
inject ``now``), so every lease/steal/expiry property here runs without
sockets, threads, or wall time -- including the acceptance bullets:
an expired lease is handed to a live worker *exactly once*, prefix
groups are never split across leases, and 1-config shards drain
starvation-free.
"""

from repro.core.fabric import LeaseBoard, Shard, partition_shards
from repro.core.fabric.shards import DONE, LEASED, PENDING


def _flat(shards):
    out = []
    for shard in shards:
        out.extend(shard.indices)
    return out


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------

def test_partition_covers_todo_exactly_once_in_order():
    todo = list(range(0, 40, 2))
    shards = partition_shards(todo, [None] * 40, workers=3)
    assert _flat(shards) == todo
    assert [s.shard_id for s in shards] == list(range(len(shards)))
    assert all(s.state == PENDING and s.attempts == 0 for s in shards)


def test_partition_empty_todo_is_empty():
    assert partition_shards([], [], workers=4) == []


def test_partition_target_shard_count_scales_with_workers():
    todo = list(range(96))
    shards = partition_shards(todo, [None] * 96, workers=3)
    # aim: workers * SHARDS_PER_WORKER = 12 shards of 8
    assert len(shards) == 12
    assert all(len(s.indices) == 8 for s in shards)


def test_partition_never_splits_a_prefix_group():
    # groups of 5 across 20 configs; force tiny shards so a naive
    # size-based cut would slice every group
    keys = [f"g{i // 5}" for i in range(20)]
    shards = partition_shards(list(range(20)), keys, workers=2,
                              shard_size=2)
    assert _flat(shards) == list(range(20))
    for shard in shards:
        groups = {keys[i] for i in shard.indices}
        for group in groups:
            members = [i for i in range(20) if keys[i] == group]
            assert set(members) <= set(shard.indices), (
                f"group {group} split across shards")


def test_partition_group_larger_than_shard_stays_whole():
    keys = ["big"] * 10 + [None] * 2
    shards = partition_shards(list(range(12)), keys, workers=4,
                              shard_size=3)
    assert shards[0].indices == list(range(10))
    assert _flat(shards) == list(range(12))


def test_partition_respects_sparse_todo_indices():
    # resumed sweeps hand in global indices with gaps
    keys = [None] * 10
    todo = [1, 3, 4, 8, 9]
    shards = partition_shards(todo, keys, workers=1, shard_size=2)
    assert _flat(shards) == todo


# ----------------------------------------------------------------------
# lease / steal / expiry
# ----------------------------------------------------------------------

def _board(count, ttl=10.0):
    shards = [Shard(shard_id=i, indices=[i]) for i in range(count)]
    return LeaseBoard(shards, ttl=ttl)


def test_lease_grants_lowest_pending_to_one_worker():
    board = _board(2)
    first = board.lease("w1", now=0.0)
    assert first.shard_id == 0 and first.state == LEASED
    assert first.worker == "w1" and first.attempts == 1
    second = board.lease("w2", now=0.0)
    assert second.shard_id == 1
    assert board.lease("w3", now=0.0) is None


def test_expired_lease_is_stolen_by_exactly_one_live_worker():
    board = _board(1, ttl=5.0)
    board.lease("w1", now=0.0)
    # w1 goes silent past the ttl; the coordinator's expiry sweep runs
    reclaimed = board.expire(now=6.0)
    assert [s.shard_id for s in reclaimed] == [0]
    assert board.expired == 1
    # two live workers race for the reclaimed shard: exactly one wins
    grants = [board.lease(w, now=6.0) for w in ("w2", "w3")]
    granted = [g for g in grants if g is not None]
    assert len(granted) == 1
    assert granted[0].worker == "w2" and granted[0].attempts == 2
    assert board.stolen == 1
    # the zombie's heartbeat is refused; the thief's is renewed
    assert board.heartbeat("w1", 0, now=7.0) is False
    assert board.heartbeat("w2", 0, now=7.0) is True
    # completion by the thief ends it; nothing re-enters the queue
    assert board.complete("w2", 0) is True
    assert board.done()
    assert board.expire(now=100.0) == []


def test_heartbeat_extends_deadline_past_original_ttl():
    board = _board(1, ttl=5.0)
    board.lease("w1", now=0.0)
    assert board.heartbeat("w1", 0, now=4.0) is True
    # 4.0 + ttl = 9.0 > original deadline 5.0: no expiry at 8.0
    assert board.expire(now=8.0) == []
    assert board.expire(now=9.5) != []


def test_zombie_completion_accepted_once_then_refused():
    board = _board(1, ttl=5.0)
    board.lease("w1", now=0.0)
    board.expire(now=6.0)
    stolen = board.lease("w2", now=6.0)
    assert stolen.attempts == 2
    # the original holder finished anyway: its rows are
    # content-addressed, so the completion stands...
    assert board.complete("w1", 0) is True
    assert board.done()
    # ...and the thief's late completion is a no-op
    assert board.complete("w2", 0) is False
    assert board.done()


def test_release_worker_reclaims_all_its_leases_immediately():
    board = _board(3)
    board.lease("w1", now=0.0)
    board.lease("w1", now=0.0)
    board.lease("w2", now=0.0)
    reclaimed = board.release_worker("w1")
    assert sorted(s.shard_id for s in reclaimed) == [0, 1]
    assert board.released == 2
    assert {s.shard_id for s in board.pending()} == {0, 1}
    assert [s.shard_id for s in board.held_by("w2")] == [2]
    # a live worker picks the reclaimed work right back up
    assert board.lease("w3", now=0.0).shard_id == 0


def test_single_config_shards_drain_starvation_free():
    # worst-case shard granularity: every shard is one config; a lone
    # worker must drain the board in exactly N lease/complete cycles
    board = _board(25)
    cycles = 0
    while not board.done():
        shard = board.lease("w1", now=float(cycles))
        assert shard is not None, "pending work but no grant"
        assert board.complete("w1", shard.shard_id)
        cycles += 1
        assert cycles <= 25, "board never converged"
    assert cycles == 25
    assert board.stolen == 0 and board.expired == 0


def test_done_shard_never_reenters_pending():
    board = _board(2, ttl=5.0)
    shard = board.lease("w1", now=0.0)
    board.complete("w1", shard.shard_id)
    assert board.expire(now=100.0) == []
    assert board.release_worker("w1") == []
    assert board._by_id[shard.shard_id].state == DONE


def test_board_snapshot_reflects_counters_and_states():
    board = _board(2, ttl=5.0)
    board.lease("w1", now=0.0)
    board.expire(now=6.0)
    board.lease("w2", now=6.0)
    snapshot = board.as_dict()
    assert snapshot["expired"] == 1 and snapshot["stolen"] == 1
    states = {s["shard"]: s["state"] for s in snapshot["shards"]}
    assert states == {0: LEASED, 1: PENDING}
